//! Shared helpers for the cross-crate integration tests: a small synthetic
//! star-ish schema with real data, delta generation, and an end-to-end
//! "optimize → execute → verify against recomputation" harness.

use mvmqo_core::api::{MaintenanceProblem, OptimizerReport};
use mvmqo_core::update::UpdateModel;
use mvmqo_exec::{eval_logical, execute_program, index_plan_from_report, ExecReport};
use mvmqo_relalg::catalog::{Catalog, ColumnSpec, TableId};
use mvmqo_relalg::logical::ViewDef;
use mvmqo_relalg::tuple::{bag_eq_approx, Tuple};
use mvmqo_relalg::types::{DataType, Value};
use mvmqo_storage::database::Database;
use mvmqo_storage::delta::{DeltaBatch, DeltaSet};
use mvmqo_storage::table::StoredTable;

/// A small three-level schema: `a ←FK— b ←FK— c` (a: dimension, c: facts).
pub struct SmallWorld {
    pub catalog: Catalog,
    pub db: Database,
    pub a: TableId,
    pub b: TableId,
    pub c: TableId,
}

/// Deterministic pseudo-random stream (xorshift) so fixtures are stable.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Build the world with `scale` rows in `a` (b = 4×, c = 12×), fully
/// populated with referentially consistent data.
pub fn small_world(scale: usize) -> SmallWorld {
    let mut catalog = Catalog::new();
    let a_rows = scale;
    let b_rows = scale * 4;
    let c_rows = scale * 12;
    let a = catalog.add_table(
        "a",
        vec![
            ColumnSpec::key("id", DataType::Int),
            ColumnSpec::with_range("x", DataType::Int, 20.0, (0.0, 20.0)),
        ],
        a_rows as f64,
        &["id"],
    );
    let b = catalog.add_table(
        "b",
        vec![
            ColumnSpec::key("id", DataType::Int),
            ColumnSpec::with_distinct("a_id", DataType::Int, a_rows as f64),
            ColumnSpec::with_range("w", DataType::Int, 10.0, (0.0, 10.0)),
        ],
        b_rows as f64,
        &["id"],
    );
    let c = catalog.add_table(
        "c",
        vec![
            ColumnSpec::key("id", DataType::Int),
            ColumnSpec::with_distinct("b_id", DataType::Int, b_rows as f64),
            ColumnSpec::with_range("v", DataType::Int, 100.0, (0.0, 100.0)),
        ],
        c_rows as f64,
        &["id"],
    );
    catalog.add_foreign_key(b, &["a_id"], a);
    catalog.add_foreign_key(c, &["b_id"], b);

    let mut rng = Rng::new(42);
    let mut db = Database::new();
    db.put_base(
        a,
        StoredTable::with_rows(
            catalog.table(a).schema.clone(),
            (0..a_rows)
                .map(|i| vec![Value::Int(i as i64), Value::Int(rng.below(20) as i64)])
                .collect(),
        ),
    );
    db.put_base(
        b,
        StoredTable::with_rows(
            catalog.table(b).schema.clone(),
            (0..b_rows)
                .map(|i| {
                    vec![
                        Value::Int(i as i64),
                        Value::Int(rng.below(a_rows as u64) as i64),
                        Value::Int(rng.below(10) as i64),
                    ]
                })
                .collect(),
        ),
    );
    db.put_base(
        c,
        StoredTable::with_rows(
            catalog.table(c).schema.clone(),
            (0..c_rows)
                .map(|i| {
                    vec![
                        Value::Int(i as i64),
                        Value::Int(rng.below(b_rows as u64) as i64),
                        Value::Int(rng.below(100) as i64),
                    ]
                })
                .collect(),
        ),
    );
    SmallWorld {
        catalog,
        db,
        a,
        b,
        c,
    }
}

/// Generate the paper's update pattern against the live database: insert
/// `percent`% fresh rows (new keys; FKs reference *existing* rows, so the
/// §5.3 pruning precondition holds) and delete `percent/2`% existing rows.
pub fn generate_deltas(world: &SmallWorld, percent: f64, seed: u64) -> DeltaSet {
    let mut rng = Rng::new(seed);
    let mut ds = DeltaSet::new();
    for (t, fk_parent_rows) in [
        (world.a, None),
        (world.b, Some(world.db.base(world.a).unwrap().len())),
        (world.c, Some(world.db.base(world.b).unwrap().len())),
    ] {
        let table = world.db.base(t).unwrap();
        let rows = table.len();
        let ins_n = ((rows as f64) * percent / 100.0).round() as usize;
        let del_n = ((rows as f64) * percent / 200.0).round() as usize;
        let key_col = table.batch().column(0);
        let max_key = (0..key_col.len())
            .map(|i| key_col.value(i).as_i64().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let mut inserts: Vec<Tuple> = Vec::with_capacity(ins_n);
        for i in 0..ins_n {
            let key = max_key + 1 + i as i64;
            let row: Tuple = match fk_parent_rows {
                None => vec![Value::Int(key), Value::Int(rng.below(20) as i64)],
                Some(parents) => vec![
                    Value::Int(key),
                    Value::Int(rng.below(parents as u64) as i64),
                    Value::Int(rng.below(100) as i64),
                ],
            };
            inserts.push(row);
        }
        // Deletes sample existing rows; RI is not required for deletes (no
        // pruning is applied to them).
        let mut deletes: Vec<Tuple> = Vec::with_capacity(del_n);
        for _ in 0..del_n {
            let pos = rng.below(table.len() as u64) as u32;
            deletes.push(table.tuple_at(pos));
        }
        deletes.sort();
        deletes.dedup();
        ds.insert(t, DeltaBatch::new(inserts, deletes));
    }
    ds
}

/// Build an [`UpdateModel`] matching a generated [`DeltaSet`] exactly.
pub fn update_model_for(deltas: &DeltaSet) -> UpdateModel {
    UpdateModel::new(deltas.tables().map(|t| {
        let b = deltas.get(t).unwrap();
        (t, b.inserts.len() as f64, b.deletes.len() as f64)
    }))
}

/// Run the full pipeline and verify every view, **as a multiset**, against
/// the reference evaluator on the post-update database. Panics on mismatch.
pub fn optimize_execute_verify(
    world: &mut SmallWorld,
    views: Vec<ViewDef>,
    deltas: &DeltaSet,
    options: mvmqo_core::opt::GreedyOptions,
) -> (OptimizerReport, ExecReport) {
    let updates = update_model_for(deltas);
    let mut problem = MaintenanceProblem::new(views.clone(), updates);
    problem.options = options;
    problem = problem.with_pk_indices(&world.catalog);
    let initial_indices = problem.initial_indices.clone();
    let planned = mvmqo_core::api::plan_maintenance(&mut world.catalog, &problem);
    let (dag, report) = (planned.dag, planned.report);
    let index_plan = index_plan_from_report(&initial_indices, &report);
    let exec = execute_program(
        &dag,
        &world.catalog,
        problem.cost_model,
        &mut world.db,
        deltas,
        &report.program,
        &index_plan,
    )
    .expect("epoch execution");
    // Ground truth: evaluate each view directly on the post-update state.
    for v in &views {
        let mut expected = eval_logical(&v.expr, &world.catalog, &world.db);
        // Canonical order: the view schema may reorder columns relative to
        // the reference join order; align by attribute ids.
        let root = mvmqo_exec::view_root(&report.program, &v.name).expect("view root");
        let expected_schema = v.expr.schema(&world.catalog);
        let view_schema = dag.eq(root).schema.clone();
        expected = mvmqo_exec::align_rows(expected, &expected_schema, &view_schema);
        let got = exec.view_rows.get(&v.name).cloned().unwrap_or_default();
        assert!(
            bag_eq_approx(&got, &expected, 1e-9),
            "view {} mismatch: incremental {} rows vs recomputed {} rows",
            v.name,
            got.len(),
            expected.len()
        );
    }
    (report, exec)
}
