//! Engine-wide fault-injection (chaos) tests: transactional epochs under
//! injected failure at every fault site.
//!
//! The headline property is the **abort/retry contract**: arm a one-shot
//! fault at the `k`-th fault-site crossing of a deterministic 3-round
//! workload, for every `k` that names a distinct site (plus evenly spaced
//! extras, capped by `CHAOS_CASES`), and assert that
//!
//! 1. the epoch that hits the fault aborts *cleanly* — the engine still
//!    answers `query`/`verify` with exact pre-epoch results and the
//!    pending delta queue is intact;
//! 2. retrying after the (spent) fault converges to a state bag-identical,
//!    for every base table and every view, to the fault-free run;
//! 3. the WAL and manifest stay recoverable: `Warehouse::recover` on the
//!    directory the faulty run left behind rebuilds the same engine.
//!
//! Alongside it: the kill-between test (a crash injected *between* the WAL
//! commit record and the in-memory install must recover INTO the committed
//! epoch — the commit record precedes every in-memory mutation), and a
//! property test that `ingest → fault-aborted epoch → retry` is
//! view-identical to the fault-free run under both the serial and the
//! forced-parallel (2/4 worker) scheduler, for error- and panic-mode
//! faults alike.

use mvmqo_integration_tests::{generate_deltas, small_world, SmallWorld};
use mvmqo_relalg::agg::{AggFunc, AggSpec};
use mvmqo_relalg::catalog::TableId;
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::logical::{LogicalExpr, ViewDef};
use mvmqo_relalg::schema::AttrId;
use mvmqo_relalg::tuple::{bag_eq_approx, Tuple};
use mvmqo_relalg::types::Value;
use mvmqo_storage::delta::DeltaSet;
use mvmqo_warehouse::{FaultMode, FaultPlan, Warehouse, WarehouseError};
use proptest::prelude::*;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

// ======================================================================
// Scratch directories (the workspace vendors no tempfile crate)
// ======================================================================

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Self-cleaning scratch directory under the system temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "mvmqo-chaos-{tag}-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Aborted epochs and atomic snapshot writes must leave no `.tmp` behind.
fn assert_no_tmp_files(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        let name = entry.file_name();
        assert!(
            !name.to_string_lossy().ends_with(".tmp"),
            "leaked temp file {name:?} in {}",
            dir.display()
        );
    }
}

// ======================================================================
// The deterministic workload (same shape as the recovery fixture)
// ======================================================================

fn attr(world: &SmallWorld, t: TableId, suffix: &str) -> AttrId {
    world
        .catalog
        .table(t)
        .schema
        .attrs()
        .iter()
        .find(|a| a.name.ends_with(suffix))
        .unwrap_or_else(|| panic!("no attr {suffix}"))
        .id
}

/// A fresh engine over the deterministic small world with three views
/// sharing subexpressions: a filtered two-way join, the full three-way
/// join, and an aggregate (whose hidden per-group state must survive
/// aborts). Identical on every call.
fn engine_with_views() -> (SmallWorld, Warehouse) {
    let w = small_world(8);
    let mirror = small_world(8);
    let mut wh = Warehouse::new(w.catalog, w.db);

    let (a, b, c) = (mirror.a, mirror.b, mirror.c);
    let join_ba = |world: &SmallWorld| {
        LogicalExpr::join(
            LogicalExpr::scan(b),
            LogicalExpr::scan(a),
            Predicate::from_conjuncts(vec![ScalarExpr::col_eq_col(
                attr(world, b, ".a_id"),
                attr(world, a, ".id"),
            )]),
        )
    };
    wh.register_view(ViewDef::new(
        "filtered",
        LogicalExpr::select(
            join_ba(&mirror),
            Predicate::from_expr(ScalarExpr::col_cmp_lit(
                attr(&mirror, a, ".x"),
                CmpOp::Lt,
                Value::Int(12),
            )),
        ),
    ))
    .unwrap();
    wh.register_view(ViewDef::new(
        "threeway",
        LogicalExpr::join(
            LogicalExpr::scan(c),
            join_ba(&mirror),
            Predicate::from_conjuncts(vec![ScalarExpr::col_eq_col(
                attr(&mirror, c, ".b_id"),
                attr(&mirror, b, ".id"),
            )]),
        ),
    ))
    .unwrap();
    let sum_out = wh.fresh_attr();
    let cnt_out = wh.fresh_attr();
    wh.register_view(ViewDef::new(
        "totals",
        LogicalExpr::aggregate(
            LogicalExpr::join(
                LogicalExpr::scan(c),
                LogicalExpr::scan(b),
                Predicate::from_conjuncts(vec![ScalarExpr::col_eq_col(
                    attr(&mirror, c, ".b_id"),
                    attr(&mirror, b, ".id"),
                )]),
            ),
            vec![attr(&mirror, b, ".a_id")],
            vec![
                AggSpec::new(
                    AggFunc::Sum,
                    ScalarExpr::Col(attr(&mirror, c, ".v")),
                    sum_out,
                ),
                AggSpec::new(
                    AggFunc::Count,
                    ScalarExpr::Col(attr(&mirror, c, ".v")),
                    cnt_out,
                ),
            ],
        ),
    ))
    .unwrap();
    (mirror, wh)
}

const ROUNDS: [f64; 3] = [6.0, 4.0, 3.0];

fn round_deltas(mirror: &SmallWorld, round: usize) -> DeltaSet {
    generate_deltas(mirror, ROUNDS[round], 1000 + round as u64)
}

/// Run the 3-round workload with no faults armed.
fn run_workload(mirror: &mut SmallWorld, wh: &mut Warehouse) {
    for round in 0..ROUNDS.len() {
        let ds = round_deltas(mirror, round);
        for t in ds.tables().collect::<Vec<_>>() {
            wh.ingest(t, ds.get(t).unwrap().clone()).unwrap();
        }
        wh.run_epoch().unwrap();
        mirror.db.apply_all(&ds).unwrap();
    }
}

/// Current per-view answers (for exact pre-epoch assertions).
fn view_answers(wh: &Warehouse) -> Vec<(String, Vec<Tuple>)> {
    wh.views()
        .iter()
        .map(|v| (v.name.clone(), wh.query(&v.name).unwrap().rows))
        .collect()
}

/// Run the workload while a one-shot fault is armed. Any operation the
/// fault rejects is asserted to have left the engine on its pre-operation
/// state, then retried (the fault fires at most once, so the retry must
/// succeed). Returns how many operations were aborted.
fn run_workload_tolerant(mirror: &mut SmallWorld, wh: &mut Warehouse) -> usize {
    let mut aborted = 0;
    for round in 0..ROUNDS.len() {
        let ds = round_deltas(mirror, round);
        for t in ds.tables().collect::<Vec<_>>() {
            let batch = ds.get(t).unwrap().clone();
            if let Err(e) = wh.ingest(t, batch.clone()) {
                // A rejected ingest (injected WAL-append failure) must
                // leave both the log and the queue unchanged; re-issuing
                // the same batch succeeds.
                aborted += 1;
                wh.ingest(t, batch)
                    .unwrap_or_else(|e2| panic!("ingest retry failed: {e2} (after {e})"));
            }
        }
        let pre_epoch = wh.epoch();
        let pre_pending = wh.pending_tuples();
        let pre_views = view_answers(wh);
        if let Err(e) = wh.run_epoch() {
            aborted += 1;
            // Contract 1: typed, retryable abort; exact pre-epoch answers.
            assert!(
                matches!(e, WarehouseError::EpochAborted { .. }),
                "unexpected epoch error: {e}"
            );
            assert_eq!(wh.epoch(), pre_epoch, "abort advanced the epoch");
            assert_eq!(
                wh.pending_tuples(),
                pre_pending,
                "abort lost pending deltas"
            );
            assert!(wh.last_abort().is_some(), "abort left no trace");
            for (name, want) in &pre_views {
                let got = wh.query(name).unwrap().rows;
                assert!(
                    bag_eq_approx(&got, want, 1e-9),
                    "view {name} drifted across an abort ({e})"
                );
                assert!(wh.verify(name).unwrap(), "verify({name}) after abort");
            }
            // Contract 2 (first half): the fault is spent; retry commits.
            wh.run_epoch()
                .unwrap_or_else(|e2| panic!("epoch retry failed: {e2} (after {e})"));
        }
        mirror.db.apply_all(&ds).unwrap();
    }
    aborted
}

/// Tuple-identical equivalence: every base table and every view, as
/// multisets, plus per-view consistency against recomputation.
fn assert_engines_equivalent(got: &Warehouse, want: &Warehouse, context: &str) {
    assert_eq!(got.epoch(), want.epoch(), "epoch mismatch ({context})");
    for def in want.catalog().tables() {
        let rows =
            |wh: &Warehouse| -> Vec<Tuple> { wh.database().base(def.id).unwrap().rows().to_vec() };
        assert!(
            bag_eq_approx(&rows(got), &rows(want), 1e-9),
            "base table {} diverged ({context})",
            def.name
        );
    }
    for v in want.views() {
        let g = got.query(&v.name).unwrap().rows;
        let w = want.query(&v.name).unwrap().rows;
        assert!(
            bag_eq_approx(&g, &w, 1e-9),
            "view {} diverged: {} vs {} rows ({context})",
            v.name,
            g.len(),
            w.len()
        );
        assert!(
            got.verify(&v.name).unwrap(),
            "verify({}) ({context})",
            v.name
        );
    }
}

// ======================================================================
// The sweep: one case per distinct fault site (+ extras)
// ======================================================================

/// Record run: enumerate every fault-site crossing of the durable 3-round
/// workload. Serial execution is deterministic, so ordinal `k` names the
/// same crossing in every later run.
fn recorded_sites() -> Vec<&'static str> {
    let tmp = TempDir::new("record");
    let (mut mirror, mut wh) = engine_with_views();
    wh.faults().record();
    wh.enable_wal(tmp.path()).unwrap();
    run_workload(&mut mirror, &mut wh);
    wh.faults().take_recorded()
}

/// Ordinals to test: the first crossing of every distinct site, plus
/// evenly spaced extra crossings up to the `CHAOS_CASES` cap (so CI can
/// bound the sweep without losing per-site coverage). `epoch:post-commit`
/// is excluded — past the commit point a fault is a crash, not an abort;
/// the kill-between test covers it.
fn chaos_ordinals(recorded: &[&'static str]) -> Vec<u64> {
    let mut chosen: Vec<u64> = Vec::new();
    let mut seen = HashSet::new();
    for (i, site) in recorded.iter().enumerate() {
        if *site != "epoch:post-commit" && seen.insert(*site) {
            chosen.push(i as u64);
        }
    }
    let cap: usize = std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
        .max(chosen.len());
    let extras = cap - chosen.len();
    for j in 0..extras {
        let k = (recorded.len() * (j + 1) / (extras + 1)) as u64;
        if recorded[k as usize] != "epoch:post-commit" && !chosen.contains(&k) {
            chosen.push(k);
        }
    }
    chosen.sort_unstable();
    chosen
}

#[test]
fn chaos_sweep_every_fault_site_aborts_cleanly_and_converges() {
    let recorded = recorded_sites();
    assert!(
        recorded.len() >= 20,
        "workload crosses too few fault sites: {recorded:?}"
    );
    let distinct: HashSet<_> = recorded.iter().copied().collect();
    for site in [
        "wal:append",
        "wal:commit",
        "epoch:post-commit",
        "snapshot:write",
    ] {
        assert!(
            distinct.contains(site),
            "durability site {site} never crossed"
        );
    }
    assert!(
        distinct.iter().filter(|s| s.starts_with("exec:")).count() >= 4,
        "too few executor sites crossed: {distinct:?}"
    );

    // Fault-free ground truth.
    let (mut mirror, mut want) = engine_with_views();
    run_workload(&mut mirror, &mut want);

    let ordinals = chaos_ordinals(&recorded);
    for &k in &ordinals {
        let site = recorded[k as usize];
        let context = format!("fault at ordinal {k} ({site})");
        let tmp = TempDir::new("sweep");
        let (mut mirror, mut wh) = engine_with_views();
        wh.faults().arm(FaultPlan::ordinal(k, FaultMode::Error));
        // `enable_wal` itself crosses snapshot:write; tolerate and retry.
        if wh.enable_wal(tmp.path()).is_err() {
            wh.enable_wal(tmp.path()).unwrap();
        }
        let aborted = run_workload_tolerant(&mut mirror, &mut wh);
        assert!(
            aborted <= 1,
            "one-shot fault aborted {aborted} operations ({context})"
        );
        let fired = wh.faults().fired();
        assert!(
            fired.is_some(),
            "armed fault never fired — ordinal drifted ({context})"
        );
        assert_eq!(fired.unwrap().site, site, "site drifted ({context})");

        // Contract 2: bag-identical to the fault-free run.
        assert_engines_equivalent(&wh, &want, &context);

        // Contract 3: the directory the faulty run left behind recovers
        // to the same engine, and no temp files leaked.
        assert_no_tmp_files(tmp.path());
        drop(wh);
        let rec = Warehouse::recover(tmp.path())
            .unwrap_or_else(|e| panic!("recovery failed ({context}): {e}"));
        assert_engines_equivalent(&rec, &want, &format!("{context}, recovered"));
    }
}

// ======================================================================
// Kill between WAL commit and install
// ======================================================================

/// A crash injected after the `EpochCommit` record is durable but before
/// the staged state is installed must recover INTO the committed epoch:
/// the WAL record precedes every in-memory mutation, so recovery replays
/// the epoch the dying process never got to install.
#[test]
fn crash_between_wal_commit_and_install_recovers_into_the_epoch() {
    let tmp = TempDir::new("killbetween");
    let (mut mirror, mut wh) = engine_with_views();
    wh.enable_wal(tmp.path()).unwrap();
    wh.faults()
        .arm(FaultPlan::site("epoch:post-commit", 0, FaultMode::Panic));
    let ds = round_deltas(&mirror, 0);
    for t in ds.tables().collect::<Vec<_>>() {
        wh.ingest(t, ds.get(t).unwrap().clone()).unwrap();
    }
    let pre_epoch = wh.epoch();
    let died = catch_unwind(AssertUnwindSafe(|| wh.run_epoch()));
    assert!(died.is_err(), "post-commit crash point did not fire");
    // The process "died" mid-transaction: in-memory state never advanced.
    assert_eq!(wh.epoch(), pre_epoch);
    drop(wh);

    // Ground truth: the same workload prefix, committed without faults.
    let (_, mut want) = engine_with_views();
    for t in ds.tables().collect::<Vec<_>>() {
        want.ingest(t, ds.get(t).unwrap().clone()).unwrap();
    }
    want.run_epoch().unwrap();
    mirror.db.apply_all(&ds).unwrap();

    let rec = Warehouse::recover(tmp.path()).unwrap();
    assert_eq!(
        rec.epoch(),
        pre_epoch + 1,
        "recovery must land ON the committed epoch"
    );
    assert_engines_equivalent(&rec, &want, "kill between commit and install");
    assert_no_tmp_files(tmp.path());
}

// ======================================================================
// Property: abort → retry is view-identical, serial and parallel
// ======================================================================

/// One `ingest → (faulted) epoch → retry` cycle under the given scheduler;
/// returns the per-view answers after convergence.
fn abort_retry_views(ordinal: u64, mode: FaultMode, workers: usize) -> Vec<(String, Vec<Tuple>)> {
    let (mut mirror, mut wh) = engine_with_views();
    if workers > 0 {
        wh.set_parallel(true);
        wh.set_threads(workers);
        // Exercise the real parallel scheduler even on 1-core CI hosts.
        wh.set_force_parallel(true);
    }
    // Round 1 establishes the materializations fault-free.
    let ds = round_deltas(&mirror, 0);
    for t in ds.tables().collect::<Vec<_>>() {
        wh.ingest(t, ds.get(t).unwrap().clone()).unwrap();
    }
    wh.run_epoch().unwrap();
    mirror.db.apply_all(&ds).unwrap();

    // Round 2 runs with a fault armed; panics unwind to us (no WAL is
    // attached, so even a post-commit "crash" leaves a retryable engine).
    let ds = round_deltas(&mirror, 1);
    for t in ds.tables().collect::<Vec<_>>() {
        wh.ingest(t, ds.get(t).unwrap().clone()).unwrap();
    }
    wh.faults().arm(FaultPlan::ordinal(ordinal, mode));
    let pre_epoch = wh.epoch();
    let outcome = catch_unwind(AssertUnwindSafe(|| wh.run_epoch()));
    match outcome {
        Ok(Ok(_)) => {} // ordinal past the workload's crossings: no fire
        Ok(Err(_)) | Err(_) => {
            assert_eq!(wh.epoch(), pre_epoch, "failed epoch advanced state");
            wh.faults().clear();
            wh.run_epoch().expect("retry after abort");
        }
    }
    view_answers(&wh)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `ingest → fault-aborted epoch → retry` converges to the exact
    /// fault-free result for every view, under the serial scheduler and
    /// the forced-parallel scheduler at 2 and 4 workers, whether the
    /// fault fires as a typed error or as a panic.
    #[test]
    fn abort_then_retry_is_identical_to_fault_free(
        ordinal in 0u64..60,
        err_mode in proptest::bool::ANY,
    ) {
        let mode = if err_mode { FaultMode::Error } else { FaultMode::Panic };
        // Fault-free ground truth (no fault ever fires at ordinal u64::MAX).
        let want = abort_retry_views(u64::MAX, FaultMode::Error, 0);
        for workers in [0usize, 2, 4] {
            let got = abort_retry_views(ordinal, mode, workers);
            prop_assert_eq!(got.len(), want.len());
            for ((name, g), (_, w)) in got.iter().zip(&want) {
                prop_assert!(
                    bag_eq_approx(g, w, 1e-9),
                    "view {} diverged under {:?}/{} workers at ordinal {}",
                    name, mode, workers, ordinal
                );
            }
        }
    }
}
