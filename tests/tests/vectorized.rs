//! Vectorized-executor property tests.
//!
//! Every batch operator is checked, on random multisets with NULLs and
//! duplicates, against the row-at-a-time reference evaluator
//! (`mvmqo_exec::reference`) — the oracle the batch engine must agree with
//! bag-for-bag. A second block checks that maintenance epochs executed
//! under the parallel scheduler produce exactly the same view contents as
//! serial execution.

use mvmqo_core::api::{plan_maintenance, MaintenanceProblem};
use mvmqo_core::cost::CostModel;
use mvmqo_core::dag::Dag;
use mvmqo_core::opt::StoredRef;
use mvmqo_core::plan::{PhysPlan, PlanNode};
use mvmqo_exec::{
    eval_logical, execute_epoch_opts, index_plan_from_report, ExecOptions, Runtime, RuntimeState,
};
use mvmqo_integration_tests::{generate_deltas, small_world, update_model_for};
use mvmqo_relalg::agg::{AggFunc, AggSpec};
use mvmqo_relalg::catalog::{Catalog, ColumnSpec, TableId};
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::logical::{LogicalExpr, ViewDef};
use mvmqo_relalg::schema::{Attribute, Schema};
use mvmqo_relalg::tuple::{bag_eq, Tuple};
use mvmqo_relalg::types::{DataType, Value};
use mvmqo_storage::database::Database;
use mvmqo_storage::delta::DeltaSet;
use mvmqo_storage::index::IndexKind;
use mvmqo_storage::table::StoredTable;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Random cell: small ints (lots of duplicates) with ~1-in-6 NULLs.
fn cell() -> impl Strategy<Value = Value> {
    (0i64..12).prop_map(|v| {
        if v >= 10 {
            Value::Null
        } else {
            Value::Int(v % 5)
        }
    })
}

/// Random three-column multiset, up to 24 rows.
fn rows3() -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec(proptest::collection::vec(cell(), 3), 0..24)
}

/// Two three-column tables `t(t0,t1,t2)` / `u(u0,u1,u2)` loaded with the
/// given multisets.
fn two_tables(t_rows: &[Tuple], u_rows: &[Tuple]) -> (Catalog, Database, TableId, TableId) {
    let mut c = Catalog::new();
    let t = c.add_table(
        "t",
        vec![
            ColumnSpec::with_distinct("t0", DataType::Int, 5.0),
            ColumnSpec::with_distinct("t1", DataType::Int, 5.0),
            ColumnSpec::with_distinct("t2", DataType::Int, 5.0),
        ],
        t_rows.len().max(1) as f64,
        &["t0"],
    );
    let u = c.add_table(
        "u",
        vec![
            ColumnSpec::with_distinct("u0", DataType::Int, 5.0),
            ColumnSpec::with_distinct("u1", DataType::Int, 5.0),
            ColumnSpec::with_distinct("u2", DataType::Int, 5.0),
        ],
        u_rows.len().max(1) as f64,
        &["u0"],
    );
    let mut db = Database::new();
    db.put_base(
        t,
        StoredTable::with_rows(c.table(t).schema.clone(), t_rows.to_vec()),
    );
    db.put_base(
        u,
        StoredTable::with_rows(c.table(u).schema.clone(), u_rows.to_vec()),
    );
    (c, db, t, u)
}

/// Evaluate a physical plan through the vectorized runtime.
fn eval_phys(catalog: &Catalog, db: &mut Database, plan: &PhysPlan) -> Vec<Tuple> {
    let deltas = DeltaSet::new();
    eval_phys_threads(catalog, db, &deltas, plan, 1)
}

/// Evaluate a physical plan with an explicit morsel-parallel worker budget
/// (`1` = the serial reference path the parallel paths must match exactly).
fn eval_phys_threads(
    catalog: &Catalog,
    db: &mut Database,
    deltas: &DeltaSet,
    plan: &PhysPlan,
    threads: usize,
) -> Vec<Tuple> {
    let dag = Dag::new();
    let mut rt = Runtime::new(
        &dag,
        catalog,
        CostModel::default(),
        db,
        deltas,
        BTreeMap::new(),
        HashMap::new(),
    );
    rt.set_threads(threads);
    rt.eval(plan).expect("plan evaluation")
}

fn scan(catalog: &Catalog, t: TableId) -> PhysPlan {
    PhysPlan {
        schema: catalog.table(t).schema.clone(),
        node: PlanNode::ScanBase(t),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused scan→filter→project ≡ reference Select+Project.
    #[test]
    fn filter_project_matches_reference(t_rows in rows3(), lit in 0i64..5) {
        let (c, mut db, t, _) = two_tables(&t_rows, &[]);
        let t0 = c.table(t).attr("t0");
        let t1 = c.table(t).attr("t1");
        let t2 = c.table(t).attr("t2");
        let pred = Predicate::from_conjuncts(vec![
            ScalarExpr::col_cmp_lit(t0, CmpOp::Le, lit),
            ScalarExpr::col_eq_col(t1, t1),
        ]);
        let phys = PhysPlan {
            schema: c.table(t).schema.select_ids(&[t2, t0]),
            node: PlanNode::Project {
                input: Box::new(PhysPlan {
                    schema: c.table(t).schema.clone(),
                    node: PlanNode::Filter {
                        input: Box::new(scan(&c, t)),
                        pred: pred.clone(),
                    },
                }),
                attrs: vec![t2, t0],
            },
        };
        let got = eval_phys(&c, &mut db, &phys);
        let oracle = LogicalExpr::project(
            LogicalExpr::select(LogicalExpr::scan(t), pred),
            vec![t2, t0],
        );
        let expected = eval_logical(&oracle, &c, &db);
        prop_assert!(bag_eq(&got, &expected), "got {got:?} expected {expected:?}");
    }

    /// Borrowed-key hash join (with residual) ≡ reference join.
    #[test]
    fn hash_join_matches_reference(t_rows in rows3(), u_rows in rows3(), build_left in proptest::bool::ANY) {
        let (c, mut db, t, u) = two_tables(&t_rows, &u_rows);
        let t0 = c.table(t).attr("t0");
        let t1 = c.table(t).attr("t1");
        let u0 = c.table(u).attr("u0");
        let u1 = c.table(u).attr("u1");
        let combined = c.table(t).schema.concat(&c.table(u).schema);
        let residual = Predicate::from_expr(ScalarExpr::cmp(
            CmpOp::Le,
            ScalarExpr::col(t1),
            ScalarExpr::col(u1),
        ));
        let node = if build_left {
            PlanNode::HashJoin {
                build: Box::new(scan(&c, t)),
                probe: Box::new(scan(&c, u)),
                keys: vec![(t0, u0)],
                residual: residual.clone(),
            }
        } else {
            PlanNode::HashJoin {
                build: Box::new(scan(&c, u)),
                probe: Box::new(scan(&c, t)),
                keys: vec![(u0, t0)],
                residual: residual.clone(),
            }
        };
        let phys = PhysPlan { schema: combined, node };
        let got = eval_phys(&c, &mut db, &phys);
        let oracle = LogicalExpr::Join {
            left: LogicalExpr::scan(t),
            right: LogicalExpr::scan(u),
            predicate: Predicate::from_conjuncts(vec![
                ScalarExpr::col_eq_col(t0, u0),
                ScalarExpr::cmp(CmpOp::Le, ScalarExpr::col(t1), ScalarExpr::col(u1)),
            ]),
        };
        let expected = eval_logical(&oracle, &c, &db);
        prop_assert!(bag_eq(&got, &expected), "got {} rows, expected {}", got.len(), expected.len());
    }

    /// Position-sorted merge join ≡ reference join.
    #[test]
    fn merge_join_matches_reference(t_rows in rows3(), u_rows in rows3()) {
        let (c, mut db, t, u) = two_tables(&t_rows, &u_rows);
        let t0 = c.table(t).attr("t0");
        let u0 = c.table(u).attr("u0");
        let phys = PhysPlan {
            schema: c.table(t).schema.concat(&c.table(u).schema),
            node: PlanNode::MergeJoin {
                left: Box::new(scan(&c, t)),
                right: Box::new(scan(&c, u)),
                keys: vec![(t0, u0)],
                residual: Predicate::true_(),
            },
        };
        let got = eval_phys(&c, &mut db, &phys);
        let oracle = LogicalExpr::Join {
            left: LogicalExpr::scan(t),
            right: LogicalExpr::scan(u),
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(t0, u0)),
        };
        let expected = eval_logical(&oracle, &c, &db);
        prop_assert!(bag_eq(&got, &expected));
    }

    /// Nested-loop join with an arbitrary predicate ≡ reference join.
    #[test]
    fn nl_join_matches_reference(t_rows in rows3(), u_rows in rows3()) {
        let (c, mut db, t, u) = two_tables(&t_rows, &u_rows);
        let t1 = c.table(t).attr("t1");
        let u1 = c.table(u).attr("u1");
        let pred = Predicate::from_expr(ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::col(t1),
            ScalarExpr::col(u1),
        ));
        let phys = PhysPlan {
            schema: c.table(t).schema.concat(&c.table(u).schema),
            node: PlanNode::NlJoin {
                left: Box::new(scan(&c, t)),
                right: Box::new(scan(&c, u)),
                pred: pred.clone(),
            },
        };
        let got = eval_phys(&c, &mut db, &phys);
        let oracle = LogicalExpr::Join {
            left: LogicalExpr::scan(t),
            right: LogicalExpr::scan(u),
            predicate: pred,
        };
        let expected = eval_logical(&oracle, &c, &db);
        prop_assert!(bag_eq(&got, &expected));
    }

    /// Index nested-loop join probing the stored inner *in place*
    /// ≡ reference join (the index is created on demand by `prepare`).
    #[test]
    fn index_nl_join_matches_reference(t_rows in rows3(), u_rows in rows3()) {
        let (c, mut db, t, u) = two_tables(&t_rows, &u_rows);
        let t0 = c.table(t).attr("t0");
        let u0 = c.table(u).attr("u0");
        let phys = PhysPlan {
            schema: c.table(t).schema.concat(&c.table(u).schema),
            node: PlanNode::IndexNlJoin {
                outer: Box::new(scan(&c, t)),
                inner: StoredRef::Base(u),
                keys: (t0, u0),
                inner_filter: Predicate::true_(),
                residual: Predicate::true_(),
            },
        };
        let got = eval_phys(&c, &mut db, &phys);
        // `prepare` must have built the probe index on the stored inner.
        assert!(db.base(u).unwrap().index_on(u0).is_some());
        let oracle = LogicalExpr::Join {
            left: LogicalExpr::scan(t),
            right: LogicalExpr::scan(u),
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(t0, u0)),
        };
        let expected = eval_logical(&oracle, &c, &db);
        prop_assert!(bag_eq(&got, &expected));
    }

    /// Index scan (equality probe + residual filter) ≡ reference select.
    #[test]
    fn index_scan_matches_reference(t_rows in rows3(), key in 0i64..5, lit in 0i64..5, with_index in proptest::bool::ANY) {
        let (c, mut db, t, _) = two_tables(&t_rows, &[]);
        let t0 = c.table(t).attr("t0");
        let t1 = c.table(t).attr("t1");
        if with_index {
            db.create_base_index(t, t0, IndexKind::Hash).unwrap();
        }
        let pred = Predicate::from_conjuncts(vec![
            ScalarExpr::col_cmp_lit(t0, CmpOp::Eq, key),
            ScalarExpr::col_cmp_lit(t1, CmpOp::Le, lit),
        ]);
        let phys = PhysPlan {
            schema: c.table(t).schema.clone(),
            node: PlanNode::IndexScan {
                target: StoredRef::Base(t),
                attr: t0,
                pred: pred.clone(),
            },
        };
        let got = eval_phys(&c, &mut db, &phys);
        let expected = eval_logical(&LogicalExpr::select(LogicalExpr::scan(t), pred), &c, &db);
        prop_assert!(bag_eq(&got, &expected));
    }

    /// Columnar grouped aggregation (borrowed-key group table)
    /// ≡ reference aggregation, including NULL group keys.
    #[test]
    fn aggregate_matches_reference(t_rows in rows3()) {
        let (mut c, mut db, t, _) = two_tables(&t_rows, &[]);
        let t0 = c.table(t).attr("t0");
        let t1 = c.table(t).attr("t1");
        let sum_out = c.fresh_attr();
        let cnt_out = c.fresh_attr();
        let min_out = c.fresh_attr();
        let aggs = vec![
            AggSpec::new(AggFunc::Sum, ScalarExpr::Col(t1), sum_out),
            AggSpec::new(AggFunc::Count, ScalarExpr::Col(t1), cnt_out),
            AggSpec::new(AggFunc::Min, ScalarExpr::Col(t1), min_out),
        ];
        let schema = Schema::new(vec![
            c.table(t).schema.attr(t0).unwrap().clone(),
            Attribute { id: sum_out, name: "s".into(), data_type: DataType::Int },
            Attribute { id: cnt_out, name: "n".into(), data_type: DataType::Int },
            Attribute { id: min_out, name: "m".into(), data_type: DataType::Int },
        ]);
        let phys = PhysPlan {
            schema,
            node: PlanNode::HashAggregate {
                input: Box::new(scan(&c, t)),
                group_by: vec![t0],
                aggs: aggs.clone(),
            },
        };
        let got = eval_phys(&c, &mut db, &phys);
        let oracle = LogicalExpr::aggregate(LogicalExpr::scan(t), vec![t0], aggs);
        let expected = eval_logical(&oracle, &c, &db);
        prop_assert!(bag_eq(&got, &expected), "got {got:?} expected {expected:?}");
    }

    /// Distinct / UnionAll / Minus ≡ their reference counterparts.
    #[test]
    fn distinct_union_minus_match_reference(t_rows in rows3(), lit in 0i64..5) {
        let (c, mut db, t, _) = two_tables(&t_rows, &[]);
        let t0 = c.table(t).attr("t0");
        let schema = c.table(t).schema.clone();
        let pred = Predicate::from_expr(ScalarExpr::col_cmp_lit(t0, CmpOp::Le, lit));

        let distinct = PhysPlan {
            schema: schema.clone(),
            node: PlanNode::Distinct { input: Box::new(scan(&c, t)) },
        };
        let got = eval_phys(&c, &mut db, &distinct);
        let expected = eval_logical(&LogicalExpr::distinct(LogicalExpr::scan(t)), &c, &db);
        prop_assert!(bag_eq(&got, &expected));

        let union = PhysPlan {
            schema: schema.clone(),
            node: PlanNode::UnionAll(vec![
                scan(&c, t),
                PhysPlan {
                    schema: schema.clone(),
                    node: PlanNode::Filter { input: Box::new(scan(&c, t)), pred: pred.clone() },
                },
            ]),
        };
        let got = eval_phys(&c, &mut db, &union);
        let expected = eval_logical(
            &LogicalExpr::UnionAll {
                left: LogicalExpr::scan(t),
                right: LogicalExpr::select(LogicalExpr::scan(t), pred.clone()),
            },
            &c,
            &db,
        );
        prop_assert!(bag_eq(&got, &expected));

        let minus = PhysPlan {
            schema: schema.clone(),
            node: PlanNode::Minus {
                left: Box::new(scan(&c, t)),
                right: Box::new(PhysPlan {
                    schema: schema.clone(),
                    node: PlanNode::Filter { input: Box::new(scan(&c, t)), pred: pred.clone() },
                }),
            },
        };
        let got = eval_phys(&c, &mut db, &minus);
        let expected = eval_logical(
            &LogicalExpr::Minus {
                left: LogicalExpr::scan(t),
                right: LogicalExpr::select(LogicalExpr::scan(t), pred),
            },
            &c,
            &db,
        );
        prop_assert!(bag_eq(&got, &expected));
    }
}

// ======================================================================
// Morsel-driven intra-operator parallelism
// ======================================================================

/// Deterministic multiset big enough to cross the morsel threshold (1024
/// rows per morsel), with NULLs, heavy duplicates, and a string column
/// that storage dictionary-encodes: `(k Int, s Str, w Int)`.
fn morsel_rows(mut seed: u64, n: usize) -> Vec<Tuple> {
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed >> 33
    };
    (0..n)
        .map(|_| {
            let (k, s, w) = (next(), next(), next());
            vec![
                if k % 8 == 0 {
                    Value::Null
                } else {
                    Value::Int((k % 64) as i64)
                },
                if s % 9 == 0 {
                    Value::Null
                } else {
                    Value::str(format!("s{}", s % 37))
                },
                if w % 11 == 0 {
                    Value::Null
                } else {
                    Value::Int((w % 23) as i64)
                },
            ]
        })
        .collect()
}

/// One `(k Int, s Str, w Int)` table loaded with `rows`.
fn morsel_table(name: &str, rows: &[Tuple]) -> (Catalog, Database, TableId) {
    let mut c = Catalog::new();
    let t = c.add_table(
        name,
        vec![
            ColumnSpec::with_distinct("k", DataType::Int, 64.0),
            ColumnSpec::with_distinct("s", DataType::Str, 37.0),
            ColumnSpec::with_distinct("w", DataType::Int, 23.0),
        ],
        rows.len().max(1) as f64,
        &["k"],
    );
    let mut db = Database::new();
    db.put_base(
        t,
        StoredTable::with_rows(c.table(t).schema.clone(), rows.to_vec()),
    );
    (c, db, t)
}

proptest! {
    // Inputs must cross the 1024-row morsel threshold, so each case is
    // thousands of rows — keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Morsel-parallel filter (including the dictionary code-space
    /// equality fast path) returns *exactly* the serial result — same
    /// rows, same order — at 2 and 4 workers, and is deterministic across
    /// repeated runs.
    #[test]
    fn morsel_filter_identical_to_serial(seed in 1u64..1_000_000, n in 1100usize..2600, lit in 0i64..64) {
        let rows = morsel_rows(seed, n);
        let (c, mut db, t) = morsel_table("t", &rows);
        let k = c.table(t).attr("k");
        let s = c.table(t).attr("s");
        let phys = PhysPlan {
            schema: c.table(t).schema.clone(),
            node: PlanNode::Filter {
                input: Box::new(scan(&c, t)),
                pred: Predicate::from_conjuncts(vec![
                    ScalarExpr::col_cmp_lit(k, CmpOp::Le, lit),
                    ScalarExpr::col_cmp_lit(s, CmpOp::Eq, "s7"),
                ]),
            },
        };
        let none = DeltaSet::new();
        let serial = eval_phys_threads(&c, &mut db, &none, &phys, 1);
        for threads in [2usize, 4] {
            let parallel = eval_phys_threads(&c, &mut db, &none, &phys, threads);
            prop_assert_eq!(&serial, &parallel);
        }
        let again = eval_phys_threads(&c, &mut db, &none, &phys, 4);
        prop_assert_eq!(&serial, &again);
    }

    /// Hash-partitioned parallel join build + probe on a *string* key
    /// (dictionary-hashed) with a residual predicate produces exactly the
    /// serial pair order.
    #[test]
    fn morsel_hash_join_identical_to_serial(seed in 1u64..1_000_000, n in 1100usize..2200) {
        let build_rows = morsel_rows(seed, n);
        let probe_rows = morsel_rows(seed.wrapping_add(99), n + 311);
        let (mut c, mut db, t) = morsel_table("t", &build_rows);
        let u = c.add_table(
            "u",
            vec![
                ColumnSpec::with_distinct("uk", DataType::Int, 64.0),
                ColumnSpec::with_distinct("us", DataType::Str, 37.0),
                ColumnSpec::with_distinct("uw", DataType::Int, 23.0),
            ],
            probe_rows.len() as f64,
            &["uk"],
        );
        db.put_base(
            u,
            StoredTable::with_rows(c.table(u).schema.clone(), probe_rows.to_vec()),
        );
        let (ts, tw) = (c.table(t).attr("s"), c.table(t).attr("w"));
        let (us, uw) = (c.table(u).attr("us"), c.table(u).attr("uw"));
        let phys = PhysPlan {
            schema: c.table(t).schema.concat(&c.table(u).schema),
            node: PlanNode::HashJoin {
                build: Box::new(scan(&c, t)),
                probe: Box::new(scan(&c, u)),
                keys: vec![(ts, us)],
                residual: Predicate::from_expr(ScalarExpr::cmp(
                    CmpOp::Le,
                    ScalarExpr::col(tw),
                    ScalarExpr::col(uw),
                )),
            },
        };
        let none = DeltaSet::new();
        let serial = eval_phys_threads(&c, &mut db, &none, &phys, 1);
        for threads in [2usize, 4] {
            let parallel = eval_phys_threads(&c, &mut db, &none, &phys, threads);
            prop_assert_eq!(&serial, &parallel);
        }
    }

    /// Partition-parallel grouped aggregation — both the single-dict-key
    /// code-space grouping and the generic multi-key path — returns
    /// exactly the serial groups in the serial key order.
    #[test]
    fn morsel_aggregate_identical_to_serial(seed in 1u64..1_000_000, n in 1100usize..2600) {
        let rows = morsel_rows(seed, n);
        let (mut c, mut db, t) = morsel_table("t", &rows);
        let k = c.table(t).attr("k");
        let s = c.table(t).attr("s");
        let w = c.table(t).attr("w");
        let (sum_out, cnt_out, min_out, max_out) =
            (c.fresh_attr(), c.fresh_attr(), c.fresh_attr(), c.fresh_attr());
        // Single string group key: the dictionary code-space grouping.
        let by_s = PhysPlan {
            schema: Schema::new(vec![
                c.table(t).schema.attr(s).unwrap().clone(),
                Attribute { id: sum_out, name: "sum".into(), data_type: DataType::Int },
                Attribute { id: cnt_out, name: "cnt".into(), data_type: DataType::Int },
                Attribute { id: min_out, name: "min".into(), data_type: DataType::Int },
            ]),
            node: PlanNode::HashAggregate {
                input: Box::new(scan(&c, t)),
                group_by: vec![s],
                aggs: vec![
                    AggSpec::new(AggFunc::Sum, ScalarExpr::Col(w), sum_out),
                    AggSpec::new(AggFunc::Count, ScalarExpr::Col(w), cnt_out),
                    AggSpec::new(AggFunc::Min, ScalarExpr::Col(w), min_out),
                ],
            },
        };
        // Multi-key grouping with a string MIN/MAX over the dict column.
        let by_ks = PhysPlan {
            schema: Schema::new(vec![
                c.table(t).schema.attr(k).unwrap().clone(),
                c.table(t).schema.attr(s).unwrap().clone(),
                Attribute { id: max_out, name: "max_s".into(), data_type: DataType::Str },
            ]),
            node: PlanNode::HashAggregate {
                input: Box::new(scan(&c, t)),
                group_by: vec![k, s],
                aggs: vec![AggSpec::new(AggFunc::Max, ScalarExpr::Col(s), max_out)],
            },
        };
        let none = DeltaSet::new();
        for phys in [&by_s, &by_ks] {
            let serial = eval_phys_threads(&c, &mut db, &none, phys, 1);
            for threads in [2usize, 4] {
                let parallel = eval_phys_threads(&c, &mut db, &none, phys, threads);
                prop_assert_eq!(&serial, &parallel);
            }
        }
    }

    /// Morsel-parallel delta scans preserve the serial row order for both
    /// update kinds.
    #[test]
    fn morsel_scan_delta_identical_to_serial(seed in 1u64..1_000_000, n in 1100usize..2600) {
        let (c, mut db, t) = morsel_table("t", &morsel_rows(seed, 8));
        let mut deltas = DeltaSet::new();
        deltas.insert(
            t,
            mvmqo_storage::delta::DeltaBatch::new(
                morsel_rows(seed.wrapping_add(1), n),
                morsel_rows(seed.wrapping_add(2), n / 2 + 1100),
            ),
        );
        for kind in [mvmqo_storage::delta::DeltaKind::Insert, mvmqo_storage::delta::DeltaKind::Delete] {
            let phys = PhysPlan {
                schema: c.table(t).schema.clone(),
                node: PlanNode::ScanDelta { table: t, kind },
            };
            let serial = eval_phys_threads(&c, &mut db, &deltas, &phys, 1);
            for threads in [2usize, 4] {
                let parallel = eval_phys_threads(&c, &mut db, &deltas, &phys, threads);
                prop_assert_eq!(&serial, &parallel);
            }
        }
    }
}

/// One full optimize→execute epoch over the small world; returns the final
/// view contents. `threads` is the worker budget when `parallel` (0 =
/// auto-detect).
fn run_epoch_with(
    parallel: bool,
    threads: usize,
    percent: f64,
    seed: u64,
) -> BTreeMap<String, Vec<Tuple>> {
    let mut world = small_world(30);
    let c = &world.catalog;
    let a_id = c.table(world.a).attr("id");
    let b_aid = c.table(world.b).attr("a_id");
    let b_id = c.table(world.b).attr("id");
    let c_bid = c.table(world.c).attr("b_id");
    let a_x = c.table(world.a).attr("x");
    let c_v = c.table(world.c).attr("v");
    let join = LogicalExpr::Join {
        left: LogicalExpr::join(
            LogicalExpr::scan(world.a),
            LogicalExpr::scan(world.b),
            Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
        ),
        right: LogicalExpr::scan(world.c),
        predicate: Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid)),
    };
    let agg_out = world.catalog.fresh_attr();
    let views = vec![
        ViewDef::new("vjoin", std::sync::Arc::new(join.clone())),
        ViewDef::new(
            "vsel",
            LogicalExpr::select(
                join.clone().into(),
                Predicate::from_expr(ScalarExpr::col_cmp_lit(a_x, CmpOp::Lt, 9i64)),
            ),
        ),
        ViewDef::new(
            "vagg",
            LogicalExpr::aggregate(
                join.into(),
                vec![a_x],
                vec![AggSpec::new(AggFunc::Sum, ScalarExpr::Col(c_v), agg_out)],
            ),
        ),
    ];
    let deltas = generate_deltas(&world, percent, seed);
    let updates = update_model_for(&deltas);
    let problem = MaintenanceProblem::new(views.clone(), updates).with_pk_indices(&world.catalog);
    let initial_indices = problem.initial_indices.clone();
    let planned = plan_maintenance(&mut world.catalog, &problem);
    let (dag, report) = (planned.dag, planned.report);
    let index_plan = index_plan_from_report(&initial_indices, &report);
    let mut state = RuntimeState::new();
    let exec = execute_epoch_opts(
        &dag,
        &world.catalog,
        problem.cost_model,
        &mut world.db,
        &deltas,
        &report.program,
        &index_plan,
        &mut state,
        ExecOptions {
            parallel,
            threads,
            // The property must exercise the real parallel scheduler even
            // on 1-core CI hosts (where the auto-disable would otherwise
            // make this serial-vs-serial).
            force_parallel: true,
            ..ExecOptions::default()
        },
    )
    .expect("epoch execution");
    exec.view_rows
}

proptest! {
    // Full epochs are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Epoch results under the parallel scheduler are bag-equal to serial
    /// execution at every worker budget — the determinism contract of the
    /// level-wise scheduler and the morsel-parallel operators inside it.
    #[test]
    fn parallel_epoch_equals_serial(seed in 1u64..10_000, percent in 1u32..30) {
        let serial = run_epoch_with(false, 0, percent as f64, seed);
        for threads in [2usize, 4] {
            let parallel = run_epoch_with(true, threads, percent as f64, seed);
            prop_assert_eq!(serial.len(), parallel.len());
            for (name, srows) in &serial {
                let prows = parallel.get(name).expect("same view set");
                prop_assert!(
                    bag_eq(srows, prows),
                    "view {} diverged at {} workers: serial {} rows, parallel {}",
                    name, threads, srows.len(), prows.len()
                );
            }
        }
    }
}
