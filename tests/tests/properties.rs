//! Property-based tests (proptest) on the core invariants:
//!
//! * incremental maintenance ≡ recomputation for random databases, views,
//!   and update batches (the fundamental correctness claim);
//! * bag-algebra laws the delta rules rely on;
//! * DAG invariants: unification (no two live nodes share a semantic key),
//!   expansion size, topological order;
//! * greedy sanity: chosen benefits positive, final ≤ initial cost.

use mvmqo_core::opt::GreedyOptions;
use mvmqo_integration_tests::{
    generate_deltas, optimize_execute_verify, small_world, update_model_for,
};
use mvmqo_relalg::agg::{AggFunc, AggSpec};
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::logical::{LogicalExpr, ViewDef};
use mvmqo_relalg::tuple::{bag_counts, bag_minus, bag_union, Tuple};
use mvmqo_relalg::types::Value;
use proptest::prelude::*;

fn small_tuples() -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec(
        proptest::collection::vec((0i64..6).prop_map(Value::Int), 2),
        0..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bag_minus_then_union_restores_counts(a in small_tuples(), b in small_tuples()) {
        // (A ∸ B) ⊎ (A ∩ B) = A  (multiset identity used by delete merges)
        let diff = bag_minus(&a, &b);
        let removed = bag_minus(&a, &diff);
        let restored = bag_union(&diff, &removed);
        prop_assert_eq!(bag_counts(&restored), bag_counts(&a));
    }

    #[test]
    fn bag_union_counts_add(a in small_tuples(), b in small_tuples()) {
        let u = bag_union(&a, &b);
        let ca = bag_counts(&a);
        let cb = bag_counts(&b);
        let cu = bag_counts(&u);
        for (k, v) in &cu {
            let expect = ca.get(k).copied().unwrap_or(0) + cb.get(k).copied().unwrap_or(0);
            prop_assert_eq!(*v, expect);
        }
    }

    #[test]
    fn bag_minus_never_negative(a in small_tuples(), b in small_tuples()) {
        let d = bag_minus(&a, &b);
        let ca = bag_counts(&a);
        for (k, v) in bag_counts(&d) {
            prop_assert!(v <= ca.get(k).copied().unwrap_or(0));
            prop_assert!(v >= 0);
        }
    }
}

proptest! {
    // End-to-end pipeline properties are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The central theorem: for random data, random update batches, random
    /// view shape (join with optional selection/aggregation), the
    /// incrementally maintained view equals recomputation.
    #[test]
    fn maintenance_equals_recomputation(
        seed in 1u64..10_000,
        percent in 1u32..40,
        cutoff in 1i64..20,
        with_agg in proptest::bool::ANY,
        with_select in proptest::bool::ANY,
    ) {
        let mut world = small_world(30);
        let c = &world.catalog;
        let a_id = c.table(world.a).attr("id");
        let b_aid = c.table(world.b).attr("a_id");
        let b_id = c.table(world.b).attr("id");
        let c_bid = c.table(world.c).attr("b_id");
        let a_x = c.table(world.a).attr("x");
        let c_v = c.table(world.c).attr("v");
        let mut expr = LogicalExpr::Join {
            left: LogicalExpr::join(
                LogicalExpr::scan(world.a),
                LogicalExpr::scan(world.b),
                Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
            ),
            right: LogicalExpr::scan(world.c),
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid)),
        }.into();
        if with_select {
            expr = LogicalExpr::select(
                expr,
                Predicate::from_expr(ScalarExpr::col_cmp_lit(a_x, CmpOp::Lt, cutoff)),
            );
        }
        if with_agg {
            let out = world.catalog.fresh_attr();
            expr = LogicalExpr::aggregate(
                expr,
                vec![a_x],
                vec![AggSpec::new(AggFunc::Sum, ScalarExpr::Col(c_v), out)],
            );
        }
        let views = vec![ViewDef::new("prop_view", expr)];
        let deltas = generate_deltas(&world, percent as f64, seed);
        // optimize_execute_verify panics (→ test failure) on any multiset
        // mismatch between maintained and recomputed contents.
        optimize_execute_verify(&mut world, views, &deltas, GreedyOptions::default());
    }

    #[test]
    fn greedy_chosen_benefits_positive_and_cost_monotone(
        seed in 1u64..10_000,
        percent in 1u32..60,
    ) {
        let mut world = small_world(30);
        let c = &world.catalog;
        let a_id = c.table(world.a).attr("id");
        let b_aid = c.table(world.b).attr("a_id");
        let b_id = c.table(world.b).attr("id");
        let c_bid = c.table(world.c).attr("b_id");
        let join = LogicalExpr::Join {
            left: LogicalExpr::join(
                LogicalExpr::scan(world.a),
                LogicalExpr::scan(world.b),
                Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
            ),
            right: LogicalExpr::scan(world.c),
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid)),
        };
        let views = vec![
            ViewDef::new("v1", std::sync::Arc::new(join.clone())),
            ViewDef::new("v2", LogicalExpr::select(
                join.into(),
                Predicate::from_expr(ScalarExpr::col_cmp_lit(
                    c.table(world.a).attr("x"), CmpOp::Lt, 7i64)),
            )),
        ];
        let deltas = generate_deltas(&world, percent as f64, seed);
        // audit_incremental: every greedy pick cross-checks the §6.2
        // incremental cost update against a full memo recompute (panics —
        // test failure — on divergence).
        let options = GreedyOptions {
            audit_incremental: true,
            ..Default::default()
        };
        let (report, _) = optimize_execute_verify(
            &mut world, views, &deltas, options);
        prop_assert!(report.total_cost <= report.nogreedy_cost + 1e-6);
        for m in &report.chosen_mats {
            prop_assert!(m.benefit > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DAG invariants over random join-chain views: the expanded DAG has
    /// exactly 2^k − 1 SPJ equivalence nodes for a k-relation chain query
    /// with one applied predicate set, a valid topological order, and no
    /// key duplicates (eager unification).
    #[test]
    fn dag_expansion_invariants(k in 2usize..5, dup in proptest::bool::ANY) {
        let mut world = small_world(10);
        let c = &world.catalog;
        let a_id = c.table(world.a).attr("id");
        let b_aid = c.table(world.b).attr("a_id");
        let b_id = c.table(world.b).attr("id");
        let c_bid = c.table(world.c).attr("b_id");
        let tables = [world.a, world.b, world.c];
        let preds = [
            ScalarExpr::col_eq_col(a_id, b_aid),
            ScalarExpr::col_eq_col(b_id, c_bid),
        ];
        let mut expr = LogicalExpr::scan(tables[0]);
        for i in 1..k.min(3) {
            expr = LogicalExpr::join(
                expr,
                LogicalExpr::scan(tables[i]),
                Predicate::from_expr(preds[i - 1].clone()),
            );
        }
        let mut views = vec![ViewDef::new("v", expr.clone())];
        if dup {
            views.push(ViewDef::new("v_dup", expr));
        }
        let (dag, _) = mvmqo_core::api::build_dag(&mut world.catalog, &views);
        let k_eff = k.min(3);
        prop_assert_eq!(dag.eq_count(), (1 << k_eff) - 1);
        // Duplicate view shares every node.
        let order = dag.topo_order();
        prop_assert_eq!(order.len(), dag.eq_count());
        // Children precede parents.
        let pos = |e: mvmqo_core::EqId| order.iter().position(|x| *x == e).unwrap();
        for op_id in dag.op_ids() {
            let op = dag.op(op_id);
            for ch in &op.children {
                prop_assert!(pos(*ch) < pos(op.parent));
            }
        }
        if dup {
            prop_assert_eq!(dag.roots()[0].eq, dag.roots()[1].eq);
        }
    }

    /// Update-model invariant: rows_at is piecewise consistent with the
    /// insert/delete batches and never negative.
    #[test]
    fn update_model_state_sequence(percent in 0u32..100, seed in 1u64..1000) {
        let world = small_world(20);
        let deltas = generate_deltas(&world, percent as f64, seed);
        let m = update_model_for(&deltas);
        for t in [world.a, world.b, world.c] {
            let base = world.db.base(t).unwrap().len() as f64;
            let mut expect = base;
            for step in m.steps() {
                // rows_at reports the state *before* this step is applied.
                let at = m.rows_at(t, base, step.id);
                prop_assert!((at - expect).abs() < 1e-9, "at={at} expect={expect}");
                prop_assert!(at >= 0.0);
                if step.table == t {
                    match step.kind {
                        mvmqo_storage::delta::DeltaKind::Insert => expect += step.rows,
                        mvmqo_storage::delta::DeltaKind::Delete => expect -= step.rows,
                    }
                }
            }
            prop_assert!((m.rows_after_all(t, base) - expect.max(0.0)).abs() < 1e-9);
        }
    }
}
