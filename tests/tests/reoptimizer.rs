//! Re-entrant optimizer session: cross-crate correctness and performance.
//!
//! * Property: `add_view` then `remove_view` leaves a session whose greedy
//!   selection (and plan cost) equals never having added the view.
//! * Engine-level: a `DeltaDrift` replan of a 50-view warehouse is at
//!   least 5× faster than a cold rebuild of the same planning problem,
//!   with the plan's estimated cost no worse than the cold plan's.

use mvmqo_core::cost::CostModel;
use mvmqo_core::opt::GreedyOptions;
use mvmqo_core::session::{Optimizer, PlanMode};
use mvmqo_core::update::UpdateModel;
use mvmqo_integration_tests::small_world;
use mvmqo_relalg::catalog::{Catalog, TableId};
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::logical::{LogicalExpr, ViewDef};
use mvmqo_tpcd::{generate_database, generate_table_update, many_views, tpcd_catalog};
use mvmqo_warehouse::{PlanMode as WhPlanMode, ReoptPolicy, ReoptTrigger, Warehouse};
use proptest::prelude::*;
use std::sync::Arc;

/// The pool of candidate views over the small a←b←c world: join chains
/// with optional range selections (indices into this pool drive the
/// property test).
fn view_pool(catalog: &Catalog, a: TableId, b: TableId, c: TableId) -> Vec<ViewDef> {
    let a_id = catalog.table(a).attr("id");
    let a_x = catalog.table(a).attr("x");
    let b_aid = catalog.table(b).attr("a_id");
    let b_id = catalog.table(b).attr("id");
    let b_w = catalog.table(b).attr("w");
    let c_bid = catalog.table(c).attr("b_id");
    let ab = |extra: Option<ScalarExpr>| -> Arc<LogicalExpr> {
        let mut conjuncts = vec![ScalarExpr::col_eq_col(a_id, b_aid)];
        conjuncts.extend(extra);
        LogicalExpr::join(
            LogicalExpr::scan(a),
            LogicalExpr::scan(b),
            Predicate::from_conjuncts(conjuncts),
        )
    };
    let abc = |extra: Option<ScalarExpr>| -> Arc<LogicalExpr> {
        LogicalExpr::join(
            ab(extra),
            LogicalExpr::scan(c),
            Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid)),
        )
    };
    let bc = LogicalExpr::join(
        LogicalExpr::scan(b),
        LogicalExpr::scan(c),
        Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid)),
    );
    vec![
        ViewDef::new("p_ab", ab(None)),
        ViewDef::new("p_abc", abc(None)),
        ViewDef::new(
            "p_abc_x5",
            abc(Some(ScalarExpr::col_cmp_lit(a_x, CmpOp::Lt, 5i64))),
        ),
        ViewDef::new(
            "p_abc_x12",
            abc(Some(ScalarExpr::col_cmp_lit(a_x, CmpOp::Lt, 12i64))),
        ),
        ViewDef::new(
            "p_ab_w",
            ab(Some(ScalarExpr::col_cmp_lit(b_w, CmpOp::Lt, 4i64))),
        ),
        ViewDef::new("p_bc", bc),
    ]
}

fn plan_cost(
    catalog: &mut Catalog,
    views: &[ViewDef],
    updates: &UpdateModel,
    pk: &[(TableId, mvmqo_relalg::schema::AttrId)],
) -> (f64, Vec<String>) {
    let mut s = Optimizer::new(CostModel::default(), GreedyOptions::default());
    s.set_initial_indices(pk.to_vec());
    s.set_update_model(updates.clone());
    for v in views {
        s.add_view(catalog, v);
    }
    let out = s.plan(catalog);
    (out.report.total_cost, chosen_of(&out.report))
}

fn chosen_of(report: &mvmqo_core::OptimizerReport) -> Vec<String> {
    let mut out: Vec<String> = report
        .chosen_mats
        .iter()
        .map(|m| m.description.clone())
        .chain(
            report
                .chosen_indices
                .iter()
                .map(|i| format!("idx {:?} {}", i.target, i.attr)),
        )
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// add_view + remove_view returns the session to a state whose greedy
    /// selection matches a session that never saw the extra view.
    #[test]
    fn add_then_remove_equals_never_added(
        base_mask in 1u32..63,
        extra_idx in 0usize..6,
        percent in 1u32..30,
    ) {
        let world = small_world(40);
        let (a, b, c) = (world.a, world.b, world.c);
        let pool = view_pool(&world.catalog, a, b, c);
        let mut base: Vec<ViewDef> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| base_mask & (1 << i) != 0 && *i != extra_idx)
            .map(|(_, v)| v.clone())
            .collect();
        if base.is_empty() {
            base.push(pool[(extra_idx + 1) % pool.len()].clone());
        }
        let extra = pool[extra_idx].clone();
        let updates = UpdateModel::percentage([a, b, c], percent as f64, |t| {
            world.catalog.table(t).stats.rows
        });
        let pk: Vec<_> = [a, b, c]
            .iter()
            .map(|t| (*t, world.catalog.table(*t).primary_key[0]))
            .collect();

        // Reference: never added.
        let mut cat1 = world.catalog.clone();
        let (ref_cost, ref_chosen) = plan_cost(&mut cat1, &base, &updates, &pk);

        // Session: base → plan → add extra → plan → remove → plan.
        let mut cat2 = world.catalog.clone();
        let mut s = Optimizer::new(CostModel::default(), GreedyOptions::default());
        s.set_initial_indices(pk.clone());
        s.set_update_model(updates.clone());
        for v in &base {
            s.add_view(&mut cat2, v);
        }
        let _ = s.plan(&mut cat2);
        s.add_view(&mut cat2, &extra);
        let _ = s.plan(&mut cat2);
        prop_assert!(s.remove_view(&extra.name));
        let back = s.plan(&mut cat2);
        prop_assert_eq!(back.mode, PlanMode::Incremental);

        prop_assert!(
            (back.report.total_cost - ref_cost).abs() <= 1e-6 * ref_cost.max(1.0),
            "cost after add+remove {} vs never-added {}",
            back.report.total_cost,
            ref_cost
        );
        prop_assert_eq!(
            chosen_of(&back.report),
            ref_chosen,
            "selection after add+remove differs from never-added"
        );
    }
}

/// A 50-view warehouse whose `DeltaDrift` replan must be ≥5× faster than a
/// cold rebuild of the *same* planning problem (identical views, catalog
/// statistics, and update model), with comparable plan quality.
#[test]
fn delta_drift_replan_on_50_views_is_5x_faster_than_cold() {
    let tpcd = tpcd_catalog(0.001);
    let db = generate_database(&tpcd, 1234);
    let views = many_views(&tpcd, 50);
    let gen = tpcd_catalog(0.001);
    let mut wh = Warehouse::new(tpcd.catalog, db).with_policy(ReoptPolicy {
        // Low threshold so a localized burst on part/partsupp trips the
        // drift trigger.
        delta_fraction: 0.02,
        cost_ratio: 1e12,
    });
    for v in &views {
        wh.register_view(v.clone()).unwrap();
    }
    assert_eq!(wh.views().len(), 50);

    // Epoch 1: a broad 5% batch seeds the observed per-table rates.
    let mut epoch1_sizes: Vec<(TableId, f64, f64)> = Vec::new();
    for t in gen.t.all() {
        let batch = generate_table_update(&gen, wh.database(), t, 5.0, 7).unwrap();
        if batch.inserts.is_empty() && batch.deletes.is_empty() {
            continue;
        }
        epoch1_sizes.push((t, batch.inserts.len() as f64, batch.deletes.len() as f64));
        wh.ingest(t, batch).unwrap();
    }
    wh.run_epoch().unwrap();

    // Epoch 2: a burst on the part/partsupp dimension (the DeltaDrift
    // shape — ingested batches name specific relations).
    let mut burst_sizes: Vec<(TableId, f64, f64)> = Vec::new();
    for t in [gen.t.part, gen.t.partsupp] {
        let batch = generate_table_update(&gen, wh.database(), t, 40.0, 77).unwrap();
        burst_sizes.push((t, batch.inserts.len() as f64, batch.deletes.len() as f64));
        wh.ingest(t, batch).unwrap();
    }
    let report = wh.run_epoch().unwrap();
    assert!(
        matches!(report.replanned, Some(ReoptTrigger::DeltaDrift { .. })),
        "expected a delta-drift replan, got {:?}",
        report.replanned
    );
    let drift = *wh.replans().last().unwrap();
    assert_eq!(drift.mode, WhPlanMode::Incremental);

    // Cold baseline: the same planning problem from scratch — the views,
    // the post-epoch-1 catalog statistics, and the update model the drift
    // replan used (observed epoch-1 rates, with the burst overriding
    // part/partsupp — exactly `Warehouse::update_model`'s construction).
    let mut cold_catalog = wh.catalog().clone();
    let model: Vec<(TableId, f64, f64)> = epoch1_sizes
        .iter()
        .map(|&(t, i, d)| {
            burst_sizes
                .iter()
                .find(|(bt, _, _)| *bt == t)
                .copied()
                .unwrap_or((t, i, d))
        })
        .collect();
    let updates = UpdateModel::new(model);
    let problem = mvmqo_core::api::MaintenanceProblem::new(views.clone(), updates)
        .with_pk_indices(&cold_catalog);
    let t0 = std::time::Instant::now();
    let cold = mvmqo_core::api::plan_maintenance(&mut cold_catalog, &problem);
    let cold_elapsed = t0.elapsed();

    assert!(
        drift.elapsed.as_secs_f64() * 5.0 <= cold_elapsed.as_secs_f64(),
        "drift replan {:?} not ≥5× faster than cold rebuild {:?}",
        drift.elapsed,
        cold_elapsed
    );
    // The incremental plan must not be worse than the cold plan of the
    // problem it solved (warm starts regularly do slightly better).
    let current = wh.current_report().unwrap();
    assert!(
        current.total_cost <= cold.report.total_cost * 1.01 + 1e-9,
        "drift plan cost {} vs cold {}",
        current.total_cost,
        cold.report.total_cost
    );
}
