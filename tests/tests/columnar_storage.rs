//! Columnar storage / delta-pipeline property tests.
//!
//! Batch-native storage means every merge path runs a columnar kernel
//! where the row-at-a-time code used to run. These proptests pin each
//! kernel to its row reference on random multisets with NULLs and
//! duplicates, for **every** `DataType` — including the `Mixed` physical
//! fallback (a declared-INT column through which floats and strings
//! flow):
//!
//! * `StoredTable::apply_delta` / `apply_batch_delta` (the `merge_plain`
//!   kernel) ≡ `bag_minus` + append, with index consistency through the
//!   position-remap delete path;
//! * `AggState::fold_batch` / `output_batch` (the `merge_aggregate`
//!   kernel) ≡ the row `fold`, for removable and non-removable aggregates
//!   on insert and delete sides;
//! * `DistinctState::fold_batch` (the `merge_distinct` kernel) ≡ the row
//!   `fold`;
//! * `Batch::minus` / `Batch::counts` ≡ `tuple::bag_minus` /
//!   `tuple::bag_counts`;
//! * the typed aggregation kernels of the vectorized executor ≡ the
//!   reference evaluator, per input type.

use mvmqo_core::cost::CostModel;
use mvmqo_core::dag::Dag;
use mvmqo_core::plan::{PhysPlan, PlanNode};
use mvmqo_exec::{eval_logical, AggState, DistinctState, Runtime};
use mvmqo_relalg::agg::{AggFunc, AggSpec};
use mvmqo_relalg::batch::Batch;
use mvmqo_relalg::catalog::{Catalog, ColumnSpec};
use mvmqo_relalg::expr::ScalarExpr;
use mvmqo_relalg::logical::LogicalExpr;
use mvmqo_relalg::schema::{AttrId, Attribute, Schema};
use mvmqo_relalg::tuple::{bag_counts, bag_eq, bag_minus, bag_union, Tuple};
use mvmqo_relalg::types::{DataType, Value};
use mvmqo_storage::database::Database;
use mvmqo_storage::delta::{DeltaBatch, DeltaKind, DeltaSet};
use mvmqo_storage::index::IndexKind;
use mvmqo_storage::table::StoredTable;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// The physical layouts under test: each declared `DataType` plus the
/// `Mixed` fallback (declared INT, heterogeneous values at runtime).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Layout {
    Int,
    Float,
    Str,
    Date,
    Bool,
    Mixed,
}

const LAYOUTS: [Layout; 6] = [
    Layout::Int,
    Layout::Float,
    Layout::Str,
    Layout::Date,
    Layout::Bool,
    Layout::Mixed,
];

impl Layout {
    fn declared(self) -> DataType {
        match self {
            Layout::Int | Layout::Mixed => DataType::Int,
            Layout::Float => DataType::Float,
            Layout::Str => DataType::Str,
            Layout::Date => DataType::Date,
            Layout::Bool => DataType::Bool,
        }
    }

    /// A small value domain (lots of duplicates) with ~1-in-5 NULLs.
    fn cell(self, pick: u8) -> Value {
        let pick = pick % 10;
        if pick >= 8 {
            return Value::Null;
        }
        let v = (pick % 4) as i64;
        match self {
            Layout::Int => Value::Int(v),
            Layout::Float => Value::Float(v as f64 + 0.5),
            Layout::Str => Value::str(format!("s{v}")),
            Layout::Date => Value::Date(v as i32),
            Layout::Bool => Value::Bool(v % 2 == 0),
            // Type drift: ints, floats, and strings through one column.
            Layout::Mixed => match v {
                0 => Value::Int(7),
                1 => Value::Float(2.5),
                2 => Value::str("m"),
                _ => Value::Int(v),
            },
        }
    }
}

fn schema_for(layout: Layout) -> Schema {
    Schema::new(vec![
        Attribute {
            id: AttrId(0),
            name: "t.k".into(),
            data_type: DataType::Int,
        },
        Attribute {
            id: AttrId(1),
            name: "t.v".into(),
            data_type: layout.declared(),
        },
    ])
}

/// Rows of (Int key, layout-typed value) from raw byte picks.
fn rows_for(layout: Layout, picks: &[(u8, u8)]) -> Vec<Tuple> {
    picks
        .iter()
        .map(|&(k, v)| {
            let key = if k % 7 == 6 {
                Value::Null
            } else {
                Value::Int((k % 4) as i64)
            };
            vec![key, layout.cell(v)]
        })
        .collect()
}

fn picks(max: usize) -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec(
        (0u32..65536).prop_map(|x| ((x >> 8) as u8, (x & 0xff) as u8)),
        0..max,
    )
}

/// Deletes are sampled from the stored multiset (by index) plus a few
/// arbitrary rows, so both matching and phantom deletes are exercised.
fn delete_rows(layout: Layout, base: &[Tuple], idx: &[usize], extra: &[(u8, u8)]) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = if base.is_empty() {
        Vec::new()
    } else {
        idx.iter().map(|i| base[i % base.len()].clone()).collect()
    };
    out.extend(rows_for(layout, extra));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Columnar `apply_delta` ≡ `bag_minus` + append, per layout, with
    /// the index following the position-remapped compaction.
    #[test]
    fn apply_delta_matches_row_reference(
        base in picks(24),
        ins in picks(8),
        del_idx in proptest::collection::vec(0usize..64, 0..8),
        del_extra in picks(3),
        layout_pick in 0usize..LAYOUTS.len(),
    ) {
        let layout = LAYOUTS[layout_pick];
        let schema = schema_for(layout);
        let base_rows = rows_for(layout, &base);
        let ins_rows = rows_for(layout, &ins);
        let del_rows = delete_rows(layout, &base_rows, &del_idx, &del_extra);

        let mut table = StoredTable::with_rows(schema.clone(), base_rows.clone());
        table.create_index(AttrId(0), IndexKind::Hash);
        table.apply_delta(&DeltaBatch::new(ins_rows.clone(), del_rows.clone()));

        let expected = bag_union(&bag_minus(&base_rows, &del_rows), &ins_rows);
        prop_assert!(
            bag_eq(table.rows(), &expected),
            "layout {layout:?}: got {:?} expected {expected:?}",
            table.rows()
        );
        // Index consistency: every entry dereferences to its key, and the
        // entry count matches the row count.
        let idx = table.index_on(AttrId(0)).unwrap();
        prop_assert_eq!(idx.entries(), table.len());
        for key in [Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(3), Value::Null] {
            for &p in idx.lookup_eq(&key) {
                prop_assert_eq!(&table.tuple_at(p)[0], &key);
            }
        }
    }

    /// Columnar `apply_batch_delta` (the merge_plain kernel) agrees with
    /// the row-level delta application.
    #[test]
    fn apply_batch_delta_matches_apply_delta(
        base in picks(24),
        ins in picks(8),
        del_idx in proptest::collection::vec(0usize..64, 0..8),
        layout_pick in 0usize..LAYOUTS.len(),
    ) {
        let layout = LAYOUTS[layout_pick];
        let schema = schema_for(layout);
        let base_rows = rows_for(layout, &base);
        let ins_rows = rows_for(layout, &ins);
        let del_rows = delete_rows(layout, &base_rows, &del_idx, &[]);

        let mut row_side = StoredTable::with_rows(schema.clone(), base_rows.clone());
        row_side.apply_delta(&DeltaBatch::new(ins_rows.clone(), del_rows.clone()));

        let mut batch_side = StoredTable::with_rows(schema.clone(), base_rows);
        let ins_b = Batch::from_rows(schema.clone(), &ins_rows);
        let del_b = Batch::from_rows(schema, &del_rows);
        batch_side.apply_batch_delta(Some(&ins_b), Some(&del_b));

        prop_assert!(bag_eq(row_side.rows(), batch_side.rows()));
    }

    /// `Batch::minus` ≡ `bag_minus`, `Batch::counts` ≡ `bag_counts`.
    #[test]
    fn batch_bag_ops_match_row_bag_ops(
        a in picks(24),
        b in picks(12),
        layout_pick in 0usize..LAYOUTS.len(),
    ) {
        let layout = LAYOUTS[layout_pick];
        let schema = schema_for(layout);
        let a_rows = rows_for(layout, &a);
        let b_rows = rows_for(layout, &b);
        let a_b = Batch::from_rows(schema.clone(), &a_rows);
        let b_b = Batch::from_rows(schema, &b_rows);

        let got = a_b.minus(&b_b).to_rows();
        let expected = bag_minus(&a_rows, &b_rows);
        prop_assert!(bag_eq(&got, &expected), "layout {layout:?}");

        let got_counts: HashMap<Tuple, i64> = a_b
            .counts()
            .into_iter()
            .map(|(p, c)| (a_b.tuple_at_physical(p), c))
            .collect();
        let expected_counts = bag_counts(&a_rows);
        prop_assert_eq!(got_counts.len(), expected_counts.len());
        for (row, c) in &got_counts {
            prop_assert_eq!(expected_counts.get(row.as_slice()), Some(c));
        }
    }

    /// `AggState::fold_batch` ≡ the row `fold` (the merge_aggregate
    /// kernel), on both delta sides, including the MIN/MAX
    /// needs-recompute signal; `output_batch` ≡ the sorted row emission.
    #[test]
    fn agg_fold_batch_matches_row_fold(
        ins in picks(24),
        del_idx in proptest::collection::vec(0usize..64, 0..8),
        layout_pick in 0usize..LAYOUTS.len(),
        removable_only in proptest::bool::ANY,
    ) {
        let layout = LAYOUTS[layout_pick];
        let schema = schema_for(layout);
        let specs: Vec<AggSpec> = {
            let mut s = vec![
                AggSpec::new(AggFunc::Count, ScalarExpr::Col(AttrId(1)), AttrId(10)),
                AggSpec::new(AggFunc::Sum, ScalarExpr::Col(AttrId(1)), AttrId(11)),
                AggSpec::new(AggFunc::Avg, ScalarExpr::Col(AttrId(1)), AttrId(12)),
            ];
            if !removable_only {
                s.push(AggSpec::new(AggFunc::Min, ScalarExpr::Col(AttrId(1)), AttrId(13)));
                s.push(AggSpec::new(AggFunc::Max, ScalarExpr::Col(AttrId(1)), AttrId(14)));
            }
            s
        };
        let out_schema = Schema::new(
            std::iter::once(Attribute {
                id: AttrId(0),
                name: "t.k".into(),
                data_type: DataType::Int,
            })
            .chain(specs.iter().map(|s| Attribute {
                id: s.out,
                name: format!("agg{}", s.out),
                data_type: s.func.result_type(layout.declared()),
            }))
            .collect(),
        );
        let ins_rows = rows_for(layout, &ins);
        let del_rows = delete_rows(layout, &ins_rows, &del_idx, &[]);

        let mut row_state = AggState::new(vec![AttrId(0)], specs.clone(), schema.clone());
        let r1 = row_state.fold(&ins_rows, DeltaKind::Insert);
        let r2 = row_state.fold(&del_rows, DeltaKind::Delete);

        let mut batch_state = AggState::new(vec![AttrId(0)], specs, schema.clone());
        let b1 = batch_state.fold_batch(&Batch::from_rows(schema.clone(), &ins_rows), DeltaKind::Insert);
        let b2 = batch_state.fold_batch(&Batch::from_rows(schema, &del_rows), DeltaKind::Delete);

        prop_assert_eq!(r1, b1);
        prop_assert_eq!(r2, b2);
        prop_assert_eq!(row_state.rows(), batch_state.rows());
        // The columnar emission agrees with the sorted row emission.
        prop_assert_eq!(
            batch_state.output_batch(&out_schema).to_rows(),
            row_state.rows()
        );
    }

    /// `DistinctState::fold_batch` ≡ the row `fold` (the merge_distinct
    /// kernel).
    #[test]
    fn distinct_fold_batch_matches_row_fold(
        ins in picks(24),
        del_idx in proptest::collection::vec(0usize..64, 0..8),
        layout_pick in 0usize..LAYOUTS.len(),
    ) {
        let layout = LAYOUTS[layout_pick];
        let schema = schema_for(layout);
        let ins_rows = rows_for(layout, &ins);
        let del_rows = delete_rows(layout, &ins_rows, &del_idx, &[]);

        let mut row_state = DistinctState::default();
        row_state.fold(&ins_rows, DeltaKind::Insert);
        row_state.fold(&del_rows, DeltaKind::Delete);

        let mut batch_state = DistinctState::default();
        batch_state.fold_batch(&Batch::from_rows(schema.clone(), &ins_rows), &schema, DeltaKind::Insert);
        batch_state.fold_batch(&Batch::from_rows(schema.clone(), &del_rows), &schema, DeltaKind::Delete);

        prop_assert_eq!(row_state.rows(), batch_state.rows());
        prop_assert_eq!(
            batch_state.output_batch(&schema).to_rows(),
            row_state.rows()
        );
    }

    /// The typed aggregation kernels (per input column type) agree with
    /// the reference evaluator through the physical plan path.
    #[test]
    fn typed_agg_kernels_match_reference(
        rows in picks(24),
        layout_pick in 0usize..LAYOUTS.len(),
    ) {
        let layout = LAYOUTS[layout_pick];
        let mut catalog = Catalog::new();
        let t = catalog.add_table(
            "t",
            vec![
                ColumnSpec::with_distinct("k", DataType::Int, 4.0),
                ColumnSpec::with_distinct("v", layout.declared(), 4.0),
            ],
            rows.len().max(1) as f64,
            &["k"],
        );
        let k = catalog.table(t).attr("k");
        let v = catalog.table(t).attr("v");
        let data = rows_for(layout, &rows);
        let mut db = Database::new();
        db.put_base(t, StoredTable::with_rows(catalog.table(t).schema.clone(), data));

        let funcs = [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];
        let specs: Vec<AggSpec> = funcs
            .iter()
            .map(|&f| AggSpec::new(f, ScalarExpr::Col(v), catalog.fresh_attr()))
            .collect();
        let out_schema = Schema::new(
            std::iter::once(catalog.table(t).schema.attr(k).unwrap().clone())
                .chain(specs.iter().map(|s| Attribute {
                    id: s.out,
                    name: format!("agg{}", s.out),
                    data_type: s.func.result_type(layout.declared()),
                }))
                .collect(),
        );
        let phys = PhysPlan {
            schema: out_schema,
            node: PlanNode::HashAggregate {
                input: Box::new(PhysPlan {
                    schema: catalog.table(t).schema.clone(),
                    node: PlanNode::ScanBase(t),
                }),
                group_by: vec![k],
                aggs: specs.clone(),
            },
        };
        let dag = Dag::new();
        let deltas = DeltaSet::new();
        let mut rt = Runtime::new(
            &dag,
            &catalog,
            CostModel::default(),
            &mut db,
            &deltas,
            BTreeMap::new(),
            HashMap::new(),
        );
        let got = rt.eval(&phys).expect("plan evaluation");
        drop(rt);
        let oracle = LogicalExpr::aggregate(LogicalExpr::scan(t), vec![k], specs);
        let expected = eval_logical(&oracle, &catalog, &db);
        prop_assert!(
            bag_eq(&got, &expected),
            "layout {layout:?}: got {got:?} expected {expected:?}"
        );
    }
}
