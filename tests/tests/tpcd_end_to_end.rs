//! TPC-D end-to-end tests: the benchmark workloads executed on real
//! (small-scale) data, verifying that every optimizer-chosen maintenance
//! program yields exactly the recomputed view contents, for all five
//! workloads and both optimizers, including the no-initial-indices setting
//! of Figure 5(b).

use mvmqo_core::api::MaintenanceProblem;
use mvmqo_core::opt::{GreedyOptions, Mode};
use mvmqo_core::update::UpdateModel;
use mvmqo_exec::{eval_logical, execute_program, index_plan_from_report};
use mvmqo_relalg::logical::ViewDef;
use mvmqo_relalg::tuple::bag_eq_approx;
use mvmqo_tpcd::schema::Tpcd;
use mvmqo_tpcd::{generate_database, generate_updates, tpcd_catalog};

const SF: f64 = 0.001;

fn run_and_verify(
    tpcd: &mut Tpcd,
    views: Vec<ViewDef>,
    percent: f64,
    seed: u64,
    options: GreedyOptions,
    pk_indices: bool,
) {
    let mut db = generate_database(tpcd, seed);
    let deltas = generate_updates(tpcd, &db, percent, seed + 1).unwrap();
    let updates = UpdateModel::new(deltas.tables().map(|t| {
        let b = deltas.get(t).unwrap();
        (t, b.inserts.len() as f64, b.deletes.len() as f64)
    }));
    let mut problem = MaintenanceProblem::new(views.clone(), updates);
    problem.options = options;
    if pk_indices {
        problem = problem.with_pk_indices(&tpcd.catalog);
    }
    let initial_indices = problem.initial_indices.clone();
    let planned = mvmqo_core::api::plan_maintenance(&mut tpcd.catalog, &problem);
    let (dag, report) = (planned.dag, planned.report);
    let index_plan = index_plan_from_report(&initial_indices, &report);
    let exec = execute_program(
        &dag,
        &tpcd.catalog,
        problem.cost_model,
        &mut db,
        &deltas,
        &report.program,
        &index_plan,
    )
    .expect("epoch execution");
    for v in &views {
        let expected = eval_logical(&v.expr, &tpcd.catalog, &db);
        let root = mvmqo_exec::view_root(&report.program, &v.name).unwrap();
        let expected = mvmqo_exec::align_rows(
            expected,
            &v.expr.schema(&tpcd.catalog),
            &dag.eq(root).schema,
        );
        let got = exec.view_rows.get(&v.name).cloned().unwrap_or_default();
        assert!(
            bag_eq_approx(&got, &expected, 1e-9),
            "view {} mismatch: {} vs {} rows",
            v.name,
            got.len(),
            expected.len()
        );
        assert!(
            !expected.is_empty(),
            "view {} is empty — workload predicates select nothing",
            v.name
        );
    }
}

#[test]
fn fig3a_workload_maintains_correctly() {
    let mut t = tpcd_catalog(SF);
    let views = mvmqo_tpcd::single_join_view(&t);
    run_and_verify(&mut t, views, 10.0, 101, GreedyOptions::default(), true);
}

#[test]
fn fig3b_workload_maintains_correctly() {
    let mut t = tpcd_catalog(SF);
    let views = mvmqo_tpcd::single_agg_view(&mut t);
    run_and_verify(&mut t, views, 10.0, 102, GreedyOptions::default(), true);
}

#[test]
fn fig4a_workload_maintains_correctly() {
    let mut t = tpcd_catalog(SF);
    let views = mvmqo_tpcd::five_join_views(&t);
    run_and_verify(&mut t, views, 5.0, 103, GreedyOptions::default(), true);
}

#[test]
fn fig4b_workload_maintains_correctly() {
    let mut t = tpcd_catalog(SF);
    let views = mvmqo_tpcd::five_agg_views(&mut t);
    run_and_verify(&mut t, views, 5.0, 104, GreedyOptions::default(), true);
}

#[test]
fn fig5_workload_maintains_correctly() {
    let mut t = tpcd_catalog(SF);
    let views = mvmqo_tpcd::ten_views(&t);
    run_and_verify(&mut t, views, 5.0, 105, GreedyOptions::default(), true);
}

#[test]
fn fig5b_no_initial_indices_maintains_correctly() {
    let mut t = tpcd_catalog(SF);
    let views = mvmqo_tpcd::ten_views(&t);
    run_and_verify(&mut t, views, 5.0, 106, GreedyOptions::default(), false);
}

#[test]
fn nogreedy_baseline_maintains_correctly() {
    let mut t = tpcd_catalog(SF);
    let views = mvmqo_tpcd::five_join_views(&t);
    run_and_verify(
        &mut t,
        views,
        10.0,
        107,
        GreedyOptions {
            mode: Mode::NoGreedy,
            ..Default::default()
        },
        true,
    );
}

#[test]
fn diff_candidates_execute_correctly_on_tpcd() {
    let mut t = tpcd_catalog(SF);
    let views = mvmqo_tpcd::five_join_views(&t);
    run_and_verify(
        &mut t,
        views,
        10.0,
        108,
        GreedyOptions {
            diff_candidates: true,
            ..Default::default()
        },
        true,
    );
}

#[test]
fn high_update_rate_tpcd_maintains_correctly() {
    let mut t = tpcd_catalog(SF);
    let views = mvmqo_tpcd::single_join_view(&t);
    run_and_verify(&mut t, views, 60.0, 109, GreedyOptions::default(), true);
}

#[test]
fn fk_pruning_is_exact_on_tpcd_data() {
    // Parent-relation insert deltas that the optimizer prunes (§5.3) must be
    // *actually* empty when executed: verified implicitly by the equality
    // checks above, but this test pins the property directly.
    let mut t = tpcd_catalog(SF);
    let views = mvmqo_tpcd::single_join_view(&t);
    let db = generate_database(&t, 200);
    let deltas = generate_updates(&t, &db, 10.0, 201).unwrap();
    let updates = UpdateModel::new(deltas.tables().map(|tb| {
        let b = deltas.get(tb).unwrap();
        (tb, b.inserts.len() as f64, b.deletes.len() as f64)
    }));
    let (dag, _) = mvmqo_core::api::build_dag(&mut t.catalog, &views);
    let props = mvmqo_core::diff::DiffProps::compute(&dag, &t.catalog, &updates);
    let root = dag.roots()[0].eq;
    let mut pruned = 0;
    for step in updates.steps() {
        if step.kind == mvmqo_storage::delta::DeltaKind::Insert
            && step.table != t.t.lineitem
            && props.delta_is_empty(root, step.id)
        {
            pruned += 1;
        }
    }
    // customer, orders, supplier inserts are all FK-prunable for this view.
    assert!(
        pruned >= 2,
        "expected ≥2 pruned parent-insert deltas, got {pruned}"
    );
}
