//! Multi-epoch warehouse integration tests: the continuous-maintenance
//! engine run over TPC-D data for several epochs, verifying after *every*
//! epoch that every view is tuple-identical to recomputation, that
//! permanent materializations and indices survive across epochs without
//! being rebuilt, and that drift-triggered re-optimization actually changes
//! the selected materialization set.

use mvmqo_relalg::catalog::TableId;
use mvmqo_storage::delta::DeltaBatch;
use mvmqo_storage::error::StorageError;
use mvmqo_tpcd::schema::Tpcd;
use mvmqo_tpcd::{
    epoch_updates, five_agg_views, five_join_views, generate_database, tpcd_catalog, DriverProfile,
};
use mvmqo_warehouse::{ReoptPolicy, ReoptTrigger, Warehouse, WarehouseError};

const SF: f64 = 0.001;

/// Generator-side TPC-D handles plus a warehouse whose catalog is the
/// *same* construction (deterministic ids).
fn setup(seed: u64) -> (Tpcd, Warehouse) {
    let tpcd = tpcd_catalog(SF);
    let db = generate_database(&tpcd, seed);
    let wh = Warehouse::new(tpcd_catalog(SF).catalog, db);
    (tpcd, wh)
}

fn ingest_epoch(tpcd: &Tpcd, wh: &mut Warehouse, percent: f64, epoch: u64, seed: u64) -> usize {
    let deltas = epoch_updates(
        tpcd,
        wh.database(),
        DriverProfile::Steady { percent },
        epoch,
        seed,
    )
    .unwrap();
    let tables: Vec<TableId> = deltas.tables().collect();
    let mut total = 0;
    for t in tables {
        total += wh.ingest(t, deltas.get(t).unwrap().clone()).unwrap();
    }
    total
}

fn verify_all(wh: &Warehouse) {
    for v in wh.views().to_vec() {
        assert!(
            wh.verify(&v.name).unwrap(),
            "view {} diverged from recomputation at epoch {}",
            v.name,
            wh.epoch()
        );
    }
}

/// The acceptance scenario: ≥3 views, ≥4 distinct update batches with an
/// epoch after each, checking (a) correctness after every epoch, (b)
/// persistence of materializations across epochs, (c) a drift-triggered
/// re-optimization that changes the materialization set.
#[test]
fn multi_epoch_maintenance_with_adaptive_reoptimization() {
    let (tpcd, mut wh) = setup(301);
    let mut wh = {
        wh = wh.with_policy(ReoptPolicy {
            delta_fraction: 0.10,
            // Effectively disable cost-drift so the test exercises delta
            // drift deterministically.
            cost_ratio: 1e12,
        });
        wh
    };

    // Register five shared-subexpression views (including the subsumption
    // pair); each registration re-runs the selection over the whole set.
    let views = five_join_views(&tpcd);
    for v in views {
        wh.register_view(v).unwrap();
    }
    assert_eq!(wh.views().len(), 5);
    assert_eq!(
        wh.replans().len(),
        5,
        "one re-optimization per registration"
    );
    // No updates observed yet, so the initial plan has nothing to maintain
    // and selects no extra materializations or indices.
    let initial_mats = wh.mat_set();

    // Epoch 1: a large batch (12% inserts + 6% deletes ≈ 18% of base rows)
    // exceeds the 10% drift threshold → drift-triggered re-optimization.
    ingest_epoch(&tpcd, &mut wh, 12.0, 0, 77);
    let r1 = wh.run_epoch().unwrap();
    assert!(
        matches!(r1.replanned, Some(ReoptTrigger::DeltaDrift { .. })),
        "expected delta-drift re-optimization, got {:?}",
        r1.replanned
    );
    let drifted_mats = wh.mat_set();
    assert_ne!(
        initial_mats, drifted_mats,
        "drift-triggered re-optimization must change the selected set"
    );
    assert!(
        !drifted_mats.is_empty(),
        "a ~12% update workload over shared views should justify extra \
         materializations/indices"
    );
    assert!(
        r1.total_builds > 0,
        "first epoch under a plan builds results"
    );
    verify_all(&wh);

    // Epochs 2–4: small distinct batches below the drift threshold. The
    // plan (and its permanent materializations, indices, and hidden
    // aggregate state) must survive with no setup rebuilds.
    let mats_before = wh.current_report().unwrap().chosen_mats.len();
    for (i, pct) in [2.0, 1.5, 1.5].into_iter().enumerate() {
        let ingested = ingest_epoch(&tpcd, &mut wh, pct, (i + 1) as u64, 77);
        assert!(ingested > 0, "epoch batch {i} must be non-empty");
        let r = wh.run_epoch().unwrap();
        assert!(
            r.replanned.is_none(),
            "no re-optimization expected at epoch {}, got {:?}",
            r.epoch,
            r.replanned
        );
        assert_eq!(
            r.setup_builds, 0,
            "epoch {} rebuilt persisted materializations",
            r.epoch
        );
        assert!(
            (r.setup_seconds - 0.0).abs() < 1e-12,
            "epoch {} paid setup cost {:.4}s despite persisted state",
            r.epoch,
            r.setup_seconds
        );
        verify_all(&wh);
    }
    assert_eq!(
        wh.current_report().unwrap().chosen_mats.len(),
        mats_before,
        "plan must be unchanged across non-drifting epochs"
    );
    assert_eq!(wh.epoch(), 4);
    assert_eq!(wh.history().len(), 4);
}

/// N consecutive epochs over aggregate views: the hidden per-group
/// accumulator state must survive across epochs and keep every view
/// tuple-identical to recomputation.
#[test]
fn aggregate_views_stay_exact_across_epochs() {
    let mut tpcd = tpcd_catalog(SF);
    // Aggregate views allocate output attributes from this catalog, which
    // is then donated to the engine so ids stay consistent.
    let views = five_agg_views(&mut tpcd);
    let db = generate_database(&tpcd, 404);
    let t = tpcd.t;
    let sf = tpcd.sf;
    let mut wh = Warehouse::new(tpcd.catalog, db);
    let gen_tpcd = Tpcd {
        catalog: tpcd_catalog(SF).catalog,
        t,
        sf,
    };
    for v in views {
        wh.register_view(v).unwrap();
    }
    for epoch in 0..4u64 {
        ingest_epoch(&gen_tpcd, &mut wh, 4.0, epoch, 19);
        wh.run_epoch().unwrap();
        verify_all(&wh);
    }
}

/// Registering and dropping views mid-stream re-optimizes the remaining
/// set and keeps serving correct answers.
#[test]
fn view_churn_reoptimizes_and_stays_correct() {
    let (tpcd, wh) = setup(512);
    let mut wh = wh.with_policy(ReoptPolicy {
        delta_fraction: 0.25,
        cost_ratio: 1e12,
    });
    let views = five_join_views(&tpcd);
    let names: Vec<String> = views.iter().map(|v| v.name.clone()).collect();
    for v in views {
        wh.register_view(v).unwrap();
    }
    ingest_epoch(&tpcd, &mut wh, 5.0, 0, 3);
    wh.run_epoch().unwrap();
    verify_all(&wh);

    wh.drop_view(&names[0]).unwrap();
    assert_eq!(wh.views().len(), 4);
    assert!(matches!(
        wh.replans().last().map(|r| r.trigger),
        Some(ReoptTrigger::ViewSetChanged)
    ));
    // A view-set change on a warmed-up session replans incrementally.
    assert_eq!(
        wh.replans().last().unwrap().mode,
        mvmqo_warehouse::PlanMode::Incremental
    );
    ingest_epoch(&tpcd, &mut wh, 5.0, 1, 3);
    let r = wh.run_epoch().unwrap();
    // The post-drop plan was made while deltas from epoch 0 were already
    // applied; the next epoch runs under it without further replanning
    // (batch below drift threshold).
    assert!(r.replanned.is_none());
    verify_all(&wh);

    assert!(matches!(
        wh.query(&names[0]),
        Err(WarehouseError::UnknownView(_))
    ));
    let q = wh.query(&names[1]).unwrap();
    assert!(q.from_materialization);
    assert!(!q.stale);
}

/// Bad input must surface typed errors and leave the engine fully usable —
/// the satellite requirement that replaced the storage/tpcd panics.
#[test]
fn bad_batches_do_not_abort_the_engine() {
    let (tpcd, mut wh) = setup(99);
    for v in five_join_views(&tpcd).into_iter().take(3) {
        wh.register_view(v).unwrap();
    }

    // Unknown table: typed error.
    let bogus = TableId(77);
    assert!(matches!(
        wh.ingest(bogus, DeltaBatch::new(vec![vec![]], vec![])),
        Err(WarehouseError::Storage(StorageError::TableNotLoaded(t))) if t == bogus
    ));

    // Arity mismatch: rejected whole, nothing queued.
    let bad = DeltaBatch::new(vec![vec![mvmqo_relalg::types::Value::Int(1)]], vec![]);
    assert!(matches!(
        wh.ingest(tpcd.t.lineitem, bad),
        Err(WarehouseError::Storage(StorageError::ArityMismatch { .. }))
    ));
    assert_eq!(wh.pending_tuples(), 0);

    // Duplicate and invalid view registrations: typed errors.
    let dup = five_join_views(&tpcd).remove(0);
    assert!(matches!(
        wh.register_view(dup),
        Err(WarehouseError::DuplicateView(_))
    ));
    assert!(matches!(
        wh.drop_view("no_such_view"),
        Err(WarehouseError::UnknownView(_))
    ));

    // The engine still ingests and refreshes normally afterwards.
    ingest_epoch(&tpcd, &mut wh, 8.0, 0, 5);
    wh.run_epoch().unwrap();
    verify_all(&wh);
}

/// Deletes beyond the available multiplicity (phantom deletes, or the
/// same row deleted by two queued batches) must be rejected at ingest:
/// base application would saturate while incremental aggregate state
/// subtracts unconditionally, silently corrupting maintained views.
#[test]
fn phantom_and_duplicate_deletes_are_rejected_at_ingest() {
    let (tpcd, mut wh) = setup(777);
    for v in five_join_views(&tpcd).into_iter().take(3) {
        wh.register_view(v).unwrap();
    }
    let li = tpcd.t.lineitem;
    let existing = wh.database().base(li).unwrap().rows()[0].clone();

    // A row that was never stored.
    let mut phantom = existing.clone();
    phantom[0] = mvmqo_relalg::types::Value::Int(-1);
    assert!(matches!(
        wh.ingest(li, DeltaBatch::new(vec![], vec![phantom])),
        Err(WarehouseError::Storage(StorageError::PhantomDelete { table })) if table == li
    ));

    // The same stored row deleted by two separate batches.
    wh.ingest(li, DeltaBatch::new(vec![], vec![existing.clone()]))
        .unwrap();
    let before = wh.pending_tuples();
    assert!(matches!(
        wh.ingest(li, DeltaBatch::new(vec![], vec![existing.clone()])),
        Err(WarehouseError::Storage(StorageError::PhantomDelete { .. }))
    ));
    assert_eq!(wh.pending_tuples(), before, "rejected batch must not queue");

    // Deleting a row that a *queued insert* provides is legitimate
    // (inserts land before deletes within the epoch).
    let mut fresh = existing.clone();
    fresh[0] = mvmqo_relalg::types::Value::Int(10_000_000);
    wh.ingest(li, DeltaBatch::new(vec![fresh.clone()], vec![]))
        .unwrap();
    wh.ingest(li, DeltaBatch::new(vec![], vec![fresh])).unwrap();

    wh.run_epoch().unwrap();
    verify_all(&wh);
}

/// `query` must serve the same column order whether it recomputes or
/// reads the maintained materialization.
#[test]
fn query_column_order_is_stable_across_provenance() {
    let (tpcd, mut wh) = setup(888);
    let v = five_join_views(&tpcd).remove(0);
    let name = v.name.clone();
    wh.register_view(v).unwrap();

    let recomputed = wh.query(&name).unwrap();
    assert!(!recomputed.from_materialization);

    wh.run_epoch().unwrap();
    let materialized = wh.query(&name).unwrap();
    assert!(materialized.from_materialization);

    // No deltas were applied, so contents are identical — including order
    // of columns within every tuple.
    let mut a = recomputed.rows;
    let mut b = materialized.rows;
    a.sort();
    b.sort();
    assert_eq!(a, b, "column order/contents differ between provenances");
}

/// Observed update rates must decay for tables that stop receiving
/// updates, so re-planning doesn't forever cost maintenance steps for
/// updates that no longer arrive.
#[test]
fn observed_rates_decay_for_idle_tables() {
    let (tpcd, mut wh) = setup(55);
    wh.register_view(five_join_views(&tpcd).remove(0)).unwrap();

    // One epoch touching every table, then fact-only epochs.
    ingest_epoch(&tpcd, &mut wh, 10.0, 0, 77);
    wh.run_epoch().unwrap();
    let cust = tpcd.t.customer;
    let initial = wh.observed_rates().get(&cust).copied().unwrap();
    assert!(initial.0 > 0.0);

    for epoch in 1..=3u64 {
        let deltas = epoch_updates(
            &tpcd,
            wh.database(),
            DriverProfile::FactOnly { percent: 4.0 },
            epoch,
            77,
        )
        .unwrap();
        let tables: Vec<TableId> = deltas.tables().collect();
        for t in tables {
            wh.ingest(t, deltas.get(t).unwrap().clone()).unwrap();
        }
        wh.run_epoch().unwrap();
    }
    match wh.observed_rates().get(&cust) {
        None => {} // fully decayed out
        Some(rate) => assert!(
            rate.0 < initial.0 / 4.0,
            "idle table's observed rate must decay: {initial:?} → {rate:?}"
        ),
    }
}

/// Queries flag staleness between ingest and epoch, and clear it after.
#[test]
fn staleness_is_tracked_across_ingest_and_epoch() {
    let (tpcd, mut wh) = setup(640);
    let v = five_join_views(&tpcd).remove(2);
    let name = v.name.clone();
    wh.register_view(v).unwrap();

    // Before any epoch: served by recomputation, not stale.
    let q = wh.query(&name).unwrap();
    assert!(!q.from_materialization);
    assert!(!q.stale);

    ingest_epoch(&tpcd, &mut wh, 6.0, 0, 11);
    let q = wh.query(&name).unwrap();
    assert!(q.stale, "pending deltas must flag the answer stale");

    wh.run_epoch().unwrap();
    let q = wh.query(&name).unwrap();
    assert!(q.from_materialization);
    assert!(!q.stale);
    assert!(!q.rows.is_empty());
}
