//! End-to-end integration tests: optimizer-chosen maintenance plans must
//! produce exactly the same view contents as recomputation from the
//! post-update database, for both Greedy and NoGreedy, across update rates
//! and view shapes.

use mvmqo_core::opt::{GreedyOptions, Mode};
use mvmqo_integration_tests::{generate_deltas, optimize_execute_verify, small_world, SmallWorld};
use mvmqo_relalg::agg::{AggFunc, AggSpec};
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::logical::{LogicalExpr, ViewDef};

fn join_view(world: &SmallWorld, name: &str) -> ViewDef {
    let c = &world.catalog;
    let a_id = c.table(world.a).attr("id");
    let b_aid = c.table(world.b).attr("a_id");
    let b_id = c.table(world.b).attr("id");
    let c_bid = c.table(world.c).attr("b_id");
    let expr = LogicalExpr::Join {
        left: LogicalExpr::join(
            LogicalExpr::scan(world.a),
            LogicalExpr::scan(world.b),
            Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
        ),
        right: LogicalExpr::scan(world.c),
        predicate: Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid)),
    };
    ViewDef::new(name, expr.into())
}

fn selective_join_view(world: &SmallWorld, name: &str, cutoff: i64) -> ViewDef {
    let c = &world.catalog;
    let a_x = c.table(world.a).attr("x");
    let base = join_view(world, name).expr;
    ViewDef::new(
        name,
        LogicalExpr::Select {
            input: base,
            predicate: Predicate::from_expr(ScalarExpr::col_cmp_lit(a_x, CmpOp::Lt, cutoff)),
        }
        .into(),
    )
}

fn agg_view(world: &mut SmallWorld, name: &str) -> ViewDef {
    let a_x = world.catalog.table(world.a).attr("x");
    let c_v = world.catalog.table(world.c).attr("v");
    let sum_out = world.catalog.fresh_attr();
    let cnt_out = world.catalog.fresh_attr();
    let base = join_view(world, name).expr;
    ViewDef::new(
        name,
        LogicalExpr::Aggregate {
            input: base,
            group_by: vec![a_x],
            aggs: vec![
                AggSpec::new(AggFunc::Sum, ScalarExpr::Col(c_v), sum_out),
                AggSpec::new(AggFunc::Count, ScalarExpr::Col(c_v), cnt_out),
            ],
        }
        .into(),
    )
}

#[test]
fn single_join_view_greedy_maintains_correctly() {
    let mut world = small_world(60);
    let views = vec![join_view(&world, "v_join")];
    let deltas = generate_deltas(&world, 10.0, 7);
    let (report, exec) =
        optimize_execute_verify(&mut world, views, &deltas, GreedyOptions::default());
    assert!(report.total_cost.is_finite());
    assert!(exec.maintenance_seconds >= 0.0);
}

#[test]
fn single_join_view_nogreedy_maintains_correctly() {
    let mut world = small_world(60);
    let views = vec![join_view(&world, "v_join")];
    let deltas = generate_deltas(&world, 10.0, 8);
    let options = GreedyOptions {
        mode: Mode::NoGreedy,
        ..Default::default()
    };
    optimize_execute_verify(&mut world, views, &deltas, options);
}

#[test]
fn aggregate_view_maintains_correctly() {
    let mut world = small_world(50);
    let views = vec![agg_view(&mut world, "v_agg")];
    let deltas = generate_deltas(&world, 10.0, 9);
    optimize_execute_verify(&mut world, views, &deltas, GreedyOptions::default());
}

#[test]
fn multiple_shared_views_maintain_correctly() {
    let mut world = small_world(50);
    let v1 = join_view(&world, "v_all");
    let v2 = selective_join_view(&world, "v_sel", 5);
    let v3 = agg_view(&mut world, "v_agg");
    let deltas = generate_deltas(&world, 5.0, 10);
    let (report, _) = optimize_execute_verify(
        &mut world,
        vec![v1, v2, v3],
        &deltas,
        GreedyOptions::default(),
    );
    assert!(report.dag_eq_nodes > 8);
}

#[test]
fn high_update_rate_still_correct() {
    let mut world = small_world(40);
    let views = vec![join_view(&world, "v_join")];
    let deltas = generate_deltas(&world, 60.0, 11);
    optimize_execute_verify(&mut world, views, &deltas, GreedyOptions::default());
}

#[test]
fn tiny_update_rate_still_correct() {
    let mut world = small_world(80);
    let views = vec![join_view(&world, "v_join")];
    let deltas = generate_deltas(&world, 1.0, 12);
    optimize_execute_verify(&mut world, views, &deltas, GreedyOptions::default());
}

#[test]
fn diff_candidates_enabled_still_correct() {
    let mut world = small_world(50);
    let v1 = join_view(&world, "v_all");
    let v2 = selective_join_view(&world, "v_sel", 8);
    let deltas = generate_deltas(&world, 10.0, 13);
    let options = GreedyOptions {
        diff_candidates: true,
        ..Default::default()
    };
    optimize_execute_verify(&mut world, vec![v1, v2], &deltas, options);
}

#[test]
fn greedy_estimate_never_exceeds_nogreedy() {
    for pct in [1.0, 10.0, 40.0] {
        let mut world = small_world(50);
        let v1 = join_view(&world, "v_all");
        let v2 = selective_join_view(&world, "v_sel", 5);
        let deltas = generate_deltas(&world, pct, 21);
        let (report, _) =
            optimize_execute_verify(&mut world, vec![v1, v2], &deltas, GreedyOptions::default());
        assert!(
            report.total_cost <= report.nogreedy_cost + 1e-6,
            "at {pct}%: greedy {} > nogreedy {}",
            report.total_cost,
            report.nogreedy_cost
        );
    }
}
