//! Crash-recovery integration tests: the durability subsystem end to end.
//!
//! The headline property is **kill-anywhere recovery**: for a workload whose
//! every ingest and epoch is WAL-logged, crashing at *any* byte offset of
//! the log — record boundaries and torn mid-record writes alike — must
//! recover an engine that is tuple-identical, for every base table and
//! every view, to replaying the surviving record prefix from the snapshot
//! state. Torn writes are produced through the [`FailpointFile`] shim, the
//! same primitive a crash leaves behind: a clean prefix, then nothing.
//!
//! Alongside it: corruption tests (bit flips, zero-filled pages, truncated
//! or corrupt snapshots) that must end in clean prefix recovery or a typed
//! error — never a panic — and the warm-replan property: an engine built by
//! `recover` re-plans incrementally against its rebuilt memo, not from a
//! cold start.

use mvmqo_integration_tests::{generate_deltas, small_world, SmallWorld};
use mvmqo_relalg::agg::{AggFunc, AggSpec};
use mvmqo_relalg::catalog::TableId;
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::logical::{LogicalExpr, ViewDef};
use mvmqo_relalg::schema::AttrId;
use mvmqo_relalg::tuple::{bag_eq_approx, Tuple};
use mvmqo_relalg::types::Value;
use mvmqo_storage::delta::DeltaBatch;
use mvmqo_storage::error::RecoveryError;
use mvmqo_storage::wal::{scan_wal_bytes, WalRecord};
use mvmqo_storage::FailpointFile;
use mvmqo_warehouse::{PlanMode, ReoptTrigger, Warehouse, WarehouseError};
use proptest::prelude::*;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

// ======================================================================
// Scratch directories (the workspace vendors no tempfile crate)
// ======================================================================

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Self-cleaning scratch directory under the system temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "mvmqo-recovery-{tag}-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Atomic snapshot/manifest writes must leave no `.tmp` behind, ever.
fn assert_no_tmp_files(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        let name = entry.file_name();
        assert!(
            !name.to_string_lossy().ends_with(".tmp"),
            "leaked temp file {name:?} in {}",
            dir.display()
        );
    }
}

// ======================================================================
// The deterministic workload
// ======================================================================

fn attr(world: &SmallWorld, t: TableId, suffix: &str) -> AttrId {
    world
        .catalog
        .table(t)
        .schema
        .attrs()
        .iter()
        .find(|a| a.name.ends_with(suffix))
        .unwrap_or_else(|| panic!("no attr {suffix}"))
        .id
}

/// A fresh engine over the deterministic small world with three views
/// sharing subexpressions: a filtered two-way join, the full three-way
/// join, and an aggregate (whose hidden per-group state must survive
/// snapshots). Identical on every call — this *is* the snapshot state the
/// kill-anywhere fixture starts from.
fn engine_with_views() -> (SmallWorld, Warehouse) {
    let w = small_world(8);
    let mirror = small_world(8);
    let mut wh = Warehouse::new(w.catalog, w.db);

    let (a, b, c) = (mirror.a, mirror.b, mirror.c);
    let join_ba = |world: &SmallWorld| {
        LogicalExpr::join(
            LogicalExpr::scan(b),
            LogicalExpr::scan(a),
            Predicate::from_conjuncts(vec![ScalarExpr::col_eq_col(
                attr(world, b, ".a_id"),
                attr(world, a, ".id"),
            )]),
        )
    };
    wh.register_view(ViewDef::new(
        "filtered",
        LogicalExpr::select(
            join_ba(&mirror),
            Predicate::from_expr(ScalarExpr::col_cmp_lit(
                attr(&mirror, a, ".x"),
                CmpOp::Lt,
                Value::Int(12),
            )),
        ),
    ))
    .unwrap();
    wh.register_view(ViewDef::new(
        "threeway",
        LogicalExpr::join(
            LogicalExpr::scan(c),
            join_ba(&mirror),
            Predicate::from_conjuncts(vec![ScalarExpr::col_eq_col(
                attr(&mirror, c, ".b_id"),
                attr(&mirror, b, ".id"),
            )]),
        ),
    ))
    .unwrap();
    let sum_out = wh.fresh_attr();
    let cnt_out = wh.fresh_attr();
    wh.register_view(ViewDef::new(
        "totals",
        LogicalExpr::aggregate(
            LogicalExpr::join(
                LogicalExpr::scan(c),
                LogicalExpr::scan(b),
                Predicate::from_conjuncts(vec![ScalarExpr::col_eq_col(
                    attr(&mirror, c, ".b_id"),
                    attr(&mirror, b, ".id"),
                )]),
            ),
            vec![attr(&mirror, b, ".a_id")],
            vec![
                AggSpec::new(
                    AggFunc::Sum,
                    ScalarExpr::Col(attr(&mirror, c, ".v")),
                    sum_out,
                ),
                AggSpec::new(
                    AggFunc::Count,
                    ScalarExpr::Col(attr(&mirror, c, ".v")),
                    cnt_out,
                ),
            ],
        ),
    ))
    .unwrap();
    (mirror, wh)
}

/// Three rounds of referentially consistent deltas, each followed by an
/// epoch. The mirror database tracks the engine so each round's deletes
/// sample rows that actually exist.
fn run_workload(mirror: &mut SmallWorld, wh: &mut Warehouse) {
    for (round, pct) in [6.0, 4.0, 3.0].into_iter().enumerate() {
        let ds = generate_deltas(mirror, pct, 1000 + round as u64);
        for t in ds.tables().collect::<Vec<_>>() {
            wh.ingest(t, ds.get(t).unwrap().clone()).unwrap();
        }
        wh.run_epoch().unwrap();
        mirror.db.apply_all(&ds).unwrap();
    }
}

// ======================================================================
// The kill-anywhere fixture: one durable run, captured as bytes
// ======================================================================

/// File images of a durability directory captured after the workload, plus
/// the WAL record boundaries. Built once; every kill position replays
/// against copies of these bytes.
struct Fixture {
    /// Non-WAL files (MANIFEST, snapshot image) by name.
    files: Vec<(String, Vec<u8>)>,
    wal_name: String,
    wal_bytes: Vec<u8>,
    /// Byte offsets of every record boundary, 0 and EOF included.
    boundaries: Vec<u64>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let tmp = TempDir::new("fixture");
        let (mut mirror, mut wh) = engine_with_views();
        wh.enable_wal(tmp.path()).unwrap();
        run_workload(&mut mirror, &mut wh);
        assert_no_tmp_files(tmp.path());

        let mut files = Vec::new();
        let mut wal_name = String::new();
        let mut wal_bytes = Vec::new();
        for entry in std::fs::read_dir(tmp.path()).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).unwrap();
            if name.starts_with("wal-") {
                wal_name = name;
                wal_bytes = bytes;
            } else {
                files.push((name, bytes));
            }
        }
        assert!(!wal_name.is_empty(), "workload produced no WAL");

        let scan = scan_wal_bytes(&wal_bytes);
        assert!(scan.stop.is_clean());
        // One commit per round plus the non-empty ingests (batches the
        // engine accepted as 0 tuples are never logged).
        let commits = scan
            .records
            .iter()
            .filter(|r| matches!(r, WalRecord::EpochCommit { .. }))
            .count();
        assert_eq!(commits, 3, "one commit per workload round");
        assert!(
            scan.records.len() >= 8,
            "workload too small to exercise torn writes: {} records",
            scan.records.len()
        );
        let mut boundaries = vec![0u64];
        let mut pos = 0u64;
        for rec in &scan.records {
            pos += 8 + rec.encode().len() as u64;
            boundaries.push(pos);
        }
        assert_eq!(pos, wal_bytes.len() as u64);
        Fixture {
            files,
            wal_name,
            wal_bytes,
            boundaries,
        }
    })
}

/// Materialize the fixture as a durability directory whose WAL is written
/// through a [`FailpointFile`] killed at `kill_at` — the on-disk state an
/// actual crash at that byte would leave.
fn crashed_dir(fx: &Fixture, kill_at: u64, tag: &str) -> TempDir {
    let tmp = TempDir::new(tag);
    for (name, bytes) in &fx.files {
        std::fs::write(tmp.path().join(name), bytes).unwrap();
    }
    let file = std::fs::File::create(tmp.path().join(&fx.wal_name)).unwrap();
    let mut torn = FailpointFile::new(file, Some(kill_at));
    torn.write_all(&fx.wal_bytes).unwrap();
    torn.flush().unwrap();
    assert_eq!(torn.persisted(), kill_at.min(fx.wal_bytes.len() as u64));
    tmp
}

/// Ground truth for a crash at `kill_at`: a fresh engine in the snapshot
/// state, fed the surviving record prefix through the ordinary
/// ingest/epoch path.
fn replay_prefix(fx: &Fixture, kill_at: u64) -> Warehouse {
    let (_, mut wh) = engine_with_views();
    let prefix = &fx.wal_bytes[..(kill_at as usize).min(fx.wal_bytes.len())];
    for rec in scan_wal_bytes(prefix).records {
        match rec {
            WalRecord::Ingest {
                table,
                inserts,
                deletes,
                ..
            } => {
                wh.ingest(
                    table,
                    DeltaBatch {
                        inserts: inserts.to_rows(),
                        deletes: deletes.to_rows(),
                    },
                )
                .unwrap();
            }
            WalRecord::EpochCommit { .. } => {
                wh.run_epoch().unwrap();
            }
        }
    }
    wh
}

/// Tuple-identical equivalence: every base table and every view, as
/// multisets, plus per-view consistency against recomputation.
fn assert_engines_equivalent(got: &Warehouse, want: &Warehouse, context: &str) {
    assert_eq!(got.epoch(), want.epoch(), "epoch mismatch ({context})");
    assert_eq!(
        got.pending_tuples(),
        want.pending_tuples(),
        "pending mismatch ({context})"
    );
    for def in want.catalog().tables() {
        let rows =
            |wh: &Warehouse| -> Vec<Tuple> { wh.database().base(def.id).unwrap().rows().to_vec() };
        assert!(
            bag_eq_approx(&rows(got), &rows(want), 1e-9),
            "base table {} diverged ({context})",
            def.name
        );
    }
    for v in want.views() {
        let g = got.query(&v.name).unwrap().rows;
        let w = want.query(&v.name).unwrap().rows;
        assert!(
            bag_eq_approx(&g, &w, 1e-9),
            "view {} diverged: {} vs {} rows ({context})",
            v.name,
            g.len(),
            w.len()
        );
        assert!(
            got.verify(&v.name).unwrap(),
            "view {} inconsistent with recomputation ({context})",
            v.name
        );
    }
}

fn check_kill_at(kill_at: u64) {
    let fx = fixture();
    let tmp = crashed_dir(fx, kill_at, "kill");
    let recovered = Warehouse::recover(tmp.path())
        .unwrap_or_else(|e| panic!("recovery failed for kill at byte {kill_at}: {e}"));
    let expected = replay_prefix(fx, kill_at);
    assert_engines_equivalent(&recovered, &expected, &format!("kill at byte {kill_at}"));

    let info = recovered.recovery_info().unwrap();
    let on_boundary = fx
        .boundaries
        .contains(&kill_at.min(fx.wal_bytes.len() as u64));
    assert_eq!(
        info.clean_wal, on_boundary,
        "kill at byte {kill_at}: clean={} but boundary={}",
        info.clean_wal, on_boundary
    );
    assert_no_tmp_files(tmp.path());
}

// ======================================================================
// Headline: kill-anywhere recovery
// ======================================================================

/// Every record boundary, exhaustively — including byte 0 (crash before
/// the first append) and EOF (no crash at all).
#[test]
fn every_record_boundary_recovers_exactly() {
    let fx = fixture();
    for &cut in &fx.boundaries {
        check_kill_at(cut);
    }
}

fn recovery_cases() -> u32 {
    std::env::var("RECOVERY_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(recovery_cases()))]

    /// Random kill offsets, most of them torn mid-record writes. Case
    /// count is bounded by `RECOVERY_CASES` for the CI smoke job.
    #[test]
    fn kill_anywhere_matches_prefix_replay(frac in 0.0f64..1.0) {
        let total = fixture().wal_bytes.len() as u64;
        check_kill_at((frac * total as f64) as u64);
    }
}

// ======================================================================
// Corruption: clean prefix recovery or a typed error, never a panic
// ======================================================================

#[test]
fn bit_flip_mid_wal_recovers_the_valid_prefix() {
    let fx = fixture();
    // Flip one payload bit inside the fifth record (second round's first
    // ingest): everything before it must recover, everything after is lost.
    let target = fx.boundaries[4] + 12;
    let tmp = TempDir::new("bitflip");
    for (name, bytes) in &fx.files {
        std::fs::write(tmp.path().join(name), bytes).unwrap();
    }
    let mut bad = fx.wal_bytes.clone();
    bad[target as usize] ^= 0x20;
    std::fs::write(tmp.path().join(&fx.wal_name), &bad).unwrap();

    let recovered = Warehouse::recover(tmp.path()).unwrap();
    let info = recovered.recovery_info().unwrap();
    assert!(!info.clean_wal);
    assert_eq!(info.replayed_records, 4, "prefix must stop at the flip");
    let expected = replay_prefix(fx, fx.boundaries[4]);
    assert_engines_equivalent(&recovered, &expected, "bit flip");
}

#[test]
fn zero_filled_page_after_the_log_recovers_everything() {
    let fx = fixture();
    let tmp = TempDir::new("zeropage");
    for (name, bytes) in &fx.files {
        std::fs::write(tmp.path().join(name), bytes).unwrap();
    }
    // Pre-allocated or zeroed space past the last record — common after a
    // crash on filesystems that extend files before data lands.
    let mut padded = fx.wal_bytes.clone();
    padded.extend_from_slice(&[0u8; 4096]);
    std::fs::write(tmp.path().join(&fx.wal_name), &padded).unwrap();

    let recovered = Warehouse::recover(tmp.path()).unwrap();
    let info = recovered.recovery_info().unwrap();
    assert_eq!(
        info.replayed_records,
        fx.boundaries.len() - 1,
        "all real records must survive"
    );
    assert!(!info.clean_wal);
    assert!(info.wal_stop.contains("zero"), "{}", info.wal_stop);
    let expected = replay_prefix(fx, fx.wal_bytes.len() as u64);
    assert_engines_equivalent(&recovered, &expected, "zero page");
}

#[test]
fn corrupt_or_truncated_snapshot_is_a_typed_error() {
    let fx = fixture();
    let (snap_name, snap_bytes) = fx
        .files
        .iter()
        .find(|(n, _)| n.starts_with("snapshot-"))
        .unwrap();

    // Bit flip inside the snapshot body.
    let tmp = TempDir::new("badsnap");
    for (name, bytes) in &fx.files {
        std::fs::write(tmp.path().join(name), bytes).unwrap();
    }
    std::fs::write(tmp.path().join(&fx.wal_name), &fx.wal_bytes).unwrap();
    let mut bad = snap_bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    std::fs::write(tmp.path().join(snap_name), &bad).unwrap();
    let Err(err) = Warehouse::recover(tmp.path()) else {
        panic!("recovery must fail");
    };
    assert!(
        matches!(
            &err,
            WarehouseError::Recovery(RecoveryError::Corrupt { .. })
        ),
        "bit-flipped snapshot: {err}"
    );

    // Truncated snapshot (torn during the pre-rename write — the manifest
    // should never point at one, but recovery must still not panic).
    std::fs::write(
        tmp.path().join(snap_name),
        &snap_bytes[..snap_bytes.len() / 2],
    )
    .unwrap();
    let Err(err) = Warehouse::recover(tmp.path()) else {
        panic!("recovery must fail");
    };
    assert!(
        matches!(
            &err,
            WarehouseError::Recovery(RecoveryError::Corrupt { .. })
        ),
        "truncated snapshot: {err}"
    );
}

#[test]
fn missing_or_corrupt_manifest_is_a_typed_error() {
    let empty = TempDir::new("nomanifest");
    let Err(err) = Warehouse::recover(empty.path()) else {
        panic!("recovery must fail");
    };
    assert!(
        matches!(
            &err,
            WarehouseError::Recovery(RecoveryError::MissingManifest(_))
        ),
        "empty dir: {err}"
    );

    let fx = fixture();
    let tmp = TempDir::new("badmanifest");
    for (name, bytes) in &fx.files {
        let bytes = if name == "MANIFEST" {
            let mut b = bytes.clone();
            let last = b.len() - 1;
            b[last] ^= 0xFF;
            b
        } else {
            bytes.clone()
        };
        std::fs::write(tmp.path().join(name), bytes).unwrap();
    }
    std::fs::write(tmp.path().join(&fx.wal_name), &fx.wal_bytes).unwrap();
    let Err(err) = Warehouse::recover(tmp.path()) else {
        panic!("recovery must fail");
    };
    assert!(
        matches!(
            &err,
            WarehouseError::Recovery(RecoveryError::Corrupt { .. })
        ),
        "corrupt manifest: {err}"
    );
}

// ======================================================================
// Warm resume: recovery re-plans incrementally, never from cold
// ======================================================================

#[test]
fn recovery_after_save_resumes_warm_and_keeps_logging() {
    let tmp = TempDir::new("warm");
    let (mut mirror, mut wh) = engine_with_views();
    wh.enable_wal(tmp.path()).unwrap();
    run_workload(&mut mirror, &mut wh);
    wh.save().unwrap();
    // Old segment pair is dead after the checkpoint and must be pruned.
    assert!(!tmp.path().join("wal-0.log").exists());
    assert!(!tmp.path().join("snapshot-0.img").exists());

    // A short WAL tail after the snapshot: one more round.
    let ds = generate_deltas(&mirror, 3.0, 2000);
    for t in ds.tables().collect::<Vec<_>>() {
        wh.ingest(t, ds.get(t).unwrap().clone()).unwrap();
    }
    wh.run_epoch().unwrap();
    mirror.db.apply_all(&ds).unwrap();
    let epoch_before = wh.epoch();
    drop(wh);

    let mut recovered = Warehouse::recover(tmp.path()).unwrap();
    let info = recovered.recovery_info().unwrap().clone();
    assert_eq!(info.snapshot_epoch, 3);
    assert_eq!(info.recovered_epoch, epoch_before);
    assert!(
        info.replayed_records >= 2,
        "the tail holds at least one ingest + its commit: {info:?}"
    );
    assert!(info.clean_wal);
    for v in recovered.views().to_vec() {
        assert!(recovered.verify(&v.name).unwrap());
    }

    // The memo is warm: every view re-registration after the recovered
    // session's first runs incrementally, and nothing falls back to the
    // cold `Initial` path. (A replayed epoch may still rebuild the memo
    // when the 2n update numbering changes — exactly as the live session
    // would have.)
    let replans = recovered.replans().to_vec();
    assert!(replans.len() >= 3, "{replans:?}");
    assert!(
        replans
            .iter()
            .skip(1)
            .filter(|r| matches!(r.trigger, ReoptTrigger::ViewSetChanged))
            .all(|r| r.mode == PlanMode::Incremental),
        "view re-registration must re-plan warm: {replans:?}"
    );
    assert!(
        replans
            .iter()
            .skip(1)
            .all(|r| !matches!(r.trigger, ReoptTrigger::Initial)),
        "recovery must never re-enter the Initial cold path: {replans:?}"
    );
    let sum_out = recovered.fresh_attr();
    let cnt_out = recovered.fresh_attr();
    recovered
        .register_view(ViewDef::new(
            "totals2",
            LogicalExpr::aggregate(
                LogicalExpr::scan(mirror.c),
                vec![attr(&mirror, mirror.c, ".b_id")],
                vec![
                    AggSpec::new(
                        AggFunc::Sum,
                        ScalarExpr::Col(attr(&mirror, mirror.c, ".v")),
                        sum_out,
                    ),
                    AggSpec::new(
                        AggFunc::Count,
                        ScalarExpr::Col(attr(&mirror, mirror.c, ".v")),
                        cnt_out,
                    ),
                ],
            ),
        ))
        .unwrap();
    let last = *recovered.replans().last().unwrap();
    assert_eq!(last.trigger, ReoptTrigger::ViewSetChanged);
    assert_eq!(
        last.mode,
        PlanMode::Incremental,
        "post-recovery replan must be warm, not a cold rebuild"
    );

    // The recovered engine keeps logging into the same segment: another
    // round survives a second recovery.
    let ds = generate_deltas(&mirror, 2.0, 3000);
    for t in ds.tables().collect::<Vec<_>>() {
        recovered.ingest(t, ds.get(t).unwrap().clone()).unwrap();
    }
    recovered.run_epoch().unwrap();
    let epoch_after = recovered.epoch();
    let explain = recovered.explain();
    assert!(explain.contains("durability:"), "{explain}");
    assert!(explain.contains("recovered:"), "{explain}");
    drop(recovered);

    let again = Warehouse::recover(tmp.path()).unwrap();
    assert_eq!(again.epoch(), epoch_after);
    for v in again.views().to_vec() {
        assert!(again.verify(&v.name).unwrap());
    }
    assert_no_tmp_files(tmp.path());
}

// ======================================================================
// Column codec: round trips pinned on logical Batch equality
// ======================================================================

mod codec_roundtrip {
    use super::*;
    use mvmqo_relalg::batch::Batch;
    use mvmqo_relalg::codec::{self, Dec, Enc};
    use mvmqo_relalg::schema::{Attribute, Schema};
    use mvmqo_relalg::types::DataType;

    fn schema(types: &[DataType]) -> Schema {
        Schema::new(
            types
                .iter()
                .enumerate()
                .map(|(i, dt)| Attribute {
                    id: AttrId(i as u32),
                    name: format!("t.c{i}"),
                    data_type: *dt,
                })
                .collect(),
        )
    }

    fn roundtrip(batch: &Batch) -> Batch {
        let mut e = Enc::new();
        codec::encode_batch(&mut e, batch);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = codec::decode_batch(&mut d).unwrap();
        assert!(d.is_empty(), "trailing bytes after batch");
        back
    }

    /// Every `DataType`, NULLs in every column, and a `Mixed` fallback
    /// column (type-mismatched values), pinned on logical `Batch` equality.
    #[test]
    fn every_datatype_with_nulls_and_mixed_round_trips() {
        let s = schema(&[
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Date,
            DataType::Bool,
            DataType::Int, // receives mixed values → Mixed fallback column
        ]);
        let rows: Vec<Tuple> = vec![
            vec![
                Value::Int(-7),
                Value::Float(3.5),
                Value::str("alpha"),
                Value::Date(730),
                Value::Bool(true),
                Value::Int(1),
            ],
            vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::str("not an int"),
            ],
            vec![
                Value::Int(i64::MAX),
                Value::Float(-0.0),
                Value::str(""),
                Value::Date(-1),
                Value::Bool(false),
                Value::Float(2.25),
            ],
        ];
        let batch = Batch::from_rows(s, &rows);
        assert_eq!(roundtrip(&batch), batch);
        // And the decoded image yields the original tuples.
        assert_eq!(roundtrip(&batch).to_rows(), rows);
    }

    #[test]
    fn empty_batch_round_trips() {
        let batch = Batch::empty(schema(&[DataType::Int, DataType::Str]));
        assert_eq!(roundtrip(&batch), batch);
    }

    /// Dictionary-encoded string columns survive the codec: logical
    /// equality holds, the decoded image is still dict-encoded, and the
    /// re-interned dictionary keeps the entries-unique invariant (code
    /// equality ⇔ string equality) that the code-space kernels rely on.
    #[test]
    fn dict_encoded_batch_round_trips() {
        let s = schema(&[DataType::Str, DataType::Int]);
        let rows: Vec<Tuple> = (0..300)
            .map(|i| {
                vec![
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::str(format!("w{}", i % 13))
                    },
                    Value::Int(i),
                ]
            })
            .collect();
        let batch = Batch::from_rows(s, &rows).dict_encoded();
        let back = roundtrip(&batch);
        assert_eq!(&back, &batch);
        assert_eq!(back.to_rows(), rows);
        let (codes, dict) = back.column(0).dict().expect("decoded image stays dict");
        assert_eq!(codes.len(), 300);
        let mut seen = std::collections::HashSet::new();
        assert!(
            dict.values().iter().all(|v| seen.insert(v.clone())),
            "dictionary entries must stay unique after re-interning"
        );
    }

    fn value_strategy() -> impl Strategy<Value = Value> {
        (0i64..1000).prop_map(|n| {
            let v = n / 5 - 100;
            match n % 5 {
                0 => Value::Null,
                1 => Value::Int(v),
                2 => Value::Float(v as f64 / 4.0),
                3 => Value::str(format!("s{v}")),
                _ => Value::Bool(v % 2 == 0),
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random tuples (random types per cell, so columns degrade to
        /// masks or `Mixed` as needed) survive the codec logically intact.
        #[test]
        fn random_batches_round_trip(cells in proptest::collection::vec(
            proptest::collection::vec(value_strategy(), 3),
            0..20,
        )) {
            let s = schema(&[DataType::Int, DataType::Float, DataType::Str]);
            let batch = Batch::from_rows(s, &cells);
            let back = roundtrip(&batch);
            prop_assert_eq!(&back, &batch);
            prop_assert_eq!(back.to_rows(), cells);
        }
    }
}
