//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use:
//!
//! * [`Strategy`] with an associated `Value` type and
//!   [`prop_map`](Strategy::prop_map);
//! * range strategies (`0i64..6`, `1u64..10_000`, inclusive variants);
//! * [`collection::vec`] with an exact or ranged size;
//! * [`bool::ANY`];
//! * [`ProptestConfig::with_cases`];
//! * the [`proptest!`], [`prop_assert!`], and [`prop_assert_eq!`] macros.
//!
//! Semantics differ from real proptest in two deliberate ways: generation
//! is **deterministic** (seeded from the test name, so failures reproduce
//! on every run without a persistence file), and there is **no
//! shrinking** — a failing case reports its inputs via the standard
//! assertion message only. Both keep the stand-in tiny while preserving
//! the tests' meaning.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (the `proptest!` macro passes the test
    /// function's name), so each test gets a stable, distinct stream.
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of test-case values (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy (stand-in for `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Boolean strategies (stand-in for the `proptest::bool` module).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Stand-in for `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (stand-in for the `proptest::collection` module).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number of elements a [`vec()`] strategy may produce.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-block test configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Stand-in for `proptest::prop_assert!`: a plain assertion (no shrinking,
/// so an early panic is exactly what we want).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Stand-in for `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Stand-in for `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items!(config = $cfg; $($rest)*);
    };
}

/// Stand-in for `proptest::proptest!`: expands each `fn name(arg in
/// strategy, ...) { .. }` item into a `#[test]`-able function that runs
/// `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(config = $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(config = $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (3i64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u32..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::deterministic("map");
        let s = (0i64..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert_eq!(v % 10, 0);
            assert!(v < 50);
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::deterministic("vec");
        let exact = crate::collection::vec(0i64..3, 2usize);
        assert_eq!(exact.generate(&mut rng).len(), 2);
        let ranged = crate::collection::vec(0i64..3, 0usize..24);
        for _ in 0..100 {
            assert!(ranged.generate(&mut rng).len() < 24);
        }
    }

    #[test]
    fn bool_any_yields_both() {
        let mut rng = TestRng::deterministic("bool");
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[crate::bool::ANY.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn determinism_per_label() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    // The macro itself, exercised end to end (64 cases, a config block,
    // doc comments, multiple functions — everything the real tests use).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments must be tolerated.
        #[test]
        fn macro_generates_cases(x in 0i64..10, flip in crate::bool::ANY) {
            prop_assert!(x >= 0);
            prop_assert!(x < 10);
            let _ = flip;
        }

        #[test]
        fn macro_second_item(v in crate::collection::vec(0i64..4, 0usize..6)) {
            prop_assert!(v.len() < 6);
            prop_assert_eq!(v.iter().filter(|x| **x >= 4).count(), 0);
        }
    }
}
