//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset the `mvmqo-bench` bench targets use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`, `finish`),
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's full statistical
//! machinery it does plain wall-clock sampling — a warm-up iteration, then
//! up to `sample_size` timed iterations capped by a per-benchmark time
//! budget — and prints min/median/mean per benchmark. Good enough to
//! compare optimizer configurations locally; swap in real criterion for
//! publication-grade numbers.
//!
//! Command-line behaviour mirrors what `cargo bench`/`cargo test` pass to
//! a `harness = false` target: `--test` runs each benchmark once (smoke
//! mode), a bare positional argument filters benchmarks by substring, and
//! all other flags are accepted and ignored.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget; sampling stops early once exceeded.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion {
            filter,
            test_mode,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Configure this `Criterion` from command-line args (compatibility
    /// shim; `Default` already does so).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let n = self.default_sample_size;
        self.run_one(&id, n, f);
        self
    }

    fn run_one<F>(&self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            iters: if self.test_mode { 1 } else { sample_size },
        };
        f(&mut b);
        if self.test_mode {
            println!("{id}: ok (smoke)");
            return;
        }
        let s = &mut b.samples;
        if s.is_empty() {
            println!("{id}: no samples");
            return;
        }
        s.sort();
        let min = s[0];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<Duration>() / s.len() as u32;
        println!(
            "{id}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
            s.len()
        );
    }
}

/// A named group of benchmarks (stand-in for `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&id, n, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`iter`](Bencher::iter) times the
/// routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (untimed).
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// Stand-in for `criterion_group!`: defines a function running each listed
/// benchmark against a default-configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Stand-in for `criterion_main!`: a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters: 5,
        };
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
            default_sample_size: 3,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        // test_mode: warm-up + 1 timed iteration.
        assert_eq!(ran, 2);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("match_me".into()),
            test_mode: true,
            default_sample_size: 3,
        };
        let mut ran = 0;
        c.bench_function("other", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 0);
        c.bench_function("match_me_too", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }
}
