//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the subset this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random_range`] over
//! integer and float ranges — with a small deterministic generator
//! (splitmix64 state advance + xorshift-multiply output mix). Sequences
//! are stable across platforms and compiler versions, which is exactly
//! what the TPC-D data generator wants; statistical quality is more than
//! adequate for synthetic-data generation, and nothing here is
//! cryptographic.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range-sampling extension (subset of `rand::Rng`/`RngExt`).
pub trait RngExt: RngCore + Sized {
    /// Sample uniformly from `range`. Panics on an empty range, like the
    /// real `rand`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Sample a bool with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + Sized> RngExt for R {}

/// A range that can be sampled from (subset of `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard one output so nearby seeds decorrelate immediately.
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush; ideal for reproducible synthetic data.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: i64 = rng.random_range(-5..17);
            assert!((-5..17).contains(&x));
            let y: i64 = rng.random_range(1..=50);
            assert!((1..=50).contains(&y));
            let z: usize = rng.random_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(-1_000.0..10_000.0);
            assert!((-1_000.0..10_000.0).contains(&x));
        }
    }

    #[test]
    fn covers_full_small_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _: i64 = rng.random_range(5..5);
    }
}
