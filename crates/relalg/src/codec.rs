//! Self-describing binary codec for the durability layer.
//!
//! Snapshots and WAL records persist relational state — values, schemas,
//! columnar [`Batch`]es, logical view expressions, and the catalog — as
//! compact little-endian byte streams. The encoding is deliberately
//! hand-rolled (no serde dependency): every composite is length- or
//! count-prefixed and every enum carries a one-byte tag, so a decoder can
//! always detect truncation and never reads past its input.
//!
//! The columnar encoding mirrors the SoA [`Batch`] layout from the
//! vectorized executor: a typed column serializes as its physical vector
//! plus an optional null mask, so writing a delta batch to the WAL is a
//! near-memcpy of the structures the engine already holds.

use crate::agg::{AggFunc, AggSpec};
use crate::batch::{Batch, Column, ColumnData, Dictionary};
use crate::catalog::{Catalog, ForeignKey, TableDef, TableId};
use crate::expr::{ArithOp, CmpOp, Predicate, ScalarExpr};
use crate::logical::{LogicalExpr, ViewDef};
use crate::schema::{AttrId, Attribute, Schema};
use crate::stats::{ColStats, RelStats};
use crate::types::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// Decoding failure: the input is shorter than the structure it claims to
/// hold, or a tag/payload is not a valid encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended inside a structure.
    Truncated,
    /// A tag or payload violates the format.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("encoded input truncated"),
            CodecError::Invalid(why) => write!(f, "invalid encoding: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn invalid(why: impl Into<String>) -> CodecError {
    CodecError::Invalid(why.into())
}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats persist as raw IEEE bits, so every value (including -0.0 and
    /// NaN payloads) round-trips exactly.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Cursor-based decoder over a byte slice. Every read is bounds-checked and
/// returns [`CodecError::Truncated`] rather than panicking on short input.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(invalid(format!("bool byte {b}"))),
        }
    }

    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| invalid("non-UTF-8 string"))
    }

    /// Count prefix, sanity-bounded by the bytes actually remaining so a
    /// corrupt length cannot trigger a huge allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() / min_elem_bytes.max(1) + 1 {
            return Err(invalid(format!("count {n} exceeds remaining input")));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------------

pub fn encode_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.u8(0),
        Value::Int(x) => {
            e.u8(1);
            e.i64(*x);
        }
        Value::Float(x) => {
            e.u8(2);
            e.f64(*x);
        }
        Value::Str(s) => {
            e.u8(3);
            e.str(s);
        }
        Value::Date(d) => {
            e.u8(4);
            e.i32(*d);
        }
        Value::Bool(b) => {
            e.u8(5);
            e.bool(*b);
        }
    }
}

pub fn decode_value(d: &mut Dec) -> Result<Value, CodecError> {
    Ok(match d.u8()? {
        0 => Value::Null,
        1 => Value::Int(d.i64()?),
        2 => Value::Float(d.f64()?),
        3 => Value::Str(Arc::from(d.str()?)),
        4 => Value::Date(d.i32()?),
        5 => Value::Bool(d.bool()?),
        t => return Err(invalid(format!("value tag {t}"))),
    })
}

pub fn encode_data_type(e: &mut Enc, dt: DataType) {
    e.u8(match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Date => 3,
        DataType::Bool => 4,
    });
}

pub fn decode_data_type(d: &mut Dec) -> Result<DataType, CodecError> {
    Ok(match d.u8()? {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Date,
        4 => DataType::Bool,
        t => return Err(invalid(format!("data type tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Schemas
// ---------------------------------------------------------------------------

pub fn encode_schema(e: &mut Enc, s: &Schema) {
    e.u32(s.len() as u32);
    for a in s.attrs() {
        e.u32(a.id.0);
        e.str(&a.name);
        encode_data_type(e, a.data_type);
    }
}

pub fn decode_schema(d: &mut Dec) -> Result<Schema, CodecError> {
    let n = d.count(9)?;
    let mut attrs = Vec::with_capacity(n);
    let mut ids: Vec<u32> = Vec::with_capacity(n);
    for _ in 0..n {
        let id = AttrId(d.u32()?);
        if ids.contains(&id.0) {
            return Err(invalid(format!("duplicate attribute id {id}")));
        }
        ids.push(id.0);
        attrs.push(Attribute {
            id,
            name: d.str()?,
            data_type: decode_data_type(d)?,
        });
    }
    Ok(Schema::new(attrs))
}

// ---------------------------------------------------------------------------
// Columns and batches
// ---------------------------------------------------------------------------

/// Tag bytes for [`ColumnData`] variants (5 = the `Mixed` fallback,
/// 6 = dictionary-encoded strings).
fn column_tag(data: &ColumnData) -> u8 {
    match data {
        ColumnData::Int(_) => 0,
        ColumnData::Float(_) => 1,
        ColumnData::Str(_) => 2,
        ColumnData::Date(_) => 3,
        ColumnData::Bool(_) => 4,
        ColumnData::Mixed(_) => 5,
        ColumnData::Dict { .. } => 6,
    }
}

pub fn encode_column(e: &mut Enc, c: &Column) {
    e.u8(column_tag(c.data()));
    e.u32(c.len() as u32);
    match c.data() {
        ColumnData::Int(v) => v.iter().for_each(|x| e.i64(*x)),
        ColumnData::Float(v) => v.iter().for_each(|x| e.f64(*x)),
        ColumnData::Str(v) => v.iter().for_each(|s| e.str(s)),
        ColumnData::Date(v) => v.iter().for_each(|x| e.i32(*x)),
        ColumnData::Bool(v) => v.iter().for_each(|x| e.bool(*x)),
        ColumnData::Mixed(v) => v.iter().for_each(|x| encode_value(e, x)),
        ColumnData::Dict { codes, dict } => {
            // Codes first (length `n` from the header), then the dictionary
            // entries. Hashes and the intern index are derived state and
            // are rebuilt on decode.
            codes.iter().for_each(|x| e.u32(*x));
            e.u32(dict.len() as u32);
            dict.values().iter().for_each(|s| e.str(s));
        }
    }
    match c.null_mask() {
        Some(mask) => {
            e.u8(1);
            mask.iter().for_each(|b| e.bool(*b));
        }
        None => e.u8(0),
    }
}

pub fn decode_column(d: &mut Dec) -> Result<Column, CodecError> {
    let tag = d.u8()?;
    let n = d.count(1)?;
    let data = match tag {
        0 => ColumnData::Int((0..n).map(|_| d.i64()).collect::<Result<_, _>>()?),
        1 => ColumnData::Float((0..n).map(|_| d.f64()).collect::<Result<_, _>>()?),
        2 => ColumnData::Str(
            (0..n)
                .map(|_| d.str().map(Arc::from))
                .collect::<Result<_, _>>()?,
        ),
        3 => ColumnData::Date((0..n).map(|_| d.i32()).collect::<Result<_, _>>()?),
        4 => ColumnData::Bool((0..n).map(|_| d.bool()).collect::<Result<_, _>>()?),
        5 => ColumnData::Mixed((0..n).map(|_| decode_value(d)).collect::<Result<_, _>>()?),
        6 => {
            let raw_codes: Vec<u32> = (0..n).map(|_| d.u32()).collect::<Result<_, _>>()?;
            let entries = d.count(1)?;
            // Re-intern the entries: this rebuilds the derived hash/index
            // state and re-establishes the uniqueness invariant (a crafted
            // or corrupt file may carry duplicate entries), remapping codes
            // accordingly.
            let mut dict = Dictionary::default();
            let remap: Vec<u32> = (0..entries)
                .map(|_| d.str().map(|s| dict.intern(&s)))
                .collect::<Result<_, _>>()?;
            let codes = raw_codes
                .into_iter()
                .map(|c| {
                    remap
                        .get(c as usize)
                        .copied()
                        .ok_or_else(|| invalid(format!("dict code {c} out of range")))
                })
                .collect::<Result<_, _>>()?;
            ColumnData::Dict {
                codes,
                dict: Arc::new(dict),
            }
        }
        t => return Err(invalid(format!("column tag {t}"))),
    };
    let nulls = match d.u8()? {
        0 => None,
        1 => Some((0..n).map(|_| d.bool()).collect::<Result<Vec<_>, _>>()?),
        t => return Err(invalid(format!("null-mask flag {t}"))),
    };
    if matches!(data, ColumnData::Mixed(_)) && nulls.is_some() {
        return Err(invalid("Mixed column with a null mask"));
    }
    Ok(Column::from_parts(data, nulls))
}

/// Encode a batch in logical row order. A batch carrying a selection vector
/// is compacted first so the on-disk image is always dense — the decoder
/// never has to reconstruct selection state.
pub fn encode_batch(e: &mut Enc, b: &Batch) {
    let dense = b.clone().compact();
    encode_schema(e, dense.schema());
    e.u32(dense.schema().len() as u32);
    for i in 0..dense.schema().len() {
        encode_column(e, dense.column(i));
    }
}

pub fn decode_batch(d: &mut Dec) -> Result<Batch, CodecError> {
    let schema = decode_schema(d)?;
    let ncols = d.count(2)?;
    if ncols != schema.len() {
        return Err(invalid(format!(
            "batch has {ncols} columns but schema expects {}",
            schema.len()
        )));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(decode_column(d)?);
    }
    let rows = columns.first().map_or(0, Column::len);
    if columns.iter().any(|c| c.len() != rows) {
        return Err(invalid("batch columns have unequal lengths"));
    }
    Ok(Batch::from_columns(schema, columns))
}

// ---------------------------------------------------------------------------
// Expressions and predicates
// ---------------------------------------------------------------------------

fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn decode_cmp_op(d: &mut Dec) -> Result<CmpOp, CodecError> {
    Ok(match d.u8()? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(invalid(format!("cmp op tag {t}"))),
    })
}

fn arith_op_tag(op: ArithOp) -> u8 {
    match op {
        ArithOp::Add => 0,
        ArithOp::Sub => 1,
        ArithOp::Mul => 2,
        ArithOp::Div => 3,
    }
}

fn decode_arith_op(d: &mut Dec) -> Result<ArithOp, CodecError> {
    Ok(match d.u8()? {
        0 => ArithOp::Add,
        1 => ArithOp::Sub,
        2 => ArithOp::Mul,
        3 => ArithOp::Div,
        t => return Err(invalid(format!("arith op tag {t}"))),
    })
}

pub fn encode_scalar_expr(e: &mut Enc, x: &ScalarExpr) {
    match x {
        ScalarExpr::Col(a) => {
            e.u8(0);
            e.u32(a.0);
        }
        ScalarExpr::Lit(v) => {
            e.u8(1);
            encode_value(e, v);
        }
        ScalarExpr::Cmp { op, lhs, rhs } => {
            e.u8(2);
            e.u8(cmp_op_tag(*op));
            encode_scalar_expr(e, lhs);
            encode_scalar_expr(e, rhs);
        }
        ScalarExpr::Arith { op, lhs, rhs } => {
            e.u8(3);
            e.u8(arith_op_tag(*op));
            encode_scalar_expr(e, lhs);
            encode_scalar_expr(e, rhs);
        }
        ScalarExpr::And(es) => {
            e.u8(4);
            e.u32(es.len() as u32);
            es.iter().for_each(|x| encode_scalar_expr(e, x));
        }
        ScalarExpr::Or(es) => {
            e.u8(5);
            e.u32(es.len() as u32);
            es.iter().for_each(|x| encode_scalar_expr(e, x));
        }
        ScalarExpr::Not(inner) => {
            e.u8(6);
            encode_scalar_expr(e, inner);
        }
    }
}

pub fn decode_scalar_expr(d: &mut Dec) -> Result<ScalarExpr, CodecError> {
    Ok(match d.u8()? {
        0 => ScalarExpr::Col(AttrId(d.u32()?)),
        1 => ScalarExpr::Lit(decode_value(d)?),
        2 => {
            let op = decode_cmp_op(d)?;
            let lhs = Box::new(decode_scalar_expr(d)?);
            let rhs = Box::new(decode_scalar_expr(d)?);
            ScalarExpr::Cmp { op, lhs, rhs }
        }
        3 => {
            let op = decode_arith_op(d)?;
            let lhs = Box::new(decode_scalar_expr(d)?);
            let rhs = Box::new(decode_scalar_expr(d)?);
            ScalarExpr::Arith { op, lhs, rhs }
        }
        4 => {
            let n = d.count(2)?;
            ScalarExpr::And(
                (0..n)
                    .map(|_| decode_scalar_expr(d))
                    .collect::<Result<_, _>>()?,
            )
        }
        5 => {
            let n = d.count(2)?;
            ScalarExpr::Or(
                (0..n)
                    .map(|_| decode_scalar_expr(d))
                    .collect::<Result<_, _>>()?,
            )
        }
        6 => ScalarExpr::Not(Box::new(decode_scalar_expr(d)?)),
        t => return Err(invalid(format!("scalar expr tag {t}"))),
    })
}

pub fn encode_predicate(e: &mut Enc, p: &Predicate) {
    e.u32(p.conjuncts().len() as u32);
    p.conjuncts().iter().for_each(|c| encode_scalar_expr(e, c));
}

pub fn decode_predicate(d: &mut Dec) -> Result<Predicate, CodecError> {
    let n = d.count(2)?;
    let cs = (0..n)
        .map(|_| decode_scalar_expr(d))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Predicate::from_conjuncts(cs))
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

fn agg_func_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Avg => 2,
        AggFunc::Min => 3,
        AggFunc::Max => 4,
    }
}

pub fn decode_agg_func(d: &mut Dec) -> Result<AggFunc, CodecError> {
    Ok(match d.u8()? {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Avg,
        3 => AggFunc::Min,
        4 => AggFunc::Max,
        t => return Err(invalid(format!("agg func tag {t}"))),
    })
}

pub fn encode_agg_func(e: &mut Enc, f: AggFunc) {
    e.u8(agg_func_tag(f));
}

pub fn encode_agg_spec(e: &mut Enc, s: &AggSpec) {
    encode_agg_func(e, s.func);
    encode_scalar_expr(e, &s.input);
    e.u32(s.out.0);
}

pub fn decode_agg_spec(d: &mut Dec) -> Result<AggSpec, CodecError> {
    Ok(AggSpec {
        func: decode_agg_func(d)?,
        input: decode_scalar_expr(d)?,
        out: AttrId(d.u32()?),
    })
}

// ---------------------------------------------------------------------------
// Logical expressions and views
// ---------------------------------------------------------------------------

pub fn encode_logical_expr(e: &mut Enc, x: &LogicalExpr) {
    match x {
        LogicalExpr::Scan { table } => {
            e.u8(0);
            e.u32(table.0);
        }
        LogicalExpr::Select { input, predicate } => {
            e.u8(1);
            encode_logical_expr(e, input);
            encode_predicate(e, predicate);
        }
        LogicalExpr::Project { input, attrs } => {
            e.u8(2);
            encode_logical_expr(e, input);
            e.u32(attrs.len() as u32);
            attrs.iter().for_each(|a| e.u32(a.0));
        }
        LogicalExpr::Join {
            left,
            right,
            predicate,
        } => {
            e.u8(3);
            encode_logical_expr(e, left);
            encode_logical_expr(e, right);
            encode_predicate(e, predicate);
        }
        LogicalExpr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            e.u8(4);
            encode_logical_expr(e, input);
            e.u32(group_by.len() as u32);
            group_by.iter().for_each(|a| e.u32(a.0));
            e.u32(aggs.len() as u32);
            aggs.iter().for_each(|s| encode_agg_spec(e, s));
        }
        LogicalExpr::UnionAll { left, right } => {
            e.u8(5);
            encode_logical_expr(e, left);
            encode_logical_expr(e, right);
        }
        LogicalExpr::Minus { left, right } => {
            e.u8(6);
            encode_logical_expr(e, left);
            encode_logical_expr(e, right);
        }
        LogicalExpr::Distinct { input } => {
            e.u8(7);
            encode_logical_expr(e, input);
        }
    }
}

pub fn decode_logical_expr(d: &mut Dec) -> Result<Arc<LogicalExpr>, CodecError> {
    Ok(match d.u8()? {
        0 => LogicalExpr::scan(TableId(d.u32()?)),
        1 => {
            let input = decode_logical_expr(d)?;
            LogicalExpr::select(input, decode_predicate(d)?)
        }
        2 => {
            let input = decode_logical_expr(d)?;
            let n = d.count(4)?;
            let attrs = (0..n)
                .map(|_| d.u32().map(AttrId))
                .collect::<Result<Vec<_>, _>>()?;
            LogicalExpr::project(input, attrs)
        }
        3 => {
            let left = decode_logical_expr(d)?;
            let right = decode_logical_expr(d)?;
            LogicalExpr::join(left, right, decode_predicate(d)?)
        }
        4 => {
            let input = decode_logical_expr(d)?;
            let ng = d.count(4)?;
            let group_by = (0..ng)
                .map(|_| d.u32().map(AttrId))
                .collect::<Result<Vec<_>, _>>()?;
            let na = d.count(6)?;
            let aggs = (0..na)
                .map(|_| decode_agg_spec(d))
                .collect::<Result<Vec<_>, _>>()?;
            LogicalExpr::aggregate(input, group_by, aggs)
        }
        5 => {
            let left = decode_logical_expr(d)?;
            LogicalExpr::union_all(left, decode_logical_expr(d)?)
        }
        6 => {
            let left = decode_logical_expr(d)?;
            LogicalExpr::minus(left, decode_logical_expr(d)?)
        }
        7 => LogicalExpr::distinct(decode_logical_expr(d)?),
        t => return Err(invalid(format!("logical expr tag {t}"))),
    })
}

pub fn encode_view_def(e: &mut Enc, v: &ViewDef) {
    e.str(&v.name);
    encode_logical_expr(e, &v.expr);
}

pub fn decode_view_def(d: &mut Dec) -> Result<ViewDef, CodecError> {
    Ok(ViewDef {
        name: d.str()?,
        expr: decode_logical_expr(d)?,
    })
}

// ---------------------------------------------------------------------------
// Statistics and the catalog
// ---------------------------------------------------------------------------

fn encode_col_stats(e: &mut Enc, c: &ColStats) {
    e.f64(c.distinct);
    match c.range {
        Some((lo, hi)) => {
            e.u8(1);
            e.f64(lo);
            e.f64(hi);
        }
        None => e.u8(0),
    }
}

fn decode_col_stats(d: &mut Dec) -> Result<ColStats, CodecError> {
    let distinct = d.f64()?;
    let range = match d.u8()? {
        0 => None,
        1 => Some((d.f64()?, d.f64()?)),
        t => return Err(invalid(format!("range flag {t}"))),
    };
    Ok(ColStats { distinct, range })
}

pub fn encode_rel_stats(e: &mut Enc, s: &RelStats) {
    e.f64(s.rows);
    // Sort by attribute id so equal stats always serialize identically.
    let mut cols: Vec<_> = s.cols.iter().collect();
    cols.sort_by_key(|(a, _)| **a);
    e.u32(cols.len() as u32);
    for (a, c) in cols {
        e.u32(a.0);
        encode_col_stats(e, c);
    }
}

pub fn decode_rel_stats(d: &mut Dec) -> Result<RelStats, CodecError> {
    let rows = d.f64()?;
    let n = d.count(13)?;
    let mut cols = std::collections::HashMap::with_capacity(n);
    for _ in 0..n {
        let a = AttrId(d.u32()?);
        cols.insert(a, decode_col_stats(d)?);
    }
    Ok(RelStats { rows, cols })
}

fn encode_foreign_key(e: &mut Enc, fk: &ForeignKey) {
    e.u32(fk.child_attrs.len() as u32);
    fk.child_attrs.iter().for_each(|a| e.u32(a.0));
    e.u32(fk.parent_table.0);
    e.u32(fk.parent_attrs.len() as u32);
    fk.parent_attrs.iter().for_each(|a| e.u32(a.0));
}

fn decode_foreign_key(d: &mut Dec) -> Result<ForeignKey, CodecError> {
    let nc = d.count(4)?;
    let child_attrs = (0..nc)
        .map(|_| d.u32().map(AttrId))
        .collect::<Result<Vec<_>, _>>()?;
    let parent_table = TableId(d.u32()?);
    let np = d.count(4)?;
    let parent_attrs = (0..np)
        .map(|_| d.u32().map(AttrId))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ForeignKey {
        child_attrs,
        parent_table,
        parent_attrs,
    })
}

pub fn encode_table_def(e: &mut Enc, t: &TableDef) {
    e.u32(t.id.0);
    e.str(&t.name);
    encode_schema(e, &t.schema);
    e.u32(t.primary_key.len() as u32);
    t.primary_key.iter().for_each(|a| e.u32(a.0));
    e.u32(t.foreign_keys.len() as u32);
    t.foreign_keys
        .iter()
        .for_each(|fk| encode_foreign_key(e, fk));
    encode_rel_stats(e, &t.stats);
}

pub fn decode_table_def(d: &mut Dec) -> Result<TableDef, CodecError> {
    let id = TableId(d.u32()?);
    let name = d.str()?;
    let schema = decode_schema(d)?;
    let npk = d.count(4)?;
    let primary_key = (0..npk)
        .map(|_| d.u32().map(AttrId))
        .collect::<Result<Vec<_>, _>>()?;
    let nfk = d.count(12)?;
    let foreign_keys = (0..nfk)
        .map(|_| decode_foreign_key(d))
        .collect::<Result<Vec<_>, _>>()?;
    let stats = decode_rel_stats(d)?;
    Ok(TableDef {
        id,
        name,
        schema,
        primary_key,
        foreign_keys,
        stats,
    })
}

/// Encode the full catalog, including the attribute allocator's counter so
/// fresh ids allocated after recovery never collide with persisted ones.
pub fn encode_catalog(e: &mut Enc, c: &Catalog) {
    e.u32(c.tables().len() as u32);
    c.tables().iter().for_each(|t| encode_table_def(e, t));
    e.u32(c.allocated_attrs());
}

pub fn decode_catalog(d: &mut Dec) -> Result<Catalog, CodecError> {
    let n = d.count(20)?;
    let tables = (0..n)
        .map(|_| decode_table_def(d))
        .collect::<Result<Vec<_>, _>>()?;
    for (i, t) in tables.iter().enumerate() {
        if t.id.0 as usize != i {
            return Err(invalid(format!(
                "table {} has id {} but sits at position {i}",
                t.name, t.id
            )));
        }
    }
    let next_attr = d.u32()?;
    Catalog::from_parts(tables, next_attr).map_err(invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnSpec;
    use crate::tuple::Tuple;

    fn roundtrip_value(v: Value) {
        let mut e = Enc::new();
        encode_value(&mut e, &v);
        let bytes = e.into_bytes();
        let got = decode_value(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn values_roundtrip() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Int(-42));
        roundtrip_value(Value::Float(-0.0));
        roundtrip_value(Value::str("héllo"));
        roundtrip_value(Value::Date(-7));
        roundtrip_value(Value::Bool(true));
    }

    #[test]
    fn batch_roundtrips_with_nulls_and_mixed() {
        let schema = Schema::new(vec![
            Attribute {
                id: AttrId(0),
                name: "t.i".into(),
                data_type: DataType::Int,
            },
            Attribute {
                id: AttrId(1),
                name: "t.s".into(),
                data_type: DataType::Str,
            },
            Attribute {
                id: AttrId(2),
                name: "t.f".into(),
                data_type: DataType::Float,
            },
        ]);
        let rows: Vec<Tuple> = vec![
            vec![Value::Int(1), Value::str("a"), Value::Float(1.5)],
            vec![Value::Null, Value::str("b"), Value::Int(7)], // Int in Float slot → Mixed
            vec![Value::Int(3), Value::Null, Value::Null],
        ];
        let b = Batch::from_rows(schema, &rows);
        let mut e = Enc::new();
        encode_batch(&mut e, &b);
        let bytes = e.into_bytes();
        let got = decode_batch(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(got, b);
        assert_eq!(got.to_rows(), rows);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        encode_value(&mut e, &Value::str("some string payload"));
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let r = decode_value(&mut Dec::new(&bytes[..cut]));
            assert!(r.is_err(), "cut at {cut} decoded as {r:?}");
        }
    }

    #[test]
    fn catalog_roundtrips_with_allocator_position() {
        let mut c = Catalog::new();
        let parent = c.add_table(
            "dept",
            vec![
                ColumnSpec::key("dno", DataType::Int),
                ColumnSpec::with_distinct("city", DataType::Str, 10.0),
            ],
            100.0,
            &["dno"],
        );
        let child = c.add_table(
            "emp",
            vec![
                ColumnSpec::key("eno", DataType::Int),
                ColumnSpec::with_range("sal", DataType::Float, 500.0, (0.0, 1e4)),
            ],
            1000.0,
            &["eno"],
        );
        c.add_foreign_key(child, &["eno"], parent);
        let derived = c.fresh_attr();

        let mut e = Enc::new();
        encode_catalog(&mut e, &c);
        let bytes = e.into_bytes();
        let got = decode_catalog(&mut Dec::new(&bytes)).unwrap();

        assert_eq!(got.tables().len(), 2);
        assert_eq!(got.table(child).name, "emp");
        assert_eq!(got.table(child).foreign_keys, c.table(child).foreign_keys);
        assert_eq!(got.table(parent).stats, c.table(parent).stats);
        assert_eq!(got.allocated_attrs(), c.allocated_attrs());
        // Fresh ids continue past everything persisted.
        let mut got = got;
        assert!(got.fresh_attr() > derived);
    }

    #[test]
    fn view_def_roundtrips() {
        let scan = LogicalExpr::scan(TableId(0));
        let sel = LogicalExpr::select(
            scan.clone(),
            Predicate::from_expr(ScalarExpr::col_cmp_lit(AttrId(1), CmpOp::Lt, 10i64)),
        );
        let join = LogicalExpr::join(
            sel,
            LogicalExpr::scan(TableId(1)),
            Predicate::from_expr(ScalarExpr::col_eq_col(AttrId(0), AttrId(3))),
        );
        let agg = LogicalExpr::aggregate(
            join,
            vec![AttrId(3)],
            vec![AggSpec {
                func: AggFunc::Sum,
                input: ScalarExpr::Col(AttrId(1)),
                out: AttrId(99),
            }],
        );
        let v = ViewDef {
            name: "revenue".into(),
            expr: LogicalExpr::distinct(LogicalExpr::project(agg, vec![AttrId(3), AttrId(99)])),
        };
        let mut e = Enc::new();
        encode_view_def(&mut e, &v);
        let bytes = e.into_bytes();
        let got = decode_view_def(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(got.name, v.name);
        assert_eq!(got.expr, v.expr);
    }
}
