//! Fast non-cryptographic hashing for the executor's internal hash tables.
//!
//! Every columnar hash table in the engine (join build sides, group-by
//! buckets, distinct/bag-difference candidate maps) pairs a *bucket hash*
//! with a full column-wise equality check, so the hash only has to be
//! consistent within one operation — never stable across runs, processes,
//! or collision-resistant against adversaries. That frees these paths from
//! SipHash (std's DoS-resistant default), whose per-row cost dominates
//! hashing-heavy operators on wide tables.
//!
//! [`FxHasher`] is the rustc-style multiply-xor fold (the idiom used by
//! `rustc-hash`, reimplemented here because the build is offline).
//! [`U64Map`] additionally avoids re-hashing already-hashed `u64` bucket
//! keys through SipHash by finishing them with a single Fibonacci multiply.
//!
//! Neither hasher is used for anything user-visible or persisted; the
//! `Value`-semantics contract (`Int(2)` and `Float(2.0)` hash equal, NULL
//! has its own tag) lives in the *byte stream* the caller feeds in (see
//! `Column::hash_value`), not in the hasher.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor folding hasher (rustc-hash idiom): one rotate, one xor,
/// one multiply per word.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: the multiply-xor fold preserves trailing
        // zeros (an odd-constant multiply keeps the 2-adic valuation, and
        // e.g. small integers hashed via `f64::to_bits` end in zero bits),
        // while std's swiss table indexes by the *low* bits — without an
        // avalanche step those keys all land in a handful of buckets.
        let mut x = self.state;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.fold(v as u32 as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// Standalone string hash: the canonical 64-bit image of a string's bytes
/// used by `Value::hash` and `Column::hash_value`. Dictionary-encoded
/// columns precompute this per dictionary entry, so a dict-coded string
/// hashes in O(1) to exactly the same byte stream a plain `Str` column
/// feeds the hasher — equal strings collide across representations.
#[inline]
pub fn str_hash(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.write_u8(0xff); // length delimiter, as in `Hash for str`
    h.finish()
}

/// Finishing hasher for keys that are already hashes: one Fibonacci
/// multiply spreads the entropy into the high bits std's `HashMap` uses.
#[derive(Default)]
pub struct U64IdentityHasher {
    state: u64,
}

impl Hasher for U64IdentityHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    fn write(&mut self, _bytes: &[u8]) {
        unimplemented!("U64IdentityHasher only hashes u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = v;
    }
}

/// Hash map keyed by precomputed `u64` hashes (bucket tables).
pub type U64Map<V> = HashMap<u64, V, BuildHasherDefault<U64IdentityHasher>>;

/// An empty [`U64Map`] with room for `n` entries.
pub fn u64_map_with_capacity<V>(n: usize) -> U64Map<V> {
    U64Map::with_capacity_and_hasher(n, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;
    use std::hash::Hash;

    fn fx_of(v: &Value) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn value_semantics_survive_the_hasher() {
        // The cross-type equal-hash contract is carried by Value::hash's
        // byte stream, independent of the hasher underneath.
        assert_eq!(fx_of(&Value::Int(7)), fx_of(&Value::Float(7.0)));
        assert_ne!(fx_of(&Value::Int(7)), fx_of(&Value::Int(8)));
        assert_eq!(fx_of(&Value::str("abc")), fx_of(&Value::str("abc")));
        assert_ne!(fx_of(&Value::str("abc")), fx_of(&Value::str("abd")));
    }

    #[test]
    fn fx_write_handles_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(b"hello world"); // 11 bytes: one chunk + 3-byte tail
        let mut b = FxHasher::default();
        b.write(b"hello worlt");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn u64_map_round_trips() {
        let mut m: U64Map<i32> = u64_map_with_capacity(4);
        m.insert(42, 1);
        m.insert(u64::MAX, 2);
        assert_eq!(m.get(&42), Some(&1));
        assert_eq!(m.get(&u64::MAX), Some(&2));
        assert_eq!(m.get(&7), None);
    }
}
