//! Scalar data types and runtime values of the multiset relational algebra.
//!
//! Values must be hashable and totally ordered so that they can serve as
//! grouping keys, join keys, and index keys. Floating-point values are
//! wrapped so that `NaN` has a defined (greatest) position in the order and a
//! stable hash; the engine never produces `NaN` from well-formed inputs, but
//! the total order keeps every container well-defined regardless.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Logical type of a column or scalar expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float with total order semantics.
    Float,
    /// Immutable UTF-8 string.
    Str,
    /// Days since an arbitrary epoch; kept distinct from `Int` so schema
    /// checks catch accidental mixing.
    Date,
    /// Boolean, produced by predicates.
    Bool,
}

impl DataType {
    /// Width in bytes used for row-size accounting in the cost model.
    /// Strings are charged a fixed average width, matching how the paper's
    /// cost model works from catalog-level row widths rather than actual
    /// payloads.
    pub fn estimated_width(self) -> usize {
        match self {
            DataType::Int => 8,
            DataType::Float => 8,
            DataType::Str => 24,
            DataType::Date => 4,
            DataType::Bool => 1,
        }
    }

    /// True if values of this type can be summed/averaged.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Date => "DATE",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A runtime scalar value.
///
/// `Clone` is cheap: strings are reference-counted.
#[derive(Debug, Clone)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Date(i32),
    Bool(bool),
    /// SQL-style null; compares greater than every non-null value so sorts
    /// are total, and equals only itself in grouping (multiset semantics,
    /// consistent with SQL `GROUP BY`).
    Null,
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Null => None,
        }
    }

    /// Numeric view of the value, coercing `Int`/`Date` to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Date(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view, when the value is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean view, when the value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Rank used to order values of different types; gives the total order a
    /// deterministic cross-type component (needed for sorting heterogeneous
    /// columns that should never occur in well-typed plans, but keeps sort
    /// total regardless).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 1, // numeric values compare by magnitude
            Value::Date(_) => 2,
            Value::Str(_) => 3,
            Value::Null => 4,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "@{d}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => f.write_str("NULL"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Null, Null) => Ordering::Equal,
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                state.write_u8(1);
                // Hash ints through their float image so Int(2) and
                // Float(2.0) — which compare equal — hash identically.
                state.write_u64((*v as f64).to_bits());
            }
            Value::Float(v) => {
                state.write_u8(1);
                state.write_u64(v.to_bits());
            }
            Value::Str(s) => {
                // Strings hash through their canonical 64-bit image so a
                // dictionary-encoded column can replay this byte stream
                // from a precomputed per-entry hash (see `relalg::hash`).
                state.write_u8(3);
                state.write_u64(crate::hash::str_hash(s));
            }
            Value::Date(d) => {
                state.write_u8(2);
                state.write_i32(*d);
            }
            Value::Bool(b) => {
                state.write_u8(0);
                state.write_u8(*b as u8);
            }
            Value::Null => state.write_u8(4),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_cross_comparison_is_numeric() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(3.5) > Value::Int(3));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(hash_of(&Value::str("abc")), hash_of(&Value::str("abc")));
    }

    #[test]
    fn null_is_greatest_and_equal_to_itself() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null > Value::Int(i64::MAX));
        assert!(Value::Null > Value::str("zzz"));
    }

    #[test]
    fn nan_has_total_order() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(nan > Value::Float(f64::INFINITY));
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert!(Value::str("apple") < Value::str("banana"));
    }

    #[test]
    fn type_widths_are_positive() {
        for dt in [
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Date,
            DataType::Bool,
        ] {
            assert!(dt.estimated_width() > 0);
        }
    }

    #[test]
    fn display_round_trip_smoke() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::str("x").to_string(), "'x'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3i64).as_i64(), Some(3));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::from("s").data_type() == Some(DataType::Str));
        assert!(Value::Null.is_null());
    }
}
