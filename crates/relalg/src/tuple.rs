//! Tuples (rows) and multiset helpers.
//!
//! A relation with duplicates is a *multiset* of tuples (§3 of the paper uses
//! multiset relational algebra throughout). Tuples are plain value vectors
//! positioned against a schema; the helpers here implement bag equality and
//! bag difference, used both by the execution engine and by tests that check
//! incremental maintenance against recomputation.

use crate::types::Value;
use std::collections::HashMap;

/// A single row: values positionally aligned with a schema.
pub type Tuple = Vec<Value>;

/// Counts each distinct tuple in a multiset.
pub fn bag_counts(rows: &[Tuple]) -> HashMap<&[Value], i64> {
    let mut m: HashMap<&[Value], i64> = HashMap::with_capacity(rows.len());
    for r in rows {
        *m.entry(r.as_slice()).or_insert(0) += 1;
    }
    m
}

/// True if two multisets of tuples are equal (order-insensitive, duplicate
/// counts respected).
pub fn bag_eq(a: &[Tuple], b: &[Tuple]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    bag_counts(a) == bag_counts(b)
}

/// Multiset difference `a ∸ b` (monus): removes one occurrence from `a` per
/// occurrence in `b`; occurrences of `b` not present in `a` are ignored.
///
/// Single-allocation: the removal counts borrow `b`'s tuples directly (no
/// per-distinct-key `to_vec`), so the only new storage is the output.
pub fn bag_minus(a: &[Tuple], b: &[Tuple]) -> Vec<Tuple> {
    if b.is_empty() {
        return a.to_vec();
    }
    let mut remove = bag_counts(b);
    let mut out = Vec::with_capacity(a.len().saturating_sub(b.len()));
    for r in a {
        match remove.get_mut(r.as_slice()) {
            Some(c) if *c > 0 => *c -= 1,
            _ => out.push(r.clone()),
        }
    }
    out
}

/// Multiset union `a ⊎ b` (additive).
pub fn bag_union(a: &[Tuple], b: &[Tuple]) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

/// Approximate multiset equality: rows are matched in sorted order and
/// float values compared with relative tolerance `rel_tol`.
///
/// Incremental maintenance of floating-point aggregates (SUM/AVG) is exact
/// in the multiset algebra but reassociates additions, so maintained and
/// recomputed results may differ in the last few ulps; correctness checks
/// use this comparison for such views.
pub fn bag_eq_approx(a: &[Tuple], b: &[Tuple], rel_tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut sa: Vec<&Tuple> = a.iter().collect();
    let mut sb: Vec<&Tuple> = b.iter().collect();
    sa.sort();
    sb.sort();
    sa.iter().zip(&sb).all(|(ra, rb)| {
        ra.len() == rb.len()
            && ra.iter().zip(rb.iter()).all(|(x, y)| match (x, y) {
                (Value::Float(fx), Value::Float(fy)) => {
                    let scale = fx.abs().max(fy.abs()).max(1.0);
                    (fx - fy).abs() <= rel_tol * scale
                }
                _ => x == y,
            })
    })
}

/// Project a tuple onto the given positions.
pub fn project_tuple(t: &[Value], positions: &[usize]) -> Tuple {
    positions.iter().map(|&i| t[i].clone()).collect()
}

/// Concatenate two tuples (join output construction).
pub fn concat_tuples(a: &[Value], b: &[Value]) -> Tuple {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn bag_eq_respects_duplicates() {
        let a = vec![t(&[1]), t(&[1]), t(&[2])];
        let b = vec![t(&[1]), t(&[2]), t(&[1])];
        let c = vec![t(&[1]), t(&[2]), t(&[2])];
        assert!(bag_eq(&a, &b));
        assert!(!bag_eq(&a, &c));
    }

    #[test]
    fn bag_minus_removes_one_occurrence_per_match() {
        let a = vec![t(&[1]), t(&[1]), t(&[2])];
        let b = vec![t(&[1]), t(&[3])];
        let d = bag_minus(&a, &b);
        assert!(bag_eq(&d, &[t(&[1]), t(&[2])]));
    }

    #[test]
    fn bag_minus_of_self_is_empty() {
        let a = vec![t(&[1]), t(&[1]), t(&[2])];
        assert!(bag_minus(&a, &a).is_empty());
    }

    #[test]
    fn bag_union_is_additive() {
        let a = vec![t(&[1])];
        let b = vec![t(&[1]), t(&[2])];
        let u = bag_union(&a, &b);
        assert_eq!(u.len(), 3);
        let counts = bag_counts(&u);
        assert_eq!(counts[t(&[1]).as_slice()], 2);
    }

    #[test]
    fn approx_eq_tolerates_float_reassociation() {
        let a = vec![vec![Value::Int(1), Value::Float(0.1 + 0.2)]];
        let b = vec![vec![Value::Int(1), Value::Float(0.3)]];
        assert!(bag_eq_approx(&a, &b, 1e-9));
        let c = vec![vec![Value::Int(1), Value::Float(0.4)]];
        assert!(!bag_eq_approx(&a, &c, 1e-9));
        // Non-float columns stay exact.
        let d = vec![vec![Value::Int(2), Value::Float(0.3)]];
        assert!(!bag_eq_approx(&a, &d, 1e-9));
    }

    #[test]
    fn project_and_concat() {
        let row = t(&[10, 20, 30]);
        assert_eq!(project_tuple(&row, &[2, 0]), t(&[30, 10]));
        assert_eq!(concat_tuples(&t(&[1]), &t(&[2, 3])), t(&[1, 2, 3]));
    }
}
