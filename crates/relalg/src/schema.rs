//! Attribute identities and schemas.
//!
//! Every base-table column receives a globally unique [`AttrId`] when the
//! table is registered in the catalog; derived attributes (aggregate outputs)
//! receive fresh ids. Predicates, projections, and grouping lists refer to
//! attributes **by id, never by position**, so a logical expression keeps its
//! meaning under join reordering — the property the AND-OR DAG's
//! hashing-based duplicate detection and unification rely on (DESIGN.md §5.1).

use crate::types::DataType;
use std::fmt;

/// Globally unique attribute identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub id: AttrId,
    /// Qualified display name, e.g. `lineitem.l_orderkey` or `sum_revenue`.
    pub name: String,
    pub data_type: DataType,
}

/// An ordered list of attributes: the output shape of a (sub)expression.
///
/// Order matters for positional tuple layout at execution time; set-wise
/// equality (ignoring order) is what logical-property comparison uses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    pub fn new(attrs: Vec<Attribute>) -> Self {
        debug_assert!(
            {
                let mut ids: Vec<_> = attrs.iter().map(|a| a.id).collect();
                ids.sort_unstable();
                ids.windows(2).all(|w| w[0] != w[1])
            },
            "schema must not contain duplicate attribute ids"
        );
        Schema { attrs }
    }

    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Position of an attribute in the tuple layout.
    pub fn position_of(&self, id: AttrId) -> Option<usize> {
        self.attrs.iter().position(|a| a.id == id)
    }

    /// Attribute metadata by id.
    pub fn attr(&self, id: AttrId) -> Option<&Attribute> {
        self.attrs.iter().find(|a| a.id == id)
    }

    /// Attribute metadata by (qualified) name.
    pub fn attr_by_name(&self, name: &str) -> Option<&Attribute> {
        self.attrs.iter().find(|a| a.name == name)
    }

    /// True if this schema contains every attribute id in `ids`.
    pub fn contains_all(&self, ids: &[AttrId]) -> bool {
        ids.iter().all(|id| self.position_of(*id).is_some())
    }

    /// Ids in layout order.
    pub fn ids(&self) -> Vec<AttrId> {
        self.attrs.iter().map(|a| a.id).collect()
    }

    /// Estimated row width in bytes (sum of per-type widths), used by the
    /// block/buffer cost accounting.
    pub fn row_width(&self) -> usize {
        self.attrs
            .iter()
            .map(|a| a.data_type.estimated_width())
            .sum()
    }

    /// Schema of the concatenation of two inputs (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut attrs = self.attrs.clone();
        attrs.extend(other.attrs.iter().cloned());
        Schema::new(attrs)
    }

    /// Sub-schema restricted to `ids`, in the order given.
    pub fn select_ids(&self, ids: &[AttrId]) -> Schema {
        Schema::new(
            ids.iter()
                .map(|id| {
                    self.attr(*id)
                        .unwrap_or_else(|| panic!("attribute {id} not in schema"))
                        .clone()
                })
                .collect(),
        )
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", a.name, a.data_type)?;
        }
        write!(f, ")")
    }
}

/// Allocates fresh [`AttrId`]s. The catalog owns one; tests may own their own.
#[derive(Debug, Clone, Default)]
pub struct AttrAllocator {
    next: u32,
}

impl AttrAllocator {
    pub fn new() -> Self {
        Self::default()
    }

    /// An allocator that resumes after `next` ids were already handed out
    /// (recovery restores the persisted counter so fresh ids never collide
    /// with attributes loaded from a snapshot).
    pub fn starting_at(next: u32) -> Self {
        AttrAllocator { next }
    }

    pub fn fresh(&mut self) -> AttrId {
        let id = AttrId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids handed out so far.
    pub fn allocated(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(id: u32, name: &str, dt: DataType) -> Attribute {
        Attribute {
            id: AttrId(id),
            name: name.to_string(),
            data_type: dt,
        }
    }

    fn sample() -> Schema {
        Schema::new(vec![
            attr(0, "t.a", DataType::Int),
            attr(1, "t.b", DataType::Str),
            attr(2, "t.c", DataType::Float),
        ])
    }

    #[test]
    fn position_and_lookup() {
        let s = sample();
        assert_eq!(s.position_of(AttrId(1)), Some(1));
        assert_eq!(s.attr(AttrId(2)).unwrap().name, "t.c");
        assert_eq!(s.attr_by_name("t.a").unwrap().id, AttrId(0));
        assert!(s.position_of(AttrId(9)).is_none());
    }

    #[test]
    fn contains_all_checks_every_id() {
        let s = sample();
        assert!(s.contains_all(&[AttrId(0), AttrId(2)]));
        assert!(!s.contains_all(&[AttrId(0), AttrId(7)]));
    }

    #[test]
    fn row_width_sums_type_widths() {
        assert_eq!(sample().row_width(), 8 + 24 + 8);
    }

    #[test]
    fn concat_preserves_order() {
        let s = sample();
        let other = Schema::new(vec![attr(10, "u.x", DataType::Int)]);
        let joined = s.concat(&other);
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.attrs()[3].id, AttrId(10));
    }

    #[test]
    fn select_ids_reorders() {
        let s = sample();
        let sub = s.select_ids(&[AttrId(2), AttrId(0)]);
        assert_eq!(sub.ids(), vec![AttrId(2), AttrId(0)]);
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut alloc = AttrAllocator::new();
        let a = alloc.fresh();
        let b = alloc.fresh();
        assert_ne!(a, b);
        assert_eq!(alloc.allocated(), 2);
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn select_ids_panics_on_missing() {
        sample().select_ids(&[AttrId(42)]);
    }
}
