//! # mvmqo-relalg
//!
//! Multiset relational algebra substrate for the `mvmqo` reproduction of
//! *Materialized View Selection and Maintenance Using Multi-Query
//! Optimization* (Mistry, Roy, Ramamritham, Sudarshan — SIGMOD 2001).
//!
//! This crate provides everything the optimizer and executor need to talk
//! about data *logically*:
//!
//! * [`types`] — scalar values with a total order (multiset keys),
//! * [`mod@tuple`] — rows and bag (multiset) helpers,
//! * [`batch`] — columnar batches (struct-of-arrays + selection vectors)
//!   for the vectorized executor,
//! * [`schema`] — globally-unique attribute identities and schemas,
//! * [`expr`] — scalar expressions and canonical conjunctive predicates,
//! * [`agg`] — aggregate functions and incremental accumulators,
//! * [`logical`] — the logical operator tree views are written in,
//! * [`catalog`] — table definitions, keys, and base statistics,
//! * [`stats`] — cardinality estimation used by the cost model,
//! * [`codec`] — the self-describing binary encoding the durability layer
//!   uses for WAL records and snapshots.
//!
//! Nothing in this crate knows about DAGs, deltas, or plans; those live in
//! `mvmqo-core`.

pub mod agg;
pub mod batch;
pub mod catalog;
pub mod codec;
pub mod expr;
pub mod hash;
pub mod logical;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod types;

pub use agg::{AggFunc, AggSpec};
pub use batch::{Batch, Column, ColumnData, CompiledPredicate};
pub use catalog::{Catalog, ColumnSpec, ForeignKey, TableDef, TableId};
pub use codec::{CodecError, Dec, Enc};
pub use expr::{ArithOp, CmpOp, Predicate, ScalarExpr};
pub use logical::{LogicalExpr, ViewDef};
pub use schema::{AttrAllocator, AttrId, Attribute, Schema};
pub use stats::{ColStats, RelStats};
pub use tuple::Tuple;
pub use types::{DataType, Value};
