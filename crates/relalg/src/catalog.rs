//! Catalog: table definitions, keys, and base statistics.
//!
//! The catalog is the optimizer's source of truth for schemas and statistics
//! (§7.1: the cost model works from estimated statistics). It owns the global
//! [`AttrAllocator`] so every column in the database has a unique [`AttrId`].

use crate::schema::{AttrAllocator, AttrId, Attribute, Schema};
use crate::stats::{ColStats, RelStats};
use crate::types::DataType;
use std::collections::HashMap;
use std::fmt;

/// Identifies a base table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A declared foreign key: `child_attrs` (in this table) reference
/// `parent_attrs` (the parent's primary key). Used by the optimizer's
/// foreign-key pruning of empty differential joins (§5.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    pub child_attrs: Vec<AttrId>,
    pub parent_table: TableId,
    pub parent_attrs: Vec<AttrId>,
}

/// Definition of a base table.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub id: TableId,
    pub name: String,
    pub schema: Schema,
    /// Primary-key attributes (may be empty for pure multisets).
    pub primary_key: Vec<AttrId>,
    pub foreign_keys: Vec<ForeignKey>,
    /// Base statistics as loaded; the live row count may drift as updates
    /// are applied and is tracked by the storage layer.
    pub stats: RelStats,
}

impl TableDef {
    /// Attribute id of a column by (unqualified) name.
    pub fn attr(&self, column: &str) -> AttrId {
        let qualified = format!("{}.{}", self.name, column);
        self.schema
            .attr_by_name(&qualified)
            .unwrap_or_else(|| panic!("no column {qualified}"))
            .id
    }
}

/// Column description used when registering a table.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    pub name: &'static str,
    pub data_type: DataType,
    /// Estimated number of distinct values; defaults to the row count when
    /// `None` (key-like columns).
    pub distinct: Option<f64>,
    /// Numeric value range for range-selectivity estimation.
    pub range: Option<(f64, f64)>,
}

impl ColumnSpec {
    pub fn key(name: &'static str, data_type: DataType) -> Self {
        ColumnSpec {
            name,
            data_type,
            distinct: None,
            range: None,
        }
    }

    pub fn with_distinct(name: &'static str, data_type: DataType, distinct: f64) -> Self {
        ColumnSpec {
            name,
            data_type,
            distinct: Some(distinct),
            range: None,
        }
    }

    pub fn with_range(
        name: &'static str,
        data_type: DataType,
        distinct: f64,
        range: (f64, f64),
    ) -> Self {
        ColumnSpec {
            name,
            data_type,
            distinct: Some(distinct),
            range: Some(range),
        }
    }
}

/// The database catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableDef>,
    by_name: HashMap<String, TableId>,
    attr_alloc: AttrAllocator,
    /// Reverse map: attribute id → owning base table (base attributes only).
    attr_owner: HashMap<AttrId, TableId>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table with `row_count` estimated rows; returns its id.
    pub fn add_table(
        &mut self,
        name: &str,
        columns: Vec<ColumnSpec>,
        row_count: f64,
        primary_key: &[&str],
    ) -> TableId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate table name {name}"
        );
        let id = TableId(self.tables.len() as u32);
        let mut attrs = Vec::with_capacity(columns.len());
        let mut col_stats = HashMap::with_capacity(columns.len());
        for spec in &columns {
            let attr_id = self.attr_alloc.fresh();
            attrs.push(Attribute {
                id: attr_id,
                name: format!("{}.{}", name, spec.name),
                data_type: spec.data_type,
            });
            let distinct = spec.distinct.unwrap_or(row_count).max(1.0);
            col_stats.insert(
                attr_id,
                ColStats {
                    distinct,
                    range: spec.range,
                },
            );
            self.attr_owner.insert(attr_id, id);
        }
        let schema = Schema::new(attrs);
        let pk = primary_key
            .iter()
            .map(|c| {
                let qualified = format!("{name}.{c}");
                schema
                    .attr_by_name(&qualified)
                    .unwrap_or_else(|| panic!("pk column {qualified} missing"))
                    .id
            })
            .collect();
        let def = TableDef {
            id,
            name: name.to_string(),
            schema,
            primary_key: pk,
            foreign_keys: Vec::new(),
            stats: RelStats {
                rows: row_count,
                cols: col_stats,
            },
        };
        self.by_name.insert(name.to_string(), id);
        self.tables.push(def);
        id
    }

    /// Declare a foreign key `child.child_cols → parent (pk)`.
    pub fn add_foreign_key(&mut self, child: TableId, child_cols: &[&str], parent: TableId) {
        let child_attrs: Vec<AttrId> = {
            let cd = self.table(child);
            child_cols.iter().map(|c| cd.attr(c)).collect()
        };
        let parent_attrs = self.table(parent).primary_key.clone();
        assert_eq!(
            child_attrs.len(),
            parent_attrs.len(),
            "foreign key arity mismatch"
        );
        self.tables[child.0 as usize].foreign_keys.push(ForeignKey {
            child_attrs,
            parent_table: parent,
            parent_attrs,
        });
    }

    pub fn table(&self, id: TableId) -> &TableDef {
        &self.tables[id.0 as usize]
    }

    pub fn table_by_name(&self, name: &str) -> Option<&TableDef> {
        self.by_name.get(name).map(|id| self.table(*id))
    }

    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The base table owning a (base) attribute.
    pub fn owner_of(&self, attr: AttrId) -> Option<TableId> {
        self.attr_owner.get(&attr).copied()
    }

    /// Allocate a fresh derived attribute (aggregate outputs etc.).
    pub fn fresh_attr(&mut self) -> AttrId {
        self.attr_alloc.fresh()
    }

    /// True if `parent_attr = child_attr` is a declared FK edge with
    /// `parent_attr` on the referenced (PK) side. Used for the §5.3
    /// foreign-key emptiness pruning.
    pub fn is_fk_edge(&self, child_attr: AttrId, parent_attr: AttrId) -> bool {
        let Some(child_table) = self.owner_of(child_attr) else {
            return false;
        };
        self.table(child_table).foreign_keys.iter().any(|fk| {
            fk.child_attrs
                .iter()
                .zip(&fk.parent_attrs)
                .any(|(c, p)| *c == child_attr && *p == parent_attr)
        })
    }

    /// Number of attribute ids the allocator has handed out so far (the
    /// durability layer persists this alongside the table definitions).
    pub fn allocated_attrs(&self) -> u32 {
        self.attr_alloc.allocated()
    }

    /// Rebuild a catalog from persisted table definitions and the saved
    /// allocator position. The name and attribute-ownership indexes are
    /// derived from the definitions; `next_attr` must cover every base
    /// attribute id so post-recovery `fresh_attr` calls never collide.
    pub fn from_parts(tables: Vec<TableDef>, next_attr: u32) -> Result<Catalog, String> {
        let mut by_name = HashMap::with_capacity(tables.len());
        let mut attr_owner = HashMap::new();
        for (i, t) in tables.iter().enumerate() {
            if t.id.0 as usize != i {
                return Err(format!("table {} out of position", t.name));
            }
            if by_name.insert(t.name.clone(), t.id).is_some() {
                return Err(format!("duplicate table name {}", t.name));
            }
            for a in t.schema.attrs() {
                if a.id.0 >= next_attr {
                    return Err(format!(
                        "attribute {} of {} is beyond the allocator position {next_attr}",
                        a.id, t.name
                    ));
                }
                if attr_owner.insert(a.id, t.id).is_some() {
                    return Err(format!("attribute {} owned by two tables", a.id));
                }
            }
        }
        Ok(Catalog {
            tables,
            by_name,
            attr_alloc: AttrAllocator::starting_at(next_attr),
            attr_owner,
        })
    }

    /// Update the catalog's row-count estimate for a table (after refresh).
    pub fn set_row_count(&mut self, id: TableId, rows: f64) {
        let t = &mut self.tables[id.0 as usize];
        // Key-like columns scale with the table; simple proportional model.
        let ratio = if t.stats.rows > 0.0 {
            rows / t.stats.rows
        } else {
            1.0
        };
        for cs in t.stats.cols.values_mut() {
            if (cs.distinct - t.stats.rows).abs() < 1e-9 {
                cs.distinct = (cs.distinct * ratio).max(1.0);
            }
        }
        t.stats.rows = rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_catalog() -> (Catalog, TableId, TableId) {
        let mut c = Catalog::new();
        let parent = c.add_table(
            "dept",
            vec![
                ColumnSpec::key("dno", DataType::Int),
                ColumnSpec::with_distinct("city", DataType::Str, 10.0),
            ],
            100.0,
            &["dno"],
        );
        let child = c.add_table(
            "emp",
            vec![
                ColumnSpec::key("eno", DataType::Int),
                ColumnSpec::with_distinct("dno", DataType::Int, 100.0),
                ColumnSpec::with_range("sal", DataType::Float, 500.0, (0.0, 10_000.0)),
            ],
            1000.0,
            &["eno"],
        );
        c.add_foreign_key(child, &["dno"], parent);
        (c, parent, child)
    }

    #[test]
    fn attr_ids_are_globally_unique() {
        let (c, parent, child) = small_catalog();
        let mut all: Vec<AttrId> = c.table(parent).schema.ids();
        all.extend(c.table(child).schema.ids());
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn attr_lookup_by_column_name() {
        let (c, _, child) = small_catalog();
        let emp = c.table(child);
        let sal = emp.attr("sal");
        assert_eq!(emp.schema.attr(sal).unwrap().name, "emp.sal");
    }

    #[test]
    fn owner_of_maps_attr_to_table() {
        let (c, parent, child) = small_catalog();
        let dno = c.table(parent).attr("dno");
        assert_eq!(c.owner_of(dno), Some(parent));
        let eno = c.table(child).attr("eno");
        assert_eq!(c.owner_of(eno), Some(child));
    }

    #[test]
    fn fk_edge_detection_is_directional() {
        let (c, parent, child) = small_catalog();
        let emp_dno = c.table(child).attr("dno");
        let dept_dno = c.table(parent).attr("dno");
        assert!(c.is_fk_edge(emp_dno, dept_dno));
        assert!(!c.is_fk_edge(dept_dno, emp_dno));
    }

    #[test]
    fn key_columns_default_distinct_to_rowcount() {
        let (c, _, child) = small_catalog();
        let emp = c.table(child);
        let eno = emp.attr("eno");
        assert_eq!(emp.stats.cols[&eno].distinct, 1000.0);
    }

    #[test]
    fn set_row_count_scales_key_distincts() {
        let (mut c, _, child) = small_catalog();
        c.set_row_count(child, 2000.0);
        let emp = c.table(child);
        let eno = emp.attr("eno");
        assert_eq!(emp.stats.rows, 2000.0);
        assert_eq!(emp.stats.cols[&eno].distinct, 2000.0);
        // Non-key distinct unchanged.
        let dno = emp.attr("dno");
        assert_eq!(emp.stats.cols[&dno].distinct, 100.0);
    }

    #[test]
    fn fresh_attr_does_not_collide_with_base_attrs() {
        let (mut c, _, child) = small_catalog();
        let fresh = c.fresh_attr();
        assert!(c.table(child).schema.position_of(fresh).is_none());
        assert!(c.owner_of(fresh).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate table name")]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.add_table("t", vec![ColumnSpec::key("a", DataType::Int)], 1.0, &["a"]);
        c.add_table("t", vec![ColumnSpec::key("a", DataType::Int)], 1.0, &["a"]);
    }
}
