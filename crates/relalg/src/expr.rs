//! Scalar expressions and predicates.
//!
//! Expressions reference attributes by [`AttrId`], so the same predicate
//! object is valid against any equivalent subexpression regardless of join
//! order. Predicates are kept in conjunctive form wherever the optimizer
//! manipulates them: [`Predicate::conjuncts`] / [`Predicate::from_conjuncts`]
//! are the canonical split/merge, and conjunct sets are sorted so that
//! logically identical predicates hash identically (DAG unification depends
//! on this).

use crate::schema::{AttrId, Schema};
use crate::types::{DataType, Value};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison on two values using the total value order.
    pub fn eval(self, l: &Value, r: &Value) -> bool {
        self.holds(l.cmp(r))
    }

    /// Whether an already-computed ordering satisfies this comparison —
    /// the single truth table shared by row evaluation and the columnar
    /// compiled-predicate path.
    pub fn holds(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with operand sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators over numeric values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarExpr {
    /// Attribute reference.
    Col(AttrId),
    /// Literal constant.
    Lit(Value),
    /// Comparison producing a boolean.
    Cmp {
        op: CmpOp,
        lhs: Box<ScalarExpr>,
        rhs: Box<ScalarExpr>,
    },
    /// Arithmetic over numerics.
    Arith {
        op: ArithOp,
        lhs: Box<ScalarExpr>,
        rhs: Box<ScalarExpr>,
    },
    /// N-ary conjunction.
    And(Vec<ScalarExpr>),
    /// N-ary disjunction.
    Or(Vec<ScalarExpr>),
    /// Negation.
    Not(Box<ScalarExpr>),
}

impl ScalarExpr {
    pub fn col(id: AttrId) -> Self {
        ScalarExpr::Col(id)
    }

    pub fn lit(v: impl Into<Value>) -> Self {
        ScalarExpr::Lit(v.into())
    }

    pub fn cmp(op: CmpOp, lhs: ScalarExpr, rhs: ScalarExpr) -> Self {
        ScalarExpr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `col = col` equality — the canonical join conjunct.
    pub fn col_eq_col(a: AttrId, b: AttrId) -> Self {
        // Canonical operand order so the same join predicate hashes
        // identically however it was written.
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(lo), ScalarExpr::Col(hi))
    }

    /// `col <op> literal` — the canonical selection conjunct.
    pub fn col_cmp_lit(a: AttrId, op: CmpOp, v: impl Into<Value>) -> Self {
        ScalarExpr::cmp(op, ScalarExpr::Col(a), ScalarExpr::lit(v))
    }

    pub fn arith(op: ArithOp, lhs: ScalarExpr, rhs: ScalarExpr) -> Self {
        ScalarExpr::Arith {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// All attribute ids referenced anywhere in the expression.
    pub fn referenced_attrs(&self) -> Vec<AttrId> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_attrs(&self, out: &mut Vec<AttrId>) {
        match self {
            ScalarExpr::Col(id) => out.push(*id),
            ScalarExpr::Lit(_) => {}
            ScalarExpr::Cmp { lhs, rhs, .. } | ScalarExpr::Arith { lhs, rhs, .. } => {
                lhs.collect_attrs(out);
                rhs.collect_attrs(out);
            }
            ScalarExpr::And(es) | ScalarExpr::Or(es) => {
                for e in es {
                    e.collect_attrs(out);
                }
            }
            ScalarExpr::Not(e) => e.collect_attrs(out),
        }
    }

    /// Static result type; `None` if the expression is ill-typed against the
    /// schema (e.g. arithmetic on strings).
    pub fn result_type(&self, schema: &Schema) -> Option<DataType> {
        match self {
            ScalarExpr::Col(id) => schema.attr(*id).map(|a| a.data_type),
            ScalarExpr::Lit(v) => v.data_type(),
            ScalarExpr::Cmp { .. } => Some(DataType::Bool),
            ScalarExpr::Arith { lhs, rhs, .. } => {
                let l = lhs.result_type(schema)?;
                let r = rhs.result_type(schema)?;
                if !l.is_numeric() || !r.is_numeric() {
                    return None;
                }
                if l == DataType::Float || r == DataType::Float {
                    Some(DataType::Float)
                } else {
                    Some(DataType::Int)
                }
            }
            ScalarExpr::And(_) | ScalarExpr::Or(_) | ScalarExpr::Not(_) => Some(DataType::Bool),
        }
    }

    /// Evaluate against a tuple laid out by `schema`.
    ///
    /// Panics on references to attributes absent from the schema — that is a
    /// planner bug, not a data error.
    pub fn eval(&self, tuple: &[Value], schema: &Schema) -> Value {
        match self {
            ScalarExpr::Col(id) => {
                let pos = schema
                    .position_of(*id)
                    .unwrap_or_else(|| panic!("attribute {id} not in schema {schema}"));
                tuple[pos].clone()
            }
            ScalarExpr::Lit(v) => v.clone(),
            ScalarExpr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(tuple, schema);
                let r = rhs.eval(tuple, schema);
                if l.is_null() || r.is_null() {
                    // SQL three-valued logic collapsed to false for filters.
                    Value::Bool(false)
                } else {
                    Value::Bool(op.eval(&l, &r))
                }
            }
            ScalarExpr::Arith { op, lhs, rhs } => {
                let l = lhs.eval(tuple, schema);
                let r = rhs.eval(tuple, schema);
                eval_arith(*op, &l, &r)
            }
            ScalarExpr::And(es) => Value::Bool(
                es.iter()
                    .all(|e| e.eval(tuple, schema) == Value::Bool(true)),
            ),
            ScalarExpr::Or(es) => Value::Bool(
                es.iter()
                    .any(|e| e.eval(tuple, schema) == Value::Bool(true)),
            ),
            ScalarExpr::Not(e) => match e.eval(tuple, schema) {
                Value::Bool(b) => Value::Bool(!b),
                _ => Value::Bool(false),
            },
        }
    }
}

fn eval_arith(op: ArithOp, l: &Value, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    // Integer arithmetic stays integral; anything involving a float goes
    // through f64.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a / b)
                }
            }
        };
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => match op {
            ArithOp::Add => Value::Float(a + b),
            ArithOp::Sub => Value::Float(a - b),
            ArithOp::Mul => Value::Float(a * b),
            ArithOp::Div => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Float(a / b)
                }
            }
        },
        _ => Value::Null,
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Col(id) => write!(f, "{id}"),
            ScalarExpr::Lit(v) => write!(f, "{v}"),
            ScalarExpr::Cmp { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            ScalarExpr::Arith { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            ScalarExpr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Not(e) => write!(f, "NOT {e}"),
        }
    }
}

/// A boolean predicate maintained as a **sorted set of conjuncts**, the form
/// in which the optimizer pushes, splits, and re-combines selections.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Predicate {
    conjuncts: Vec<ScalarExpr>,
}

impl Predicate {
    /// The always-true predicate (empty conjunction).
    pub fn true_() -> Self {
        Predicate::default()
    }

    /// Build from one expression, flattening nested `And`s and sorting the
    /// conjuncts into canonical order.
    pub fn from_expr(e: ScalarExpr) -> Self {
        let mut cs = Vec::new();
        flatten_and(e, &mut cs);
        Predicate::from_conjuncts(cs)
    }

    /// Build from a conjunct list (flattens, sorts, dedups).
    pub fn from_conjuncts(cs: Vec<ScalarExpr>) -> Self {
        let mut flat = Vec::with_capacity(cs.len());
        for c in cs {
            flatten_and(c, &mut flat);
        }
        flat.sort();
        flat.dedup();
        Predicate { conjuncts: flat }
    }

    pub fn conjuncts(&self) -> &[ScalarExpr] {
        &self.conjuncts
    }

    pub fn is_true(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// All attributes referenced by any conjunct.
    pub fn referenced_attrs(&self) -> Vec<AttrId> {
        let mut out = Vec::new();
        for c in &self.conjuncts {
            c.collect_attrs(&mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Conjunction of two predicates.
    pub fn and(&self, other: &Predicate) -> Predicate {
        let mut cs = self.conjuncts.clone();
        cs.extend(other.conjuncts.iter().cloned());
        Predicate::from_conjuncts(cs)
    }

    /// Split conjuncts into (those fully covered by `attrs`, the rest).
    pub fn split_covered(&self, attrs: &[AttrId]) -> (Predicate, Predicate) {
        let mut covered = Vec::new();
        let mut rest = Vec::new();
        for c in &self.conjuncts {
            if c.referenced_attrs().iter().all(|a| attrs.contains(a)) {
                covered.push(c.clone());
            } else {
                rest.push(c.clone());
            }
        }
        (
            Predicate::from_conjuncts(covered),
            Predicate::from_conjuncts(rest),
        )
    }

    /// Equi-join key pairs `(a, b)` from conjuncts of the form `col = col`.
    pub fn equijoin_keys(&self) -> Vec<(AttrId, AttrId)> {
        let mut out = Vec::new();
        for c in &self.conjuncts {
            if let ScalarExpr::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } = c
            {
                if let (ScalarExpr::Col(a), ScalarExpr::Col(b)) = (lhs.as_ref(), rhs.as_ref()) {
                    out.push((*a, *b));
                }
            }
        }
        out
    }

    /// If the whole predicate is a single `col <op> literal` conjunct,
    /// return it — the pattern subsumption derivations look for.
    pub fn as_single_attr_range(&self) -> Option<(AttrId, CmpOp, Value)> {
        if self.conjuncts.len() != 1 {
            return None;
        }
        match &self.conjuncts[0] {
            ScalarExpr::Cmp { op, lhs, rhs } => match (lhs.as_ref(), rhs.as_ref()) {
                (ScalarExpr::Col(a), ScalarExpr::Lit(v)) => Some((*a, *op, v.clone())),
                (ScalarExpr::Lit(v), ScalarExpr::Col(a)) => Some((*a, op.flipped(), v.clone())),
                _ => None,
            },
            _ => None,
        }
    }

    /// Evaluate as a filter.
    pub fn matches(&self, tuple: &[Value], schema: &Schema) -> bool {
        self.conjuncts
            .iter()
            .all(|c| c.eval(tuple, schema) == Value::Bool(true))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true() {
            return f.write_str("TRUE");
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

fn flatten_and(e: ScalarExpr, out: &mut Vec<ScalarExpr>) {
    match e {
        ScalarExpr::And(es) => {
            for sub in es {
                flatten_and(sub, out);
            }
        }
        ScalarExpr::Lit(Value::Bool(true)) => {}
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrAllocator, Attribute};

    fn schema2() -> (Schema, AttrId, AttrId) {
        let mut alloc = AttrAllocator::new();
        let a = alloc.fresh();
        let b = alloc.fresh();
        let s = Schema::new(vec![
            Attribute {
                id: a,
                name: "t.a".into(),
                data_type: DataType::Int,
            },
            Attribute {
                id: b,
                name: "t.b".into(),
                data_type: DataType::Float,
            },
        ]);
        (s, a, b)
    }

    #[test]
    fn eval_comparison_and_arith() {
        let (s, a, b) = schema2();
        let row = vec![Value::Int(3), Value::Float(1.5)];
        let e = ScalarExpr::col_cmp_lit(a, CmpOp::Gt, 2i64);
        assert_eq!(e.eval(&row, &s), Value::Bool(true));
        let sum = ScalarExpr::arith(ArithOp::Add, ScalarExpr::Col(a), ScalarExpr::Col(b));
        assert_eq!(sum.eval(&row, &s), Value::Float(4.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        let (s, a, _) = schema2();
        let row = vec![Value::Int(3), Value::Float(0.0)];
        let e = ScalarExpr::arith(ArithOp::Div, ScalarExpr::Col(a), ScalarExpr::lit(0i64));
        assert_eq!(e.eval(&row, &s), Value::Null);
    }

    #[test]
    fn null_comparison_filters_out() {
        let (s, a, _) = schema2();
        let row = vec![Value::Null, Value::Float(1.0)];
        let e = ScalarExpr::col_cmp_lit(a, CmpOp::Eq, 1i64);
        assert_eq!(e.eval(&row, &s), Value::Bool(false));
    }

    #[test]
    fn predicate_canonicalizes_conjunct_order() {
        let (_, a, b) = schema2();
        let c1 = ScalarExpr::col_cmp_lit(a, CmpOp::Lt, 5i64);
        let c2 = ScalarExpr::col_cmp_lit(b, CmpOp::Gt, 1i64);
        let p1 = Predicate::from_conjuncts(vec![c1.clone(), c2.clone()]);
        let p2 = Predicate::from_conjuncts(vec![c2, c1]);
        assert_eq!(p1, p2);
    }

    #[test]
    fn nested_ands_flatten_and_dedup() {
        let (_, a, b) = schema2();
        let c1 = ScalarExpr::col_cmp_lit(a, CmpOp::Lt, 5i64);
        let c2 = ScalarExpr::col_cmp_lit(b, CmpOp::Gt, 1i64);
        let nested = ScalarExpr::And(vec![
            c1.clone(),
            ScalarExpr::And(vec![c2.clone(), c1.clone()]),
        ]);
        let p = Predicate::from_expr(nested);
        assert_eq!(p.conjuncts().len(), 2);
    }

    #[test]
    fn col_eq_col_is_canonical() {
        let (_, a, b) = schema2();
        assert_eq!(ScalarExpr::col_eq_col(a, b), ScalarExpr::col_eq_col(b, a));
    }

    #[test]
    fn split_covered_partitions_conjuncts() {
        let (_, a, b) = schema2();
        let p = Predicate::from_conjuncts(vec![
            ScalarExpr::col_cmp_lit(a, CmpOp::Lt, 5i64),
            ScalarExpr::col_eq_col(a, b),
        ]);
        let (covered, rest) = p.split_covered(&[a]);
        assert_eq!(covered.conjuncts().len(), 1);
        assert_eq!(rest.conjuncts().len(), 1);
    }

    #[test]
    fn equijoin_keys_extracted() {
        let (_, a, b) = schema2();
        let p = Predicate::from_expr(ScalarExpr::col_eq_col(a, b));
        assert_eq!(p.equijoin_keys(), vec![(a, b)]);
    }

    #[test]
    fn single_attr_range_detection_flips_sides() {
        let (_, a, _) = schema2();
        let p = Predicate::from_expr(ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::lit(10i64),
            ScalarExpr::Col(a),
        ));
        let (attr, op, v) = p.as_single_attr_range().unwrap();
        assert_eq!(attr, a);
        assert_eq!(op, CmpOp::Lt);
        assert_eq!(v, Value::Int(10));
    }

    #[test]
    fn matches_applies_all_conjuncts() {
        let (s, a, b) = schema2();
        let p = Predicate::from_conjuncts(vec![
            ScalarExpr::col_cmp_lit(a, CmpOp::Ge, 0i64),
            ScalarExpr::col_cmp_lit(b, CmpOp::Lt, 2.0),
        ]);
        assert!(p.matches(&[Value::Int(1), Value::Float(1.0)], &s));
        assert!(!p.matches(&[Value::Int(1), Value::Float(3.0)], &s));
    }

    #[test]
    fn result_type_rules() {
        let (s, a, b) = schema2();
        assert_eq!(ScalarExpr::Col(a).result_type(&s), Some(DataType::Int));
        assert_eq!(
            ScalarExpr::arith(ArithOp::Mul, ScalarExpr::Col(a), ScalarExpr::Col(b)).result_type(&s),
            Some(DataType::Float)
        );
        assert_eq!(
            ScalarExpr::col_cmp_lit(a, CmpOp::Eq, 1i64).result_type(&s),
            Some(DataType::Bool)
        );
        assert_eq!(
            ScalarExpr::arith(ArithOp::Add, ScalarExpr::lit("x"), ScalarExpr::Col(a))
                .result_type(&s),
            None
        );
    }
}
