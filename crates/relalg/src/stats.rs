//! Statistics and cardinality estimation.
//!
//! [`RelStats`] describes a (sub)expression result: estimated row count and
//! per-attribute column statistics. The derivation functions propagate
//! statistics through every logical operator; the optimizer calls them both
//! for full results and for differential results (the same rules apply — a
//! delta relation is just a smaller multiset with the same schema, §3).
//!
//! The estimation rules are the classical System-R style ones the paper's
//! cost model presumes: `1/V(A)` for equality, range fractions from min/max,
//! `1/max(V(A),V(B))` per equi-join key, and `min(Π V(gᵢ), |R|)` groups for
//! aggregation. They are deliberately simple — the experiments compare two
//! optimizers under the *same* model, so relative behaviour, not absolute
//! accuracy, is what matters.

use crate::expr::{CmpOp, Predicate, ScalarExpr};
use crate::schema::AttrId;
use std::collections::HashMap;

/// Default selectivity for predicates we cannot analyze.
pub const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;
/// Default equality selectivity without distinct-count information.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.01;

/// Per-attribute statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColStats {
    /// Estimated distinct values.
    pub distinct: f64,
    /// Numeric value range, when known.
    pub range: Option<(f64, f64)>,
}

impl ColStats {
    pub fn key_like(rows: f64) -> Self {
        ColStats {
            distinct: rows.max(1.0),
            range: None,
        }
    }
}

/// Statistics of one relation-valued result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RelStats {
    pub rows: f64,
    pub cols: HashMap<AttrId, ColStats>,
}

impl RelStats {
    pub fn empty() -> Self {
        RelStats {
            rows: 0.0,
            cols: HashMap::new(),
        }
    }

    /// Distinct count for an attribute, bounded by the row count; falls back
    /// to `rows * DEFAULT_EQ_SELECTIVITY⁻¹`-style heuristics via the default.
    pub fn distinct(&self, attr: AttrId) -> f64 {
        let d = self
            .cols
            .get(&attr)
            .map(|c| c.distinct)
            .unwrap_or(self.rows * DEFAULT_EQ_SELECTIVITY);
        d.clamp(1.0, self.rows.max(1.0))
    }

    /// Clamp all distinct counts to the current row count. Call after any
    /// derivation that reduced `rows`.
    fn renormalize(&mut self) {
        let cap = self.rows.max(1.0);
        for c in self.cols.values_mut() {
            if c.distinct > cap {
                c.distinct = cap;
            }
        }
    }

    /// Scale row count by `factor`, applying the standard assumption that
    /// distinct counts shrink no faster than row counts.
    pub fn scaled(&self, factor: f64) -> RelStats {
        let mut out = self.clone();
        out.rows = (self.rows * factor).max(0.0);
        out.renormalize();
        out
    }

    /// Approximate equality on row count and per-column distincts/ranges,
    /// with `eps` relative tolerance. An incremental statistics refresh
    /// uses this to decide whether a recomputed property actually moved
    /// (and so whether dependents must be re-costed).
    pub fn approx_eq(&self, other: &RelStats, eps: f64) -> bool {
        let close = |a: f64, b: f64| (a - b).abs() <= eps * a.abs().max(b.abs()).max(1.0);
        if !close(self.rows, other.rows) || self.cols.len() != other.cols.len() {
            return false;
        }
        self.cols.iter().all(|(a, c)| {
            other.cols.get(a).is_some_and(|o| {
                close(c.distinct, o.distinct)
                    && match (c.range, o.range) {
                        (None, None) => true,
                        (Some((l1, h1)), Some((l2, h2))) => close(l1, l2) && close(h1, h2),
                        _ => false,
                    }
            })
        })
    }
}

/// Selectivity of a single conjunct against `stats`.
fn conjunct_selectivity(stats: &RelStats, c: &ScalarExpr) -> f64 {
    if let ScalarExpr::Cmp { op, lhs, rhs } = c {
        match (lhs.as_ref(), rhs.as_ref()) {
            (ScalarExpr::Col(a), ScalarExpr::Lit(v)) => {
                return attr_lit_selectivity(stats, *a, *op, v.as_f64());
            }
            (ScalarExpr::Lit(v), ScalarExpr::Col(a)) => {
                return attr_lit_selectivity(stats, *a, op.flipped(), v.as_f64());
            }
            (ScalarExpr::Col(a), ScalarExpr::Col(b)) if *op == CmpOp::Eq => {
                // Same-relation column equality.
                return 1.0 / stats.distinct(*a).max(stats.distinct(*b));
            }
            _ => {}
        }
    }
    if let ScalarExpr::Or(es) = c {
        // Independence-based union bound.
        let mut keep = 1.0;
        for e in es {
            keep *= 1.0 - conjunct_selectivity(stats, e);
        }
        return (1.0 - keep).clamp(0.0, 1.0);
    }
    if let ScalarExpr::Not(e) = c {
        return (1.0 - conjunct_selectivity(stats, e)).clamp(0.0, 1.0);
    }
    DEFAULT_SELECTIVITY
}

fn attr_lit_selectivity(stats: &RelStats, a: AttrId, op: CmpOp, lit: Option<f64>) -> f64 {
    let d = stats.distinct(a);
    match op {
        CmpOp::Eq => 1.0 / d,
        CmpOp::Ne => 1.0 - 1.0 / d,
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let range = stats.cols.get(&a).and_then(|c| c.range);
            match (range, lit) {
                (Some((lo, hi)), Some(v)) if hi > lo => {
                    let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                    match op {
                        CmpOp::Lt | CmpOp::Le => frac.max(1.0 / d),
                        _ => (1.0 - frac).max(1.0 / d),
                    }
                }
                _ => DEFAULT_SELECTIVITY,
            }
        }
    }
}

/// Combined selectivity of a predicate (independence across conjuncts).
pub fn predicate_selectivity(stats: &RelStats, pred: &Predicate) -> f64 {
    let mut sel = 1.0;
    for c in pred.conjuncts() {
        sel *= conjunct_selectivity(stats, c);
    }
    sel.clamp(0.0, 1.0)
}

/// Statistics after a selection.
pub fn derive_select(input: &RelStats, pred: &Predicate) -> RelStats {
    let sel = predicate_selectivity(input, pred);
    let mut out = input.scaled(sel);
    // Tighten ranges / distincts for single-attribute conjuncts.
    for c in pred.conjuncts() {
        if let ScalarExpr::Cmp { op, lhs, rhs } = c {
            if let (ScalarExpr::Col(a), ScalarExpr::Lit(v)) = (lhs.as_ref(), rhs.as_ref()) {
                if let Some(cs) = out.cols.get_mut(a) {
                    match op {
                        CmpOp::Eq => {
                            cs.distinct = 1.0;
                            if let Some(x) = v.as_f64() {
                                cs.range = Some((x, x));
                            }
                        }
                        CmpOp::Lt | CmpOp::Le => {
                            if let (Some((lo, hi)), Some(x)) = (cs.range, v.as_f64()) {
                                cs.range = Some((lo, x.min(hi)));
                            }
                        }
                        CmpOp::Gt | CmpOp::Ge => {
                            if let (Some((lo, hi)), Some(x)) = (cs.range, v.as_f64()) {
                                cs.range = Some((x.max(lo), hi));
                            }
                        }
                        CmpOp::Ne => {}
                    }
                }
            }
        }
    }
    out.renormalize();
    out
}

/// Statistics after projecting onto `attrs` (multiset projection: row count
/// unchanged).
pub fn derive_project(input: &RelStats, attrs: &[AttrId]) -> RelStats {
    let mut cols = HashMap::with_capacity(attrs.len());
    for a in attrs {
        if let Some(c) = input.cols.get(a) {
            cols.insert(*a, c.clone());
        }
    }
    let mut out = RelStats {
        rows: input.rows,
        cols,
    };
    out.renormalize();
    out
}

/// Statistics after an inner join with predicate `pred` (conjuncts may mix
/// equi-join keys and residual filters).
pub fn derive_join(left: &RelStats, right: &RelStats, pred: &Predicate) -> RelStats {
    let mut cols = left.cols.clone();
    for (a, c) in &right.cols {
        cols.insert(*a, c.clone());
    }
    let cross = left.rows * right.rows;
    let mut sel = 1.0;
    let mut handled = 0usize;
    for (a, b) in pred.equijoin_keys() {
        let da = if left.cols.contains_key(&a) {
            left.distinct(a)
        } else {
            right.distinct(a)
        };
        let db = if right.cols.contains_key(&b) {
            right.distinct(b)
        } else {
            left.distinct(b)
        };
        sel *= 1.0 / da.max(db).max(1.0);
        handled += 1;
    }
    // Residual (non-equi-join) conjuncts use single-relation rules against
    // the combined stats.
    let combined = RelStats { rows: cross, cols };
    let residual = pred.conjuncts().len() - handled;
    let mut out_rows = cross * sel;
    if residual > 0 {
        for c in pred.conjuncts() {
            let is_key = matches!(
                c,
                ScalarExpr::Cmp { op: CmpOp::Eq, lhs, rhs }
                    if matches!((lhs.as_ref(), rhs.as_ref()), (ScalarExpr::Col(_), ScalarExpr::Col(_)))
            );
            if !is_key {
                out_rows *= conjunct_selectivity(&combined, c);
            }
        }
    }
    let mut out = RelStats {
        rows: out_rows.max(0.0),
        cols: combined.cols,
    };
    out.renormalize();
    out
}

/// Statistics after group-by aggregation: one row per group.
pub fn derive_aggregate(input: &RelStats, group_by: &[AttrId], agg_outs: &[AttrId]) -> RelStats {
    let groups = if input.rows <= 0.0 {
        0.0
    } else {
        let mut g_est = 1.0;
        for g in group_by {
            g_est *= input.distinct(*g);
        }
        g_est.min(input.rows).max(1.0)
    };
    let mut cols = HashMap::new();
    for g in group_by {
        if let Some(c) = input.cols.get(g) {
            let mut c = c.clone();
            c.distinct = c.distinct.min(groups);
            cols.insert(*g, c);
        }
    }
    for out_attr in agg_outs {
        cols.insert(
            *out_attr,
            ColStats {
                distinct: groups.max(1.0),
                range: None,
            },
        );
    }
    RelStats { rows: groups, cols }
}

/// Statistics after multiset union (additive).
pub fn derive_union(left: &RelStats, right: &RelStats) -> RelStats {
    let mut cols = HashMap::new();
    for (a, lc) in &left.cols {
        let distinct = match right.cols.get(a) {
            Some(rc) => (lc.distinct + rc.distinct) * 0.75, // overlap discount
            None => lc.distinct,
        };
        let range = match (lc.range, right.cols.get(a).and_then(|c| c.range)) {
            (Some((l1, h1)), Some((l2, h2))) => Some((l1.min(l2), h1.max(h2))),
            (r, None) => r,
            (None, r) => r,
        };
        cols.insert(*a, ColStats { distinct, range });
    }
    let mut out = RelStats {
        rows: left.rows + right.rows,
        cols,
    };
    out.renormalize();
    out
}

/// Statistics after multiset difference `left ∸ right`.
pub fn derive_minus(left: &RelStats, right: &RelStats) -> RelStats {
    let mut out = left.clone();
    out.rows = (left.rows - right.rows).max(0.0);
    out.renormalize();
    out
}

/// Statistics after duplicate elimination.
pub fn derive_distinct(input: &RelStats) -> RelStats {
    let mut d = 1.0;
    for c in input.cols.values() {
        d *= c.distinct.max(1.0);
        if d > input.rows {
            d = input.rows;
            break;
        }
    }
    let mut out = input.clone();
    out.rows = d
        .min(input.rows)
        .max(if input.rows > 0.0 { 1.0 } else { 0.0 });
    out.renormalize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;

    #[allow(clippy::type_complexity)]
    fn stats(rows: f64, entries: &[(u32, f64, Option<(f64, f64)>)]) -> RelStats {
        let mut cols = HashMap::new();
        for (id, d, r) in entries {
            cols.insert(
                AttrId(*id),
                ColStats {
                    distinct: *d,
                    range: *r,
                },
            );
        }
        RelStats { rows, cols }
    }

    #[test]
    fn equality_selectivity_is_one_over_distinct() {
        let s = stats(1000.0, &[(0, 50.0, None)]);
        let p = Predicate::from_expr(ScalarExpr::col_cmp_lit(AttrId(0), CmpOp::Eq, 7i64));
        let out = derive_select(&s, &p);
        assert!((out.rows - 20.0).abs() < 1e-6);
        assert_eq!(out.cols[&AttrId(0)].distinct, 1.0);
    }

    #[test]
    fn range_selectivity_uses_min_max() {
        let s = stats(1000.0, &[(0, 100.0, Some((0.0, 100.0)))]);
        let p = Predicate::from_expr(ScalarExpr::col_cmp_lit(AttrId(0), CmpOp::Lt, 25.0));
        let out = derive_select(&s, &p);
        assert!((out.rows - 250.0).abs() < 1.0);
        assert_eq!(out.cols[&AttrId(0)].range, Some((0.0, 25.0)));
    }

    #[test]
    fn conjunct_selectivities_multiply() {
        let s = stats(1000.0, &[(0, 10.0, None), (1, 20.0, None)]);
        let p = Predicate::from_conjuncts(vec![
            ScalarExpr::col_cmp_lit(AttrId(0), CmpOp::Eq, 1i64),
            ScalarExpr::col_cmp_lit(AttrId(1), CmpOp::Eq, 2i64),
        ]);
        let out = derive_select(&s, &p);
        assert!((out.rows - 5.0).abs() < 1e-6);
    }

    #[test]
    fn join_uses_max_distinct_rule() {
        let l = stats(1000.0, &[(0, 100.0, None)]);
        let r = stats(100.0, &[(1, 100.0, None)]);
        let p = Predicate::from_expr(ScalarExpr::col_eq_col(AttrId(0), AttrId(1)));
        let out = derive_join(&l, &r, &p);
        // 1000 * 100 / 100 = 1000 (FK-like join).
        assert!((out.rows - 1000.0).abs() < 1e-6);
        assert!(out.cols.contains_key(&AttrId(0)));
        assert!(out.cols.contains_key(&AttrId(1)));
    }

    #[test]
    fn join_residual_filter_applies() {
        let l = stats(1000.0, &[(0, 100.0, None)]);
        let r = stats(100.0, &[(1, 100.0, None), (2, 10.0, None)]);
        let p = Predicate::from_conjuncts(vec![
            ScalarExpr::col_eq_col(AttrId(0), AttrId(1)),
            ScalarExpr::col_cmp_lit(AttrId(2), CmpOp::Eq, 3i64),
        ]);
        let out = derive_join(&l, &r, &p);
        assert!((out.rows - 100.0).abs() < 1e-6);
    }

    #[test]
    fn aggregate_group_count_capped_by_rows() {
        let s = stats(100.0, &[(0, 1000.0, None)]);
        let out = derive_aggregate(&s, &[AttrId(0)], &[AttrId(9)]);
        assert!(out.rows <= 100.0);
        assert!(out.cols.contains_key(&AttrId(9)));
    }

    #[test]
    fn aggregate_of_empty_input_is_empty() {
        let s = stats(0.0, &[(0, 1.0, None)]);
        let out = derive_aggregate(&s, &[AttrId(0)], &[]);
        assert_eq!(out.rows, 0.0);
    }

    #[test]
    fn union_adds_rows_and_widens_ranges() {
        let l = stats(10.0, &[(0, 5.0, Some((0.0, 5.0)))]);
        let r = stats(20.0, &[(0, 10.0, Some((3.0, 9.0)))]);
        let out = derive_union(&l, &r);
        assert_eq!(out.rows, 30.0);
        assert_eq!(out.cols[&AttrId(0)].range, Some((0.0, 9.0)));
    }

    #[test]
    fn minus_saturates_at_zero() {
        let l = stats(10.0, &[]);
        let r = stats(25.0, &[]);
        assert_eq!(derive_minus(&l, &r).rows, 0.0);
    }

    #[test]
    fn project_drops_unlisted_columns() {
        let s = stats(50.0, &[(0, 5.0, None), (1, 6.0, None)]);
        let out = derive_project(&s, &[AttrId(1)]);
        assert_eq!(out.rows, 50.0);
        assert!(!out.cols.contains_key(&AttrId(0)));
        assert!(out.cols.contains_key(&AttrId(1)));
    }

    #[test]
    fn distinct_bounded_by_rows() {
        let s = stats(100.0, &[(0, 8.0, None), (1, 4.0, None)]);
        let out = derive_distinct(&s);
        assert!((out.rows - 32.0).abs() < 1e-6);
        let s2 = stats(10.0, &[(0, 8.0, None), (1, 4.0, None)]);
        assert_eq!(derive_distinct(&s2).rows, 10.0);
    }

    #[test]
    fn scaled_preserves_distinct_caps() {
        let s = stats(1000.0, &[(0, 900.0, None)]);
        let out = s.scaled(0.01);
        assert_eq!(out.rows, 10.0);
        assert!(out.cols[&AttrId(0)].distinct <= 10.0);
    }

    #[test]
    fn or_selectivity_union_bound() {
        let s = stats(1000.0, &[(0, 10.0, None)]);
        let or = ScalarExpr::Or(vec![
            ScalarExpr::col_cmp_lit(AttrId(0), CmpOp::Eq, 1i64),
            ScalarExpr::col_cmp_lit(AttrId(0), CmpOp::Eq, 2i64),
        ]);
        let p = Predicate::from_expr(or);
        let sel = predicate_selectivity(&s, &p);
        assert!((sel - 0.19).abs() < 1e-6);
    }
}
