//! Aggregate functions and incremental accumulators.
//!
//! The paper (§3.1.2, footnote 1) distinguishes *distributive* aggregates,
//! whose materialized results can be maintained from input deltas alone
//! (COUNT, SUM — with a tuple count to handle deletions — and AVG via
//! SUM/COUNT), from aggregates like MIN/MAX whose value under deletions may
//! require re-examining the group. [`AggFunc::removable`] captures that
//! distinction; the maintenance planner charges an affected-group recompute
//! when a non-removable aggregate sees deletions.

use crate::expr::ScalarExpr;
use crate::schema::AttrId;
use crate::types::{DataType, Value};
use std::fmt;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// True if deletions can be applied to a materialized result of this
    /// aggregate without consulting the base data (given a per-group count).
    pub fn removable(self) -> bool {
        matches!(self, AggFunc::Count | AggFunc::Sum | AggFunc::Avg)
    }

    /// Output type given the input expression type.
    pub fn result_type(self, input: DataType) -> DataType {
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum => input,
            AggFunc::Min | AggFunc::Max => input,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// One aggregate output column: `out_attr = func(input_expr)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggSpec {
    pub func: AggFunc,
    /// Argument expression; ignored (may be any) for COUNT(*).
    pub input: ScalarExpr,
    /// Fresh attribute id naming the aggregate output.
    pub out: AttrId,
}

impl AggSpec {
    pub fn new(func: AggFunc, input: ScalarExpr, out: AttrId) -> Self {
        AggSpec { func, input, out }
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}) AS {}", self.func, self.input, self.out)
    }
}

/// Running state for one aggregate within one group.
///
/// All functions track `count` so that (a) SUM can yield NULL/absent on empty
/// groups and (b) deletions know when a group disappears.
#[derive(Debug, Clone, PartialEq)]
pub struct Accumulator {
    func: AggFunc,
    count: i64,
    sum: f64,
    /// Whether any input so far was integral (so SUM can stay integral).
    all_int: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    pub fn new(func: AggFunc) -> Self {
        Accumulator {
            func,
            count: 0,
            sum: 0.0,
            all_int: true,
            min: None,
            max: None,
        }
    }

    /// Fold one input value in (an inserted tuple's argument).
    pub fn add(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        if !matches!(v, Value::Int(_)) {
            self.all_int = false;
        }
        match (&self.min, v) {
            (None, _) => self.min = Some(v.clone()),
            (Some(m), v) if v < m => self.min = Some(v.clone()),
            _ => {}
        }
        match (&self.max, v) {
            (None, _) => self.max = Some(v.clone()),
            (Some(m), v) if v > m => self.max = Some(v.clone()),
            _ => {}
        }
    }

    /// Remove one input value (a deleted tuple's argument). Only valid for
    /// removable aggregates — MIN/MAX removal must recompute the group.
    pub fn remove(&mut self, v: &Value) {
        debug_assert!(
            self.func.removable(),
            "remove() on non-removable aggregate {}",
            self.func
        );
        if v.is_null() {
            return;
        }
        self.count -= 1;
        if let Some(x) = v.as_f64() {
            self.sum -= x;
        }
    }

    /// Number of non-null inputs currently folded in.
    pub fn count(&self) -> i64 {
        self.count
    }

    /// True if the group has no remaining contributing tuples.
    pub fn is_empty(&self) -> bool {
        self.count <= 0
    }

    /// Current aggregate value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.all_int {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }

    /// Merge another accumulator (insert-side delta merge).
    pub fn merge(&mut self, other: &Accumulator) {
        debug_assert_eq!(self.func, other.func);
        self.count += other.count;
        self.sum += other.sum;
        self.all_int &= other.all_int;
        if let Some(m) = &other.min {
            if self.min.as_ref().map(|s| m < s).unwrap_or(true) {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if self.max.as_ref().map(|s| m > s).unwrap_or(true) {
                self.max = Some(m.clone());
            }
        }
    }

    /// Decompose into raw state for persistence:
    /// `(func, count, sum, all_int, min, max)`.
    #[allow(clippy::type_complexity)]
    pub fn to_parts(&self) -> (AggFunc, i64, f64, bool, Option<Value>, Option<Value>) {
        (
            self.func,
            self.count,
            self.sum,
            self.all_int,
            self.min.clone(),
            self.max.clone(),
        )
    }

    /// Reassemble from persisted state (inverse of [`Accumulator::to_parts`]).
    pub fn from_parts(
        func: AggFunc,
        count: i64,
        sum: f64,
        all_int: bool,
        min: Option<Value>,
        max: Option<Value>,
    ) -> Self {
        Accumulator {
            func,
            count,
            sum,
            all_int,
            min,
            max,
        }
    }

    /// Subtract another accumulator (delete-side delta merge); removable
    /// aggregates only.
    pub fn unmerge(&mut self, other: &Accumulator) {
        debug_assert!(self.func.removable());
        debug_assert_eq!(self.func, other.func);
        self.count -= other.count;
        self.sum -= other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sum_avg_roundtrip() {
        let mut c = Accumulator::new(AggFunc::Count);
        let mut s = Accumulator::new(AggFunc::Sum);
        let mut a = Accumulator::new(AggFunc::Avg);
        for v in [1i64, 2, 3] {
            c.add(&Value::Int(v));
            s.add(&Value::Int(v));
            a.add(&Value::Int(v));
        }
        assert_eq!(c.finish(), Value::Int(3));
        assert_eq!(s.finish(), Value::Int(6));
        assert_eq!(a.finish(), Value::Float(2.0));
    }

    #[test]
    fn removal_inverts_insertion() {
        let mut s = Accumulator::new(AggFunc::Sum);
        s.add(&Value::Int(5));
        s.add(&Value::Int(7));
        s.remove(&Value::Int(5));
        assert_eq!(s.finish(), Value::Int(7));
        s.remove(&Value::Int(7));
        assert!(s.is_empty());
    }

    #[test]
    fn nulls_do_not_contribute() {
        let mut c = Accumulator::new(AggFunc::Count);
        c.add(&Value::Null);
        c.add(&Value::Int(1));
        assert_eq!(c.finish(), Value::Int(1));
    }

    #[test]
    fn min_max_track_extremes() {
        let mut mn = Accumulator::new(AggFunc::Min);
        let mut mx = Accumulator::new(AggFunc::Max);
        for v in [3i64, 1, 2] {
            mn.add(&Value::Int(v));
            mx.add(&Value::Int(v));
        }
        assert_eq!(mn.finish(), Value::Int(1));
        assert_eq!(mx.finish(), Value::Int(3));
    }

    #[test]
    fn sum_promotes_to_float_on_float_input() {
        let mut s = Accumulator::new(AggFunc::Sum);
        s.add(&Value::Int(1));
        s.add(&Value::Float(0.5));
        assert_eq!(s.finish(), Value::Float(1.5));
    }

    #[test]
    fn merge_and_unmerge() {
        let mut a = Accumulator::new(AggFunc::Sum);
        a.add(&Value::Int(10));
        let mut b = Accumulator::new(AggFunc::Sum);
        b.add(&Value::Int(4));
        b.add(&Value::Int(6));
        a.merge(&b);
        assert_eq!(a.finish(), Value::Int(20));
        a.unmerge(&b);
        assert_eq!(a.finish(), Value::Int(10));
    }

    #[test]
    fn removable_classification() {
        assert!(AggFunc::Count.removable());
        assert!(AggFunc::Sum.removable());
        assert!(AggFunc::Avg.removable());
        assert!(!AggFunc::Min.removable());
        assert!(!AggFunc::Max.removable());
    }

    #[test]
    fn empty_group_values() {
        assert_eq!(Accumulator::new(AggFunc::Count).finish(), Value::Int(0));
        assert_eq!(Accumulator::new(AggFunc::Sum).finish(), Value::Null);
        assert_eq!(Accumulator::new(AggFunc::Min).finish(), Value::Null);
    }

    #[test]
    fn result_types() {
        assert_eq!(AggFunc::Count.result_type(DataType::Str), DataType::Int);
        assert_eq!(AggFunc::Sum.result_type(DataType::Int), DataType::Int);
        assert_eq!(AggFunc::Avg.result_type(DataType::Int), DataType::Float);
        assert_eq!(AggFunc::Min.result_type(DataType::Date), DataType::Date);
    }
}
