//! Logical relational-algebra expressions.
//!
//! A [`LogicalExpr`] is the tree form in which views and queries enter the
//! optimizer (Figure 1(a) of the paper); the AND-OR DAG is built from it.
//! All operators use multiset semantics.

use crate::agg::AggSpec;
use crate::catalog::{Catalog, TableId};
use crate::expr::Predicate;
use crate::schema::{AttrId, Attribute, Schema};
use crate::stats;
use crate::stats::RelStats;
use std::fmt;
use std::sync::Arc;

/// A logical expression tree. `Arc` children keep clones cheap when the DAG
/// builder walks shared structures.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalExpr {
    /// Scan of a base table.
    Scan { table: TableId },
    /// Multiset selection σ_pred.
    Select {
        input: Arc<LogicalExpr>,
        predicate: Predicate,
    },
    /// Multiset projection (no duplicate elimination) onto attribute ids.
    Project {
        input: Arc<LogicalExpr>,
        attrs: Vec<AttrId>,
    },
    /// Inner join with predicate (conjunction of equi-join keys and residual
    /// filters).
    Join {
        left: Arc<LogicalExpr>,
        right: Arc<LogicalExpr>,
        predicate: Predicate,
    },
    /// Group-by aggregation.
    Aggregate {
        input: Arc<LogicalExpr>,
        group_by: Vec<AttrId>,
        aggs: Vec<AggSpec>,
    },
    /// Additive multiset union.
    UnionAll {
        left: Arc<LogicalExpr>,
        right: Arc<LogicalExpr>,
    },
    /// Multiset difference (monus).
    Minus {
        left: Arc<LogicalExpr>,
        right: Arc<LogicalExpr>,
    },
    /// Duplicate elimination.
    Distinct { input: Arc<LogicalExpr> },
}

impl LogicalExpr {
    pub fn scan(table: TableId) -> Arc<Self> {
        Arc::new(LogicalExpr::Scan { table })
    }

    pub fn select(input: Arc<Self>, predicate: Predicate) -> Arc<Self> {
        Arc::new(LogicalExpr::Select { input, predicate })
    }

    pub fn project(input: Arc<Self>, attrs: Vec<AttrId>) -> Arc<Self> {
        Arc::new(LogicalExpr::Project { input, attrs })
    }

    pub fn join(left: Arc<Self>, right: Arc<Self>, predicate: Predicate) -> Arc<Self> {
        Arc::new(LogicalExpr::Join {
            left,
            right,
            predicate,
        })
    }

    pub fn aggregate(input: Arc<Self>, group_by: Vec<AttrId>, aggs: Vec<AggSpec>) -> Arc<Self> {
        Arc::new(LogicalExpr::Aggregate {
            input,
            group_by,
            aggs,
        })
    }

    pub fn union_all(left: Arc<Self>, right: Arc<Self>) -> Arc<Self> {
        Arc::new(LogicalExpr::UnionAll { left, right })
    }

    pub fn minus(left: Arc<Self>, right: Arc<Self>) -> Arc<Self> {
        Arc::new(LogicalExpr::Minus { left, right })
    }

    pub fn distinct(input: Arc<Self>) -> Arc<Self> {
        Arc::new(LogicalExpr::Distinct { input })
    }

    /// Output schema, derived bottom-up from the catalog.
    pub fn schema(&self, catalog: &Catalog) -> Schema {
        match self {
            LogicalExpr::Scan { table } => catalog.table(*table).schema.clone(),
            LogicalExpr::Select { input, .. } | LogicalExpr::Distinct { input } => {
                input.schema(catalog)
            }
            LogicalExpr::Project { input, attrs } => input.schema(catalog).select_ids(attrs),
            LogicalExpr::Join { left, right, .. } => {
                left.schema(catalog).concat(&right.schema(catalog))
            }
            LogicalExpr::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema(catalog);
                let mut attrs: Vec<Attribute> = group_by
                    .iter()
                    .map(|g| {
                        in_schema
                            .attr(*g)
                            .unwrap_or_else(|| panic!("group attr {g} missing"))
                            .clone()
                    })
                    .collect();
                for a in aggs {
                    let in_ty = a
                        .input
                        .result_type(&in_schema)
                        .unwrap_or(crate::types::DataType::Int);
                    attrs.push(Attribute {
                        id: a.out,
                        name: format!("{}_{}", a.func, a.out),
                        data_type: a.func.result_type(in_ty),
                    });
                }
                Schema::new(attrs)
            }
            LogicalExpr::UnionAll { left, .. } | LogicalExpr::Minus { left, .. } => {
                left.schema(catalog)
            }
        }
    }

    /// Estimated statistics, derived bottom-up. `base` supplies statistics
    /// for base tables (so callers can present either catalog-time or
    /// post-update states).
    #[allow(clippy::only_used_in_recursion)] // keeps signature symmetric with schema()
    pub fn derive_stats(&self, catalog: &Catalog, base: &dyn Fn(TableId) -> RelStats) -> RelStats {
        match self {
            LogicalExpr::Scan { table } => base(*table),
            LogicalExpr::Select { input, predicate } => {
                stats::derive_select(&input.derive_stats(catalog, base), predicate)
            }
            LogicalExpr::Project { input, attrs } => {
                stats::derive_project(&input.derive_stats(catalog, base), attrs)
            }
            LogicalExpr::Join {
                left,
                right,
                predicate,
            } => stats::derive_join(
                &left.derive_stats(catalog, base),
                &right.derive_stats(catalog, base),
                predicate,
            ),
            LogicalExpr::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let outs: Vec<AttrId> = aggs.iter().map(|a| a.out).collect();
                stats::derive_aggregate(&input.derive_stats(catalog, base), group_by, &outs)
            }
            LogicalExpr::UnionAll { left, right } => stats::derive_union(
                &left.derive_stats(catalog, base),
                &right.derive_stats(catalog, base),
            ),
            LogicalExpr::Minus { left, right } => stats::derive_minus(
                &left.derive_stats(catalog, base),
                &right.derive_stats(catalog, base),
            ),
            LogicalExpr::Distinct { input } => {
                stats::derive_distinct(&input.derive_stats(catalog, base))
            }
        }
    }

    /// All base tables referenced (sorted, deduplicated).
    pub fn base_tables(&self) -> Vec<TableId> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_tables(&self, out: &mut Vec<TableId>) {
        match self {
            LogicalExpr::Scan { table } => out.push(*table),
            LogicalExpr::Select { input, .. }
            | LogicalExpr::Project { input, .. }
            | LogicalExpr::Distinct { input }
            | LogicalExpr::Aggregate { input, .. } => input.collect_tables(out),
            LogicalExpr::Join { left, right, .. }
            | LogicalExpr::UnionAll { left, right }
            | LogicalExpr::Minus { left, right } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }

    /// Validate attribute references bottom-up; returns a description of the
    /// first violation found.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), String> {
        match self {
            LogicalExpr::Scan { .. } => Ok(()),
            LogicalExpr::Select { input, predicate } => {
                input.validate(catalog)?;
                let schema = input.schema(catalog);
                let refs = predicate.referenced_attrs();
                if !schema.contains_all(&refs) {
                    return Err(format!(
                        "selection predicate {predicate} references attributes outside {schema}"
                    ));
                }
                Ok(())
            }
            LogicalExpr::Project { input, attrs } => {
                input.validate(catalog)?;
                let schema = input.schema(catalog);
                if !schema.contains_all(attrs) {
                    return Err("projection references attributes outside input".into());
                }
                Ok(())
            }
            LogicalExpr::Join {
                left,
                right,
                predicate,
            } => {
                left.validate(catalog)?;
                right.validate(catalog)?;
                let schema = left.schema(catalog).concat(&right.schema(catalog));
                if !schema.contains_all(&predicate.referenced_attrs()) {
                    return Err(format!(
                        "join predicate {predicate} references attributes outside inputs"
                    ));
                }
                Ok(())
            }
            LogicalExpr::Aggregate {
                input, group_by, ..
            } => {
                input.validate(catalog)?;
                let schema = input.schema(catalog);
                if !schema.contains_all(group_by) {
                    return Err("group-by attributes missing from input".into());
                }
                Ok(())
            }
            LogicalExpr::UnionAll { left, right } | LogicalExpr::Minus { left, right } => {
                left.validate(catalog)?;
                right.validate(catalog)?;
                let ls = left.schema(catalog);
                let rs = right.schema(catalog);
                if ls.ids() != rs.ids() {
                    return Err("union/minus inputs have different schemas".into());
                }
                Ok(())
            }
            LogicalExpr::Distinct { input } => input.validate(catalog),
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            LogicalExpr::Scan { table } => writeln!(f, "{pad}Scan {table}"),
            LogicalExpr::Select { input, predicate } => {
                writeln!(f, "{pad}Select [{predicate}]")?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalExpr::Project { input, attrs } => {
                write!(f, "{pad}Project [")?;
                for (i, a) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f, "]")?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalExpr::Join {
                left,
                right,
                predicate,
            } => {
                writeln!(f, "{pad}Join [{predicate}]")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            LogicalExpr::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                write!(f, "{pad}Aggregate [")?;
                for (i, g) in group_by.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, " | ")?;
                for (i, a) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f, "]")?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalExpr::UnionAll { left, right } => {
                writeln!(f, "{pad}UnionAll")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            LogicalExpr::Minus { left, right } => {
                writeln!(f, "{pad}Minus")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            LogicalExpr::Distinct { input } => {
                writeln!(f, "{pad}Distinct")?;
                input.fmt_indented(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for LogicalExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// A named view definition: the unit the maintenance optimizer works on.
#[derive(Debug, Clone)]
pub struct ViewDef {
    pub name: String,
    pub expr: Arc<LogicalExpr>,
}

impl ViewDef {
    pub fn new(name: impl Into<String>, expr: Arc<LogicalExpr>) -> Self {
        ViewDef {
            name: name.into(),
            expr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggFunc, AggSpec};
    use crate::catalog::{Catalog, ColumnSpec};
    use crate::expr::{CmpOp, ScalarExpr};
    use crate::types::DataType;

    fn setup() -> (Catalog, TableId, TableId) {
        let mut c = Catalog::new();
        let dept = c.add_table(
            "dept",
            vec![
                ColumnSpec::key("dno", DataType::Int),
                ColumnSpec::with_distinct("city", DataType::Str, 10.0),
            ],
            100.0,
            &["dno"],
        );
        let emp = c.add_table(
            "emp",
            vec![
                ColumnSpec::key("eno", DataType::Int),
                ColumnSpec::with_distinct("dno", DataType::Int, 100.0),
                ColumnSpec::with_range("sal", DataType::Float, 500.0, (0.0, 10_000.0)),
            ],
            1000.0,
            &["eno"],
        );
        c.add_foreign_key(emp, &["dno"], dept);
        (c, dept, emp)
    }

    fn emp_dept_join(c: &Catalog, dept: TableId, emp: TableId) -> Arc<LogicalExpr> {
        let e_dno = c.table(emp).attr("dno");
        let d_dno = c.table(dept).attr("dno");
        LogicalExpr::join(
            LogicalExpr::scan(emp),
            LogicalExpr::scan(dept),
            Predicate::from_expr(ScalarExpr::col_eq_col(e_dno, d_dno)),
        )
    }

    #[test]
    fn schema_of_join_concatenates() {
        let (c, dept, emp) = setup();
        let j = emp_dept_join(&c, dept, emp);
        let s = j.schema(&c);
        assert_eq!(s.len(), 5);
        assert!(s.attr_by_name("emp.sal").is_some());
        assert!(s.attr_by_name("dept.city").is_some());
    }

    #[test]
    fn stats_of_fk_join_match_child_cardinality() {
        let (c, dept, emp) = setup();
        let j = emp_dept_join(&c, dept, emp);
        let stats = j.derive_stats(&c, &|t| c.table(t).stats.clone());
        assert!((stats.rows - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn aggregate_schema_includes_group_and_outputs() {
        let (mut c, dept, emp) = setup();
        let sal = c.table(emp).attr("sal");
        let dno = c.table(emp).attr("dno");
        let out = c.fresh_attr();
        let j = emp_dept_join(&c, dept, emp);
        let agg = LogicalExpr::aggregate(
            j,
            vec![dno],
            vec![AggSpec::new(AggFunc::Sum, ScalarExpr::Col(sal), out)],
        );
        let s = agg.schema(&c);
        assert_eq!(s.len(), 2);
        assert_eq!(s.attrs()[1].id, out);
        assert_eq!(s.attrs()[1].data_type, DataType::Float);
    }

    #[test]
    fn base_tables_deduplicated_and_sorted() {
        let (c, dept, emp) = setup();
        let j = emp_dept_join(&c, dept, emp);
        let self_union = LogicalExpr::union_all(j.clone(), j);
        assert_eq!(self_union.base_tables(), vec![dept, emp]);
    }

    #[test]
    fn validate_catches_bad_predicate() {
        let (mut c, dept, emp) = setup();
        let stray = c.fresh_attr();
        let bad = LogicalExpr::select(
            LogicalExpr::scan(dept),
            Predicate::from_expr(ScalarExpr::col_cmp_lit(stray, CmpOp::Eq, 1i64)),
        );
        assert!(bad.validate(&c).is_err());
        let ok = emp_dept_join(&c, dept, emp);
        assert!(ok.validate(&c).is_ok());
    }

    #[test]
    fn validate_catches_union_schema_mismatch() {
        let (c, dept, emp) = setup();
        let bad = LogicalExpr::union_all(LogicalExpr::scan(dept), LogicalExpr::scan(emp));
        assert!(bad.validate(&c).is_err());
    }

    #[test]
    fn select_stats_shrink_rows() {
        let (c, _, emp) = setup();
        let sal = c.table(emp).attr("sal");
        let sel = LogicalExpr::select(
            LogicalExpr::scan(emp),
            Predicate::from_expr(ScalarExpr::col_cmp_lit(sal, CmpOp::Lt, 1000.0)),
        );
        let stats = sel.derive_stats(&c, &|t| c.table(t).stats.clone());
        assert!(stats.rows < 200.0 && stats.rows > 50.0);
    }

    #[test]
    fn display_renders_tree() {
        let (c, dept, emp) = setup();
        let j = emp_dept_join(&c, dept, emp);
        let rendered = j.to_string();
        assert!(rendered.contains("Join"));
        assert!(rendered.contains("Scan"));
    }
}
