//! Columnar batches: the vectorized executor's data representation.
//!
//! A [`Batch`] is a struct-of-arrays multiset: one typed [`Column`] per
//! schema attribute plus an optional *selection vector* mapping logical row
//! order onto physical positions. Filters and projections update the
//! selection or reorder columns without touching values; only operators
//! that genuinely create new rows (join output, union, aggregation) gather
//! cells. `from_rows`/`to_rows` bridge to the storage layer's row
//! representation at plan boundaries.
//!
//! Hashing and comparison at a position replicate [`Value`] semantics
//! exactly (numeric `Int`/`Float` cross-equality, NULL greatest and equal
//! only to itself) so a borrowed-key hash table built over columns agrees
//! with the row-at-a-time reference executor.

use crate::expr::{CmpOp, Predicate, ScalarExpr};
use crate::hash::{str_hash, u64_map_with_capacity, U64Map};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::types::{DataType, Value};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Interned string dictionary backing [`ColumnData::Dict`] columns.
///
/// Entries are unique (interning dedups), each carries its precomputed
/// [`str_hash`] image, and an internal hash index makes `intern`/`code_of`
/// O(1) amortized. The dictionary sits behind an `Arc` on the column, so
/// gathers and clones share it; mutation (interning during append) clones
/// it copy-on-write only when actually shared.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<Arc<str>>,
    hashes: Vec<u64>,
    /// `str_hash` → codes with that hash (collision bucket).
    index: U64Map<Vec<u32>>,
}

impl Dictionary {
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The string behind `code`.
    pub fn value(&self, code: u32) -> &Arc<str> {
        &self.values[code as usize]
    }

    /// Precomputed [`str_hash`] of the string behind `code`.
    pub fn hash(&self, code: u32) -> u64 {
        self.hashes[code as usize]
    }

    /// All entries, in code order.
    pub fn values(&self) -> &[Arc<str>] {
        &self.values
    }

    /// The code of `s`, if interned. Because entries are unique, equal
    /// codes ⇔ equal strings for codes of the same dictionary.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        let h = str_hash(s);
        self.index
            .get(&h)?
            .iter()
            .copied()
            .find(|&c| &*self.values[c as usize] == s)
    }

    /// Intern `s`, returning its (possibly new) code.
    pub fn intern(&mut self, s: &str) -> u32 {
        let h = str_hash(s);
        let bucket = self.index.entry(h).or_default();
        if let Some(&c) = bucket.iter().find(|&&c| &*self.values[c as usize] == s) {
            return c;
        }
        let c = u32::try_from(self.values.len()).expect("dictionary overflow");
        bucket.push(c);
        self.values.push(Arc::from(s));
        self.hashes.push(h);
        c
    }
}

/// Physical storage of one column's values.
///
/// Typed vectors are the fast path; [`ColumnData::Dict`] stores strings as
/// `u32` codes into a shared interned [`Dictionary`] so string-keyed
/// hashing, equality, and grouping run as integer loops;
/// [`ColumnData::Mixed`] is the safety net for columns whose runtime
/// values stray from the declared type (e.g. integral SUM outputs flowing
/// through a FLOAT schema slot) and keeps semantics identical to row
/// execution.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<Arc<str>>),
    Date(Vec<i32>),
    Bool(Vec<bool>),
    Dict {
        codes: Vec<u32>,
        dict: Arc<Dictionary>,
    },
    Mixed(Vec<Value>),
}

impl ColumnData {
    fn new(dt: DataType) -> ColumnData {
        match dt {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
        }
    }

    fn with_capacity(dt: DataType, n: usize) -> ColumnData {
        match dt {
            DataType::Int => ColumnData::Int(Vec::with_capacity(n)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(n)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(n)),
            DataType::Date => ColumnData::Date(Vec::with_capacity(n)),
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(n)),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Dict { codes, .. } => codes.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// Borrow the string at `i` when this is a string-bearing payload
    /// (`Str` or `Dict`), regardless of representation.
    fn str_ref(&self, i: usize) -> Option<&str> {
        match self {
            ColumnData::Str(v) => Some(&v[i]),
            ColumnData::Dict { codes, dict } => Some(dict.value(codes[i])),
            _ => None,
        }
    }

    /// Consume the payload into owned [`Value`]s. Only the `Str` and
    /// `Mixed` arms gain anything from consuming (their `Arc<str>`s /
    /// values move out instead of cloning); the primitive payloads are
    /// `Copy`, so they share [`ColumnData::to_mixed`]'s conversion.
    fn into_values(self, nulls: Option<Vec<bool>>) -> Vec<Value> {
        match self {
            ColumnData::Str(v) => {
                let null_at = |i: usize| nulls.as_ref().is_some_and(|n| n[i]);
                v.into_iter()
                    .enumerate()
                    .map(|(i, x)| {
                        if null_at(i) {
                            Value::Null
                        } else {
                            Value::Str(x)
                        }
                    })
                    .collect()
            }
            ColumnData::Dict { codes, dict } => {
                let null_at = |i: usize| nulls.as_ref().is_some_and(|n| n[i]);
                codes
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| {
                        if null_at(i) {
                            Value::Null
                        } else {
                            Value::Str(Arc::clone(dict.value(c)))
                        }
                    })
                    .collect()
            }
            ColumnData::Mixed(v) => v,
            other => other.to_mixed(nulls.as_deref()),
        }
    }

    /// Convert the typed payload to the `Mixed` fallback (type drift).
    fn to_mixed(&self, nulls: Option<&[bool]>) -> Vec<Value> {
        let null_at = |i: usize| nulls.is_some_and(|n| n[i]);
        let get = |i: usize| -> Value {
            if null_at(i) {
                Value::Null
            } else {
                match self {
                    ColumnData::Int(v) => Value::Int(v[i]),
                    ColumnData::Float(v) => Value::Float(v[i]),
                    ColumnData::Str(v) => Value::Str(v[i].clone()),
                    ColumnData::Date(v) => Value::Date(v[i]),
                    ColumnData::Bool(v) => Value::Bool(v[i]),
                    ColumnData::Dict { codes, dict } => {
                        Value::Str(Arc::clone(dict.value(codes[i])))
                    }
                    ColumnData::Mixed(v) => v[i].clone(),
                }
            }
        };
        (0..self.len()).map(get).collect()
    }
}

/// One column: typed values plus an optional null mask (`true` = NULL).
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    nulls: Option<Vec<bool>>,
}

impl Column {
    /// An empty column of declared type `dt`.
    pub fn new(dt: DataType) -> Column {
        Column {
            data: ColumnData::new(dt),
            nulls: None,
        }
    }

    pub fn with_capacity(dt: DataType, n: usize) -> Column {
        Column {
            data: ColumnData::with_capacity(dt, n),
            nulls: None,
        }
    }

    /// Reassemble a column from its physical parts (the durability codec's
    /// decode path). The mask, when present, must cover every position;
    /// `Mixed` columns carry NULLs inline and never take a mask.
    pub fn from_parts(data: ColumnData, nulls: Option<Vec<bool>>) -> Column {
        if let Some(mask) = &nulls {
            assert_eq!(mask.len(), data.len(), "null mask length mismatch");
            assert!(
                !matches!(data, ColumnData::Mixed(_)),
                "Mixed columns carry NULLs inline"
            );
        }
        Column { data, nulls }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The physical payload (typed vectors), for columnar kernels that want
    /// direct vector access instead of per-position [`Column::value`] calls.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null mask, if any position is NULL (`true` = NULL). `Mixed`
    /// columns carry NULLs inline and report `None` here.
    pub fn null_mask(&self) -> Option<&[bool]> {
        self.nulls.as_deref()
    }

    /// Consume the column into owned values (moves `Arc<str>`s out rather
    /// than cloning them).
    pub fn into_values(self) -> Vec<Value> {
        self.data.into_values(self.nulls)
    }

    pub fn is_null(&self, i: usize) -> bool {
        match &self.data {
            ColumnData::Mixed(v) => v[i].is_null(),
            _ => self.nulls.as_ref().is_some_and(|n| n[i]),
        }
    }

    fn set_null_tail(&mut self) {
        let len = self.data.len();
        let nulls = self.nulls.get_or_insert_with(|| vec![false; len - 1]);
        // Pad for values appended while the mask did not exist yet.
        nulls.resize(len, false);
        nulls[len - 1] = true;
    }

    /// Append one value, demoting the column to `Mixed` if the value does
    /// not fit the physical type.
    pub fn push(&mut self, v: &Value) {
        match (&mut self.data, v) {
            (ColumnData::Int(c), Value::Int(x)) => c.push(*x),
            (ColumnData::Float(c), Value::Float(x)) => c.push(*x),
            (ColumnData::Str(c), Value::Str(x)) => c.push(x.clone()),
            (ColumnData::Date(c), Value::Date(x)) => c.push(*x),
            (ColumnData::Bool(c), Value::Bool(x)) => c.push(*x),
            (ColumnData::Dict { codes, dict }, Value::Str(x)) => {
                codes.push(Arc::make_mut(dict).intern(x));
            }
            (ColumnData::Mixed(c), v) => c.push(v.clone()),
            (data, Value::Null) if !matches!(data, ColumnData::Mixed(_)) => {
                // NULL in a typed column: default payload + mask bit.
                match data {
                    ColumnData::Int(c) => c.push(0),
                    ColumnData::Float(c) => c.push(0.0),
                    ColumnData::Str(c) => c.push(Arc::from("")),
                    ColumnData::Date(c) => c.push(0),
                    ColumnData::Bool(c) => c.push(false),
                    ColumnData::Dict { codes, dict } => {
                        codes.push(Arc::make_mut(dict).intern(""));
                    }
                    ColumnData::Mixed(_) => unreachable!(),
                }
                self.set_null_tail();
                return;
            }
            (data, v) => {
                // Type drift: demote to Mixed and retry.
                let mixed = data.to_mixed(self.nulls.as_deref());
                *data = ColumnData::Mixed(mixed);
                self.nulls = None;
                if let ColumnData::Mixed(c) = data {
                    c.push(v.clone());
                }
                return;
            }
        }
        if let Some(n) = self.nulls.as_mut() {
            n.push(false);
        }
    }

    /// Materialize the value at physical position `i`.
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Dict { codes, dict } => Value::Str(Arc::clone(dict.value(codes[i]))),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Hash the value at `i` exactly as [`Value::hash`] would (so `Int(2)`
    /// and `Float(2.0)` collide, NULL has its own tag) — the contract the
    /// borrowed-key hash join relies on. Strings hash through their
    /// canonical [`str_hash`] image, which `Dict` columns replay from the
    /// precomputed per-entry hash without touching string bytes.
    pub fn hash_value<H: Hasher>(&self, i: usize, state: &mut H) {
        if self.is_null(i) {
            state.write_u8(4);
            return;
        }
        match &self.data {
            ColumnData::Int(v) => {
                state.write_u8(1);
                state.write_u64((v[i] as f64).to_bits());
            }
            ColumnData::Float(v) => {
                state.write_u8(1);
                state.write_u64(v[i].to_bits());
            }
            ColumnData::Str(v) => {
                state.write_u8(3);
                state.write_u64(str_hash(&v[i]));
            }
            ColumnData::Dict { codes, dict } => {
                state.write_u8(3);
                state.write_u64(dict.hash(codes[i]));
            }
            ColumnData::Date(v) => {
                state.write_u8(2);
                state.write_i32(v[i]);
            }
            ColumnData::Bool(v) => {
                state.write_u8(0);
                state.write_u8(v[i] as u8);
            }
            ColumnData::Mixed(v) => v[i].hash(state),
        }
    }

    /// Compare positions across columns with [`Value`] total-order
    /// semantics, without materializing values on the typed fast paths.
    pub fn cmp_at(&self, i: usize, other: &Column, j: usize) -> Ordering {
        match (self.is_null(i), other.is_null(j)) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            (false, false) => {}
        }
        if let (Some(a), Some(b)) = (self.data.str_ref(i), other.data.str_ref(j)) {
            // Covers every Str/Dict combination in one arm.
            return a.cmp(b);
        }
        match (&self.data, &other.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a[i].cmp(&b[j]),
            (ColumnData::Float(a), ColumnData::Float(b)) => a[i].total_cmp(&b[j]),
            (ColumnData::Int(a), ColumnData::Float(b)) => (a[i] as f64).total_cmp(&b[j]),
            (ColumnData::Float(a), ColumnData::Int(b)) => a[i].total_cmp(&(b[j] as f64)),
            (ColumnData::Date(a), ColumnData::Date(b)) => a[i].cmp(&b[j]),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a[i].cmp(&b[j]),
            _ => self.value(i).cmp(&other.value(j)),
        }
    }

    /// Equality with [`Value`] semantics (`Int`/`Float` numeric equality,
    /// NULL equal only to NULL — the grouping behaviour). Two columns
    /// sharing one dictionary compare by integer code alone.
    pub fn eq_at(&self, i: usize, other: &Column, j: usize) -> bool {
        if let (ColumnData::Dict { codes: a, dict: da }, ColumnData::Dict { codes: b, dict: db }) =
            (&self.data, &other.data)
        {
            if Arc::ptr_eq(da, db) {
                // Interned entries are unique, so code equality ⇔ string
                // equality; only the NULL mask still matters.
                let (ni, nj) = (self.is_null(i), other.is_null(j));
                return if ni || nj { ni && nj } else { a[i] == b[j] };
            }
        }
        self.cmp_at(i, other, j) == Ordering::Equal
    }

    /// Compare a position against a constant.
    pub fn cmp_value(&self, i: usize, v: &Value) -> Ordering {
        match (&self.data, v) {
            _ if self.is_null(i) || v.is_null() => {
                if self.is_null(i) && v.is_null() {
                    Ordering::Equal
                } else if self.is_null(i) {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (ColumnData::Int(a), Value::Int(b)) => a[i].cmp(b),
            (ColumnData::Float(a), Value::Float(b)) => a[i].total_cmp(b),
            (ColumnData::Int(a), Value::Float(b)) => (a[i] as f64).total_cmp(b),
            (ColumnData::Float(a), Value::Int(b)) => a[i].total_cmp(&(*b as f64)),
            (ColumnData::Str(a), Value::Str(b)) => a[i].as_ref().cmp(b.as_ref()),
            (ColumnData::Dict { codes, dict }, Value::Str(b)) => {
                dict.value(codes[i]).as_ref().cmp(b.as_ref())
            }
            (ColumnData::Date(a), Value::Date(b)) => a[i].cmp(b),
            (ColumnData::Bool(a), Value::Bool(b)) => a[i].cmp(b),
            _ => self.value(i).cmp(v),
        }
    }

    /// New column holding the values at `idx`, in order.
    pub fn gather(&self, idx: &[u32]) -> Column {
        let mut out = Column {
            data: match &self.data {
                ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
                ColumnData::Float(v) => {
                    ColumnData::Float(idx.iter().map(|&i| v[i as usize]).collect())
                }
                ColumnData::Str(v) => {
                    ColumnData::Str(idx.iter().map(|&i| v[i as usize].clone()).collect())
                }
                ColumnData::Date(v) => {
                    ColumnData::Date(idx.iter().map(|&i| v[i as usize]).collect())
                }
                ColumnData::Bool(v) => {
                    ColumnData::Bool(idx.iter().map(|&i| v[i as usize]).collect())
                }
                ColumnData::Dict { codes, dict } => ColumnData::Dict {
                    codes: idx.iter().map(|&i| codes[i as usize]).collect(),
                    dict: Arc::clone(dict),
                },
                ColumnData::Mixed(v) => {
                    ColumnData::Mixed(idx.iter().map(|&i| v[i as usize].clone()).collect())
                }
            },
            nulls: None,
        };
        if let Some(n) = &self.nulls {
            if idx.iter().any(|&i| n[i as usize]) {
                out.nulls = Some(idx.iter().map(|&i| n[i as usize]).collect());
            }
        }
        out
    }

    /// Append `other`'s values at `idx` onto this column (union building).
    pub fn append_gather(&mut self, other: &Column, idx: &[u32]) {
        // Same physical representation and no incoming nulls: bulk extend.
        let no_nulls = other.nulls.is_none() && self.nulls.is_none();
        match (&mut self.data, &other.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) if no_nulls => {
                a.extend(idx.iter().map(|&i| b[i as usize]))
            }
            (ColumnData::Float(a), ColumnData::Float(b)) if no_nulls => {
                a.extend(idx.iter().map(|&i| b[i as usize]))
            }
            (ColumnData::Str(a), ColumnData::Str(b)) if no_nulls => {
                a.extend(idx.iter().map(|&i| b[i as usize].clone()))
            }
            (ColumnData::Date(a), ColumnData::Date(b)) if no_nulls => {
                a.extend(idx.iter().map(|&i| b[i as usize]))
            }
            (ColumnData::Bool(a), ColumnData::Bool(b)) if no_nulls => {
                a.extend(idx.iter().map(|&i| b[i as usize]))
            }
            (
                ColumnData::Dict { codes, dict },
                ColumnData::Dict {
                    codes: bc,
                    dict: bd,
                },
            ) if no_nulls => {
                if Arc::ptr_eq(dict, bd) {
                    codes.extend(idx.iter().map(|&i| bc[i as usize]));
                } else {
                    let d = Arc::make_mut(dict);
                    codes.extend(idx.iter().map(|&i| d.intern(bd.value(bc[i as usize]))));
                }
            }
            (ColumnData::Dict { codes, dict }, ColumnData::Str(b)) if no_nulls => {
                let d = Arc::make_mut(dict);
                codes.extend(idx.iter().map(|&i| d.intern(&b[i as usize])));
            }
            _ => {
                for &i in idx {
                    self.push(&other.value(i as usize));
                }
            }
        }
    }

    /// The code vector and dictionary, when this column is dict-encoded —
    /// the hook for code-space kernels (equality filters, group-by,
    /// MIN/MAX) in higher layers.
    pub fn dict(&self) -> Option<(&[u32], &Arc<Dictionary>)> {
        match &self.data {
            ColumnData::Dict { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Dictionary-encode a plain `Str` column; any other representation
    /// (including already-encoded) is returned as a clone. NULL positions
    /// intern the empty string and keep their mask bit.
    pub fn dict_encode(&self) -> Column {
        let ColumnData::Str(v) = &self.data else {
            return self.clone();
        };
        let mut dict = Dictionary::default();
        let codes = v.iter().map(|s| dict.intern(s)).collect();
        Column {
            data: ColumnData::Dict {
                codes,
                dict: Arc::new(dict),
            },
            nulls: self.nulls.clone(),
        }
    }

    /// Decode a dict column back to plain `Str` values (identity clone for
    /// every other representation) — the transparent fallback for code that
    /// wants direct `Arc<str>` vectors.
    pub fn decode_dict(&self) -> Column {
        let ColumnData::Dict { codes, dict } = &self.data else {
            return self.clone();
        };
        Column {
            data: ColumnData::Str(codes.iter().map(|&c| Arc::clone(dict.value(c))).collect()),
            nulls: self.nulls.clone(),
        }
    }
}

/// A columnar multiset with an optional selection vector.
///
/// Columns are reference-counted, so cloning a batch (e.g. serving a
/// cached scan) and projecting are O(width), never O(cells).
/// Logical equality: same length and the same [`Value`] at every position,
/// regardless of physical representation (a `Mixed` column equals a typed
/// one holding the same values). This is what the durability round-trip
/// tests pin the codec against.
impl PartialEq for Column {
    fn eq(&self, other: &Column) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.value(i) == other.value(i))
    }
}

#[derive(Debug, Clone)]
pub struct Batch {
    schema: Schema,
    columns: Vec<Arc<Column>>,
    /// Physical row count of the columns.
    rows: usize,
    /// Logical order as physical positions; `None` = identity over all rows.
    sel: Option<Vec<u32>>,
}

impl Batch {
    /// An empty batch of `schema`.
    pub fn empty(schema: Schema) -> Batch {
        let columns = schema
            .attrs()
            .iter()
            .map(|a| Arc::new(Column::new(a.data_type)))
            .collect();
        Batch {
            schema,
            columns,
            rows: 0,
            sel: None,
        }
    }

    /// Build from row-major tuples (the storage-boundary bridge).
    pub fn from_rows(schema: Schema, rows: &[Tuple]) -> Batch {
        let mut columns: Vec<Column> = schema
            .attrs()
            .iter()
            .map(|a| Column::with_capacity(a.data_type, rows.len()))
            .collect();
        for row in rows {
            debug_assert_eq!(row.len(), schema.len());
            for (c, v) in columns.iter_mut().zip(row) {
                c.push(v);
            }
        }
        Batch {
            schema,
            columns: columns.into_iter().map(Arc::new).collect(),
            rows: rows.len(),
            sel: None,
        }
    }

    /// Build from already-columnar data (all columns the same length).
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Batch {
        let rows = columns.first().map_or(0, Column::len);
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        debug_assert_eq!(columns.len(), schema.len());
        Batch {
            schema,
            columns: columns.into_iter().map(Arc::new).collect(),
            rows,
            sel: None,
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn column(&self, i: usize) -> &Column {
        self.columns[i].as_ref()
    }

    /// Logical (selected) row count.
    pub fn num_rows(&self) -> usize {
        self.sel.as_ref().map_or(self.rows, Vec::len)
    }

    /// Physical position of logical row `i`.
    pub fn physical(&self, i: usize) -> u32 {
        self.sel.as_ref().map_or(i as u32, |s| s[i])
    }

    /// Physical positions in logical order.
    pub fn positions(&self) -> Vec<u32> {
        match &self.sel {
            Some(s) => s.clone(),
            None => (0..self.rows as u32).collect(),
        }
    }

    /// Replace the selection vector (positions must be < physical rows).
    pub fn set_selection(&mut self, sel: Vec<u32>) {
        debug_assert!(sel.iter().all(|&i| (i as usize) < self.rows));
        self.sel = Some(sel);
    }

    /// Keep only logical rows whose *physical* position satisfies `keep` —
    /// a zero-copy filter.
    pub fn retain(&mut self, mut keep: impl FnMut(u32) -> bool) {
        let sel = match self.sel.take() {
            Some(s) => s.into_iter().filter(|&p| keep(p)).collect(),
            None => (0..self.rows as u32).filter(|&p| keep(p)).collect(),
        };
        self.sel = Some(sel);
    }

    /// Zero-copy filter by a compiled predicate: the selection vector is
    /// rebuilt, values are never moved. `scratch` is a reusable row buffer
    /// for non-columnar conjuncts.
    ///
    /// Equality conjuncts against dict-encoded string columns run in code
    /// space: the literal is resolved to a code once, then the scan is a
    /// `u32` compare per row with no string bytes touched.
    pub fn filter(&mut self, pred: &CompiledPredicate, scratch: &mut Vec<Value>) {
        let rows = self.rows;
        let mut sel = self.sel.take();
        let mut slow: Vec<&Conjunct> = Vec::new();
        for c in &pred.conjuncts {
            if let Conjunct::ColLit {
                col,
                op: CmpOp::Eq,
                lit: Value::Str(s),
            } = c
            {
                if let Some((codes, dict)) = self.columns[*col].dict() {
                    let target = dict.code_of(s);
                    let nulls = self.columns[*col].null_mask();
                    let keep = |p: u32| {
                        let i = p as usize;
                        target == Some(codes[i]) && !nulls.is_some_and(|n| n[i])
                    };
                    sel = Some(match sel.take() {
                        Some(s) => s.into_iter().filter(|&p| keep(p)).collect(),
                        None => (0..rows as u32).filter(|&p| keep(p)).collect(),
                    });
                    continue;
                }
            }
            slow.push(c);
        }
        if !slow.is_empty() || sel.is_none() {
            let columns = &self.columns;
            let schema = &self.schema;
            let mut test = |p: u32| {
                let mut filled = false;
                slow.iter()
                    .all(|c| c.holds_at(columns, schema, p, scratch, &mut filled))
            };
            sel = Some(match sel.take() {
                Some(s) => s.into_iter().filter(|&p| test(p)).collect(),
                None => (0..rows as u32).filter(|&p| test(p)).collect(),
            });
        }
        self.sel = sel;
    }

    /// Fill `scratch` with the physical row `phys` (reusable row buffer for
    /// general predicate/aggregate expressions).
    pub fn write_row(&self, phys: u32, scratch: &mut Vec<Value>) {
        scratch.clear();
        scratch.extend(self.columns.iter().map(|c| c.value(phys as usize)));
    }

    /// Materialize all logical rows as tuples.
    pub fn to_rows(&self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.num_rows());
        for i in 0..self.num_rows() {
            let p = self.physical(i) as usize;
            out.push(self.columns.iter().map(|c| c.value(p)).collect());
        }
        out
    }

    /// Materialize one logical row as a tuple (columnar point read; avoids
    /// building the full row view to sample a handful of rows).
    pub fn tuple_at(&self, i: usize) -> Tuple {
        self.tuple_at_physical(self.physical(i))
    }

    /// Materialize the row at a *physical* position (point read by a
    /// position returned from e.g. [`Batch::counts`] or an index probe).
    pub fn tuple_at_physical(&self, phys: u32) -> Tuple {
        let p = phys as usize;
        self.columns.iter().map(|c| c.value(p)).collect()
    }

    /// Materialize, consuming the batch. Unlike [`Batch::to_rows`], dense
    /// uniquely-owned columns are *drained*: values (including `Arc<str>`s
    /// and `Mixed` payloads) move out instead of being cloned per cell.
    /// Shared or selection-bearing batches fall back to the copying path.
    pub fn into_rows(self) -> Vec<Tuple> {
        if self.sel.is_some() {
            return self.to_rows();
        }
        let width = self.columns.len();
        let mut rows: Vec<Tuple> = (0..self.rows).map(|_| Vec::with_capacity(width)).collect();
        for col in self.columns {
            let col = Arc::try_unwrap(col).unwrap_or_else(|shared| (*shared).clone());
            for (row, v) in rows.iter_mut().zip(col.into_values()) {
                row.push(v);
            }
        }
        rows
    }

    /// Reorder/subset columns to `positions` (zero-copy: column handles
    /// move or are reference-shared). `schema` is the target schema;
    /// `positions[k]` is the source column for target column `k`.
    pub fn project(self, schema: Schema, positions: &[usize]) -> Batch {
        debug_assert_eq!(schema.len(), positions.len());
        let columns: Vec<Arc<Column>> = positions
            .iter()
            .map(|&p| Arc::clone(&self.columns[p]))
            .collect();
        Batch {
            schema,
            columns,
            rows: self.rows,
            sel: self.sel,
        }
    }

    /// Reorder columns so the batch is laid out by `to` (same attribute
    /// multiset assumed for shared ids; extra source columns are dropped).
    pub fn align(self, to: &Schema) -> Batch {
        if self.schema.ids() == to.ids() {
            return self;
        }
        let positions: Vec<usize> = to
            .ids()
            .iter()
            .map(|a| {
                self.schema
                    .position_of(*a)
                    .unwrap_or_else(|| panic!("attribute {a} missing during alignment"))
            })
            .collect();
        self.project(to.clone(), &positions)
    }

    /// Compact the selection away, gathering into dense columns.
    pub fn compact(mut self) -> Batch {
        match self.sel.take() {
            None => self,
            Some(sel) => self.gather_physical(&sel),
        }
    }

    /// Append another batch of the same schema (multiset union).
    pub fn append(&mut self, other: &Batch) {
        debug_assert_eq!(self.schema.ids(), other.schema.ids());
        // Our own selection must be materialized before appending.
        if self.sel.is_some() {
            let compacted = std::mem::replace(self, Batch::empty(Schema::default())).compact();
            *self = compacted;
        }
        let idx = other.positions();
        for (mine, theirs) in self.columns.iter_mut().zip(&other.columns) {
            Arc::make_mut(mine).append_gather(theirs, &idx);
        }
        self.rows += idx.len();
    }

    /// Append row-major tuples (storage delta application). Like
    /// [`Batch::append`], any selection is compacted first so the appended
    /// values land densely.
    pub fn append_rows(&mut self, rows: &[Tuple]) {
        if rows.is_empty() {
            return;
        }
        if self.sel.is_some() {
            let compacted = std::mem::replace(self, Batch::empty(Schema::default())).compact();
            *self = compacted;
        }
        for row in rows {
            debug_assert_eq!(row.len(), self.columns.len());
            for (col, v) in self.columns.iter_mut().zip(row) {
                Arc::make_mut(col).push(v);
            }
        }
        self.rows += rows.len();
    }

    /// Logical positions of `self` surviving the multiset difference
    /// `self ∸ other` (one occurrence removed per matching `other` row).
    /// Keys are hashed and compared *by column position* — neither side is
    /// materialized as rows. `other` must share this batch's attribute ids.
    pub fn minus_positions(&self, other: &Batch) -> Vec<u32> {
        debug_assert_eq!(self.schema.ids(), other.schema.ids());
        let cols: Vec<usize> = (0..self.schema.len()).collect();
        if other.num_rows() == 0 {
            return self.positions();
        }
        // Bucket on the cheap-to-hash columns only (string hashing
        // dominates wide rows); this hash is internal to the operation, so
        // any consistent choice is correct — candidates are confirmed by
        // comparing *all* columns. Fall back to every column when the
        // schema is all-strings.
        let hash_cols: Vec<usize> = {
            let non_str: Vec<usize> = self
                .schema
                .attrs()
                .iter()
                .enumerate()
                .filter(|(_, a)| a.data_type != crate::types::DataType::Str)
                .map(|(i, _)| i)
                .collect();
            if non_str.is_empty() {
                cols.clone()
            } else {
                non_str
            }
        };
        // Remaining-removal counts per distinct `other` row, keyed by hash
        // with collision buckets of (representative position, count).
        let mut remove: U64Map<Vec<(u32, i64)>> = u64_map_with_capacity(other.num_rows());
        for i in 0..other.num_rows() {
            let phys = other.physical(i);
            let h = other.hash_keys(phys, &hash_cols);
            let bucket = remove.entry(h).or_default();
            match bucket
                .iter_mut()
                .find(|(rep, _)| other.keys_eq(*rep, &cols, other, phys, &cols))
            {
                Some((_, c)) => *c += 1,
                None => bucket.push((phys, 1)),
            }
        }
        let mut keep = Vec::with_capacity(self.num_rows().saturating_sub(other.num_rows()));
        for i in 0..self.num_rows() {
            let phys = self.physical(i);
            let h = self.hash_keys(phys, &hash_cols);
            let removed = remove.get_mut(&h).is_some_and(|bucket| {
                bucket
                    .iter_mut()
                    .find(|(rep, c)| *c > 0 && other.keys_eq(*rep, &cols, self, phys, &cols))
                    .map(|(_, c)| *c -= 1)
                    .is_some()
            });
            if !removed {
                keep.push(phys);
            }
        }
        keep
    }

    /// Columnar multiset difference `self ∸ other` (monus): the surviving
    /// rows, gathered into a dense batch. The columnar counterpart of
    /// [`crate::tuple::bag_minus`].
    pub fn minus(&self, other: &Batch) -> Batch {
        let keep = self.minus_positions(other);
        self.gather_physical(&keep)
    }

    /// Dense batch holding the rows at the given *physical* positions, in
    /// order (one typed gather per column). Pairs with
    /// [`Batch::minus_positions`] so callers that also need the surviving
    /// position list (index remapping) hash the table once, not twice.
    pub fn gather_physical(&self, positions: &[u32]) -> Batch {
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.gather(positions)))
            .collect();
        Batch {
            schema: self.schema.clone(),
            columns,
            rows: positions.len(),
            sel: None,
        }
    }

    /// Distinct rows with multiplicities, as (representative physical
    /// position, count) pairs — the columnar counterpart of
    /// [`crate::tuple::bag_counts`], hashing borrowed column keys.
    pub fn counts(&self) -> Vec<(u32, i64)> {
        let cols: Vec<usize> = (0..self.schema.len()).collect();
        let mut buckets: U64Map<Vec<usize>> = u64_map_with_capacity(self.num_rows());
        let mut out: Vec<(u32, i64)> = Vec::new();
        for i in 0..self.num_rows() {
            let phys = self.physical(i);
            let h = self.hash_keys(phys, &cols);
            let ids = buckets.entry(h).or_default();
            match ids
                .iter()
                .copied()
                .find(|&g| self.keys_eq(out[g].0, &cols, self, phys, &cols))
            {
                Some(g) => out[g].1 += 1,
                None => {
                    ids.push(out.len());
                    out.push((phys, 1));
                }
            }
        }
        out
    }

    /// Join-output constructor: for each `(l, r)` *physical* pair, the
    /// concatenated row `left[l] ++ right[r]`, projected onto `out_schema`
    /// via `positions` (indices into the concatenated layout).
    pub fn gather_pairs(
        left: &Batch,
        right: &Batch,
        pairs: &[(u32, u32)],
        out_schema: Schema,
        positions: &[usize],
    ) -> Batch {
        let lw = left.schema.len();
        let mut columns = Vec::with_capacity(positions.len());
        let mut idx_l: Option<Vec<u32>> = None;
        let mut idx_r: Option<Vec<u32>> = None;
        for &p in positions {
            if p < lw {
                let idx = idx_l.get_or_insert_with(|| pairs.iter().map(|&(l, _)| l).collect());
                columns.push(Arc::new(left.columns[p].gather(idx)));
            } else {
                let idx = idx_r.get_or_insert_with(|| pairs.iter().map(|&(_, r)| r).collect());
                columns.push(Arc::new(right.columns[p - lw].gather(idx)));
            }
        }
        if columns.is_empty() {
            // Degenerate zero-column schema: row count still matters.
            return Batch {
                schema: out_schema,
                columns,
                rows: pairs.len(),
                sel: None,
            };
        }
        Batch {
            schema: out_schema,
            rows: pairs.len(),
            columns,
            sel: None,
        }
    }

    /// Dictionary-encode every plain `Str` column (the storage-image
    /// representation). Non-string, already-encoded, and `Mixed` columns
    /// are reference-shared untouched.
    pub fn dict_encoded(&self) -> Batch {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                if matches!(c.data(), ColumnData::Str(_)) {
                    Arc::new(c.dict_encode())
                } else {
                    Arc::clone(c)
                }
            })
            .collect();
        Batch {
            schema: self.schema.clone(),
            columns,
            rows: self.rows,
            sel: self.sel.clone(),
        }
    }

    /// Hash the key columns of physical row `phys` ([`Value::hash`]
    /// semantics, so cross-typed equal keys collide as required). Folded
    /// with the internal fast hasher — every consumer pairs this with a
    /// column-wise equality check, so only within-operation consistency is
    /// required (see [`crate::hash`]).
    pub fn hash_keys(&self, phys: u32, cols: &[usize]) -> u64 {
        let mut h = crate::hash::FxHasher::default();
        for &c in cols {
            self.columns[c].hash_value(phys as usize, &mut h);
        }
        h.finish()
    }

    /// True if any key column is NULL at physical row `phys`.
    pub fn any_null(&self, phys: u32, cols: &[usize]) -> bool {
        cols.iter().any(|&c| self.columns[c].is_null(phys as usize))
    }

    /// Key equality between physical rows of two batches, column-wise.
    pub fn keys_eq(
        &self,
        phys: u32,
        cols: &[usize],
        other: &Batch,
        ophys: u32,
        ocols: &[usize],
    ) -> bool {
        debug_assert_eq!(cols.len(), ocols.len());
        cols.iter()
            .zip(ocols)
            .all(|(&a, &b)| self.columns[a].eq_at(phys as usize, &other.columns[b], ophys as usize))
    }

    /// Total-order comparison of two physical rows on key columns (merge
    /// join ordering; matches sorting rows by their key tuples).
    pub fn cmp_keys(
        &self,
        phys: u32,
        cols: &[usize],
        other: &Batch,
        ophys: u32,
        ocols: &[usize],
    ) -> Ordering {
        for (&a, &b) in cols.iter().zip(ocols) {
            let ord = self.columns[a].cmp_at(phys as usize, &other.columns[b], ophys as usize);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

/// Logical equality: same schema and the same tuples in logical (selection)
/// order, independent of physical layout, column sharing, or selection
/// vectors.
impl PartialEq for Batch {
    fn eq(&self, other: &Batch) -> bool {
        self.schema == other.schema
            && self.num_rows() == other.num_rows()
            && (0..self.num_rows()).all(|i| self.tuple_at(i) == other.tuple_at(i))
    }
}

/// One conjunct of a [`CompiledPredicate`].
enum Conjunct {
    /// `col <op> literal` — columnar fast path.
    ColLit { col: usize, op: CmpOp, lit: Value },
    /// `col <op> col` — columnar fast path.
    ColCol { l: usize, op: CmpOp, r: usize },
    /// Anything else: evaluated on a scratch row.
    General(ScalarExpr),
    /// A conjunct that can never hold (NULL literal operand).
    Never,
}

/// A predicate compiled against a batch schema: sargable conjuncts run
/// column-at-a-position, the rest fall back to a reusable scratch row.
/// Matches [`Predicate::matches`] exactly (NULL comparisons are false).
pub struct CompiledPredicate {
    conjuncts: Vec<Conjunct>,
}

impl CompiledPredicate {
    pub fn compile(pred: &Predicate, schema: &Schema) -> CompiledPredicate {
        let conjuncts = pred
            .conjuncts()
            .iter()
            .map(|c| Self::compile_conjunct(c, schema))
            .collect();
        CompiledPredicate { conjuncts }
    }

    fn compile_conjunct(c: &ScalarExpr, schema: &Schema) -> Conjunct {
        if let ScalarExpr::Cmp { op, lhs, rhs } = c {
            match (lhs.as_ref(), rhs.as_ref()) {
                (ScalarExpr::Col(a), ScalarExpr::Lit(v)) => {
                    if let Some(col) = schema.position_of(*a) {
                        if v.is_null() {
                            return Conjunct::Never;
                        }
                        return Conjunct::ColLit {
                            col,
                            op: *op,
                            lit: v.clone(),
                        };
                    }
                }
                (ScalarExpr::Lit(v), ScalarExpr::Col(a)) => {
                    if let Some(col) = schema.position_of(*a) {
                        if v.is_null() {
                            return Conjunct::Never;
                        }
                        return Conjunct::ColLit {
                            col,
                            op: op.flipped(),
                            lit: v.clone(),
                        };
                    }
                }
                (ScalarExpr::Col(a), ScalarExpr::Col(b)) => {
                    if let (Some(l), Some(r)) = (schema.position_of(*a), schema.position_of(*b)) {
                        return Conjunct::ColCol { l, op: *op, r };
                    }
                }
                _ => {}
            }
        }
        Conjunct::General(c.clone())
    }

    /// Evaluate at a physical position. `scratch` is the caller's reusable
    /// row buffer, filled only if a general conjunct needs it.
    pub fn matches_at(&self, batch: &Batch, phys: u32, scratch: &mut Vec<Value>) -> bool {
        self.matches_cols(&batch.columns, &batch.schema, phys, scratch)
    }

    /// Column-slice form of [`CompiledPredicate::matches_at`] (lets the
    /// batch filter split its borrows).
    pub fn matches_cols(
        &self,
        columns: &[Arc<Column>],
        schema: &Schema,
        phys: u32,
        scratch: &mut Vec<Value>,
    ) -> bool {
        let mut scratch_filled = false;
        self.conjuncts
            .iter()
            .all(|c| c.holds_at(columns, schema, phys, scratch, &mut scratch_filled))
    }
}

impl Conjunct {
    /// Evaluate one conjunct at a physical position. `scratch_filled`
    /// tracks whether `scratch` already holds this row (shared across the
    /// conjuncts of one row).
    fn holds_at(
        &self,
        columns: &[Arc<Column>],
        schema: &Schema,
        phys: u32,
        scratch: &mut Vec<Value>,
        scratch_filled: &mut bool,
    ) -> bool {
        match self {
            Conjunct::Never => false,
            Conjunct::ColLit { col, op, lit } => {
                let column = &columns[*col];
                !column.is_null(phys as usize) && op.holds(column.cmp_value(phys as usize, lit))
            }
            Conjunct::ColCol { l, op, r } => {
                let (cl, cr) = (&columns[*l], &columns[*r]);
                !cl.is_null(phys as usize)
                    && !cr.is_null(phys as usize)
                    && op.holds(cl.cmp_at(phys as usize, cr, phys as usize))
            }
            Conjunct::General(e) => {
                if !*scratch_filled {
                    scratch.clear();
                    scratch.extend(columns.iter().map(|c| c.value(phys as usize)));
                    *scratch_filled = true;
                }
                e.eval(scratch, schema) == Value::Bool(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrId, Attribute};

    fn schema(specs: &[(u32, DataType)]) -> Schema {
        Schema::new(
            specs
                .iter()
                .map(|&(i, dt)| Attribute {
                    id: AttrId(i),
                    name: format!("a{i}"),
                    data_type: dt,
                })
                .collect(),
        )
    }

    fn int_rows(vals: &[&[i64]]) -> Vec<Tuple> {
        vals.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect()
    }

    #[test]
    fn round_trip_preserves_rows() {
        let s = schema(&[(0, DataType::Int), (1, DataType::Str)]);
        let rows = vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Null, Value::str("b")],
            vec![Value::Int(3), Value::Null],
        ];
        let b = Batch::from_rows(s, &rows);
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.to_rows(), rows);
        assert!(b.column(0).is_null(1));
        assert!(b.column(1).is_null(2));
    }

    #[test]
    fn type_drift_demotes_to_mixed() {
        let s = schema(&[(0, DataType::Int)]);
        // Declared INT, but a FLOAT value flows through.
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Float(2.5)],
            vec![Value::Null],
        ];
        let b = Batch::from_rows(s, &rows);
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn selection_filters_without_copying() {
        let s = schema(&[(0, DataType::Int)]);
        let mut b = Batch::from_rows(s, &int_rows(&[&[1], &[2], &[3], &[4]]));
        b.retain(|p| p % 2 == 0);
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.to_rows(), int_rows(&[&[1], &[3]]));
        // Selections compose.
        b.retain(|p| p == 2);
        assert_eq!(b.to_rows(), int_rows(&[&[3]]));
    }

    #[test]
    fn project_is_column_reorder() {
        let s = schema(&[(0, DataType::Int), (1, DataType::Int)]);
        let to = schema(&[(1, DataType::Int), (0, DataType::Int)]);
        let b = Batch::from_rows(s, &int_rows(&[&[1, 10], &[2, 20]]));
        let p = b.align(&to);
        assert_eq!(p.to_rows(), int_rows(&[&[10, 1], &[20, 2]]));
    }

    #[test]
    fn append_unions_and_compacts_selections() {
        let s = schema(&[(0, DataType::Int)]);
        let mut a = Batch::from_rows(s.clone(), &int_rows(&[&[1], &[2], &[3]]));
        a.retain(|p| p != 1);
        let b = Batch::from_rows(s, &int_rows(&[&[9]]));
        a.append(&b);
        assert_eq!(a.to_rows(), int_rows(&[&[1], &[3], &[9]]));
    }

    #[test]
    fn gather_pairs_builds_join_output() {
        let ls = schema(&[(0, DataType::Int)]);
        let rs = schema(&[(1, DataType::Str)]);
        let out = schema(&[(1, DataType::Str), (0, DataType::Int)]);
        let l = Batch::from_rows(ls, &int_rows(&[&[1], &[2]]));
        let r = Batch::from_rows(rs, &[vec![Value::str("x")], vec![Value::str("y")]]);
        let j = Batch::gather_pairs(&l, &r, &[(0, 1), (1, 0)], out, &[1, 0]);
        assert_eq!(
            j.to_rows(),
            vec![
                vec![Value::str("y"), Value::Int(1)],
                vec![Value::str("x"), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn hash_and_eq_follow_value_semantics() {
        let s = schema(&[(0, DataType::Int)]);
        let f = schema(&[(1, DataType::Float)]);
        let a = Batch::from_rows(s, &int_rows(&[&[2]]));
        let b = Batch::from_rows(f, &[vec![Value::Float(2.0)]]);
        assert_eq!(a.hash_keys(0, &[0]), b.hash_keys(0, &[0]));
        assert!(a.keys_eq(0, &[0], &b, 0, &[0]));
        // NULL keys are detectable.
        let n = Batch::from_rows(schema(&[(2, DataType::Int)]), &[vec![Value::Null]]);
        assert!(n.any_null(0, &[0]));
        // NULL == NULL for grouping.
        assert!(n.keys_eq(0, &[0], &n, 0, &[0]));
    }

    #[test]
    fn compiled_predicate_matches_row_semantics() {
        let s = schema(&[(0, DataType::Int), (1, DataType::Int)]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(5)],
            vec![Value::Int(7), Value::Int(5)],
            vec![Value::Null, Value::Int(5)],
            vec![Value::Int(5), Value::Int(5)],
        ];
        let b = Batch::from_rows(s.clone(), &rows);
        for pred in [
            Predicate::from_expr(ScalarExpr::col_cmp_lit(AttrId(0), CmpOp::Gt, 2i64)),
            Predicate::from_expr(ScalarExpr::col_eq_col(AttrId(0), AttrId(1))),
            Predicate::from_conjuncts(vec![
                ScalarExpr::col_cmp_lit(AttrId(1), CmpOp::Eq, 5i64),
                ScalarExpr::col_cmp_lit(AttrId(0), CmpOp::Le, 5i64),
            ]),
            // Arithmetic forces the scratch-row fallback.
            Predicate::from_expr(ScalarExpr::cmp(
                CmpOp::Lt,
                ScalarExpr::arith(
                    crate::expr::ArithOp::Add,
                    ScalarExpr::col(AttrId(0)),
                    ScalarExpr::lit(1i64),
                ),
                ScalarExpr::col(AttrId(1)),
            )),
        ] {
            let compiled = CompiledPredicate::compile(&pred, &s);
            let mut scratch = Vec::new();
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(
                    compiled.matches_at(&b, i as u32, &mut scratch),
                    pred.matches(row, &s),
                    "pred {pred} row {row:?}"
                );
            }
        }
    }

    #[test]
    fn null_literal_conjunct_never_matches() {
        let s = schema(&[(0, DataType::Int)]);
        let b = Batch::from_rows(s.clone(), &int_rows(&[&[1]]));
        let pred = Predicate::from_expr(ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::col(AttrId(0)),
            ScalarExpr::Lit(Value::Null),
        ));
        let compiled = CompiledPredicate::compile(&pred, &s);
        let mut scratch = Vec::new();
        assert!(!compiled.matches_at(&b, 0, &mut scratch));
        assert!(!pred.matches(&[Value::Int(1)], &s));
    }

    #[test]
    fn into_rows_moves_dense_columns() {
        let s = schema(&[(0, DataType::Str), (1, DataType::Int)]);
        let rows = vec![
            vec![Value::str("a"), Value::Int(1)],
            vec![Value::Null, Value::Null],
            vec![Value::str("c"), Value::Int(3)],
        ];
        let b = Batch::from_rows(s.clone(), &rows);
        assert_eq!(b.into_rows(), rows);
        // A selection falls back to the gathering path.
        let mut b = Batch::from_rows(s, &rows);
        b.retain(|p| p != 1);
        assert_eq!(b.into_rows(), vec![rows[0].clone(), rows[2].clone()]);
    }

    #[test]
    fn minus_matches_row_bag_minus() {
        let s = schema(&[(0, DataType::Int), (1, DataType::Int)]);
        let a_rows = vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Null, Value::Int(2)],
            vec![Value::Int(3), Value::Null],
        ];
        let b_rows = vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Null, Value::Int(2)],
            vec![Value::Int(9), Value::Int(9)],
        ];
        let a = Batch::from_rows(s.clone(), &a_rows);
        let b = Batch::from_rows(s, &b_rows);
        let got = a.minus(&b).to_rows();
        let expected = crate::tuple::bag_minus(&a_rows, &b_rows);
        assert!(
            crate::tuple::bag_eq(&got, &expected),
            "{got:?} vs {expected:?}"
        );
    }

    #[test]
    fn counts_match_row_bag_counts() {
        let s = schema(&[(0, DataType::Int)]);
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Int(1)],
            vec![Value::Null],
            vec![Value::Int(2)],
            vec![Value::Null],
        ];
        let b = Batch::from_rows(s, &rows);
        let got: Vec<(Tuple, i64)> = b
            .counts()
            .into_iter()
            .map(|(p, c)| {
                (
                    (0..b.schema().len())
                        .map(|k| b.column(k).value(p as usize))
                        .collect(),
                    c,
                )
            })
            .collect();
        let expected = crate::tuple::bag_counts(&rows);
        assert_eq!(got.len(), expected.len());
        for (row, c) in &got {
            assert_eq!(expected.get(row.as_slice()), Some(c), "row {row:?}");
        }
    }

    #[test]
    fn append_rows_extends_and_compacts() {
        let s = schema(&[(0, DataType::Int)]);
        let mut b = Batch::from_rows(s, &int_rows(&[&[1], &[2], &[3]]));
        b.retain(|p| p != 1);
        b.append_rows(&[vec![Value::Int(9)], vec![Value::Null]]);
        assert_eq!(
            b.to_rows(),
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(3)],
                vec![Value::Int(9)],
                vec![Value::Null]
            ]
        );
    }

    #[test]
    fn tuple_at_respects_selection() {
        let s = schema(&[(0, DataType::Int)]);
        let mut b = Batch::from_rows(s, &int_rows(&[&[10], &[20], &[30]]));
        assert_eq!(b.tuple_at(2), vec![Value::Int(30)]);
        b.retain(|p| p != 0);
        assert_eq!(b.tuple_at(0), vec![Value::Int(20)]);
    }

    #[test]
    fn cmp_value_orders_like_value_cmp() {
        let s = schema(&[(0, DataType::Float)]);
        let b = Batch::from_rows(s, &[vec![Value::Float(1.5)], vec![Value::Null]]);
        assert_eq!(b.column(0).cmp_value(0, &Value::Int(2)), Ordering::Less);
        assert_eq!(b.column(0).cmp_value(0, &Value::Int(1)), Ordering::Greater);
        assert_eq!(b.column(0).cmp_value(1, &Value::Null), Ordering::Equal);
        assert_eq!(b.column(0).cmp_value(1, &Value::Int(5)), Ordering::Greater);
    }

    /// A string column with NULLs and duplicates: `(plain Str rows)`
    /// alongside its dict-encoded image.
    fn str_pair() -> (Batch, Batch, Vec<Tuple>) {
        let s = schema(&[(0, DataType::Str), (1, DataType::Int)]);
        let rows: Vec<Tuple> = (0i64..40)
            .map(|i| {
                vec![
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::str(format!("v{}", i % 5))
                    },
                    Value::Int(i),
                ]
            })
            .collect();
        let plain = Batch::from_rows(s, &rows);
        let dict = plain.dict_encoded();
        (plain, dict, rows)
    }

    #[test]
    fn dict_encode_decode_round_trips_with_unique_entries() {
        let (plain, dict, rows) = str_pair();
        // Logical equality is representation-independent.
        assert_eq!(&dict, &plain);
        assert_eq!(dict.to_rows(), rows);
        let (codes, d) = dict.column(0).dict().expect("encoded");
        assert_eq!(codes.len(), 40);
        // Entries unique: code equality ⇔ string equality.
        let mut seen = std::collections::HashSet::new();
        assert!(d.values().iter().all(|v| seen.insert(v.clone())));
        // Decoding restores a plain Str column with identical values.
        let decoded = dict.column(0).decode_dict();
        assert!(matches!(decoded.data(), ColumnData::Str(_)));
        assert_eq!(&decoded, plain.column(0));
    }

    #[test]
    fn dict_hashes_match_plain_string_hashes() {
        let (plain, dict, _) = str_pair();
        for i in 0..plain.num_rows() {
            let mut hp = crate::hash::FxHasher::default();
            let mut hd = crate::hash::FxHasher::default();
            plain.column(0).hash_value(i, &mut hp);
            dict.column(0).hash_value(i, &mut hd);
            assert_eq!(hp.finish(), hd.finish(), "row {i}");
        }
    }

    #[test]
    fn dict_filter_fast_path_matches_plain_filter() {
        let (plain, dict, _) = str_pair();
        let pred = CompiledPredicate::compile(
            &Predicate::from_expr(ScalarExpr::col_cmp_lit(AttrId(0), CmpOp::Eq, "v3")),
            plain.schema(),
        );
        let mut scratch = Vec::new();
        let mut fp = plain.clone();
        fp.filter(&pred, &mut scratch);
        let mut fd = dict.clone();
        fd.filter(&pred, &mut scratch);
        assert!(fp.num_rows() > 0, "fixture must select something");
        assert_eq!(&fd, &fp);
        // NULL rows never match an equality conjunct, dict or plain.
        assert!((0..fp.num_rows()).all(|i| !fp.column(0).is_null(fp.physical(i) as usize)));
    }
}
