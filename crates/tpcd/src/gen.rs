//! Deterministic TPC-D data generator.
//!
//! Generates referentially consistent data matching the catalog's
//! cardinalities and column profiles. This substitutes for the TPC-D
//! `dbgen` tool (DESIGN.md §2): the experiments consume *statistics*, so
//! what matters is that cardinalities, distinct counts, value ranges, and
//! foreign-key structure match — which this generator guarantees by
//! construction.

use crate::schema::{Tpcd, DATE_HI};
use mvmqo_relalg::catalog::TableId;
use mvmqo_relalg::tuple::Tuple;
use mvmqo_relalg::types::Value;
use mvmqo_storage::database::Database;
use mvmqo_storage::table::StoredTable;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn pad(rng: &mut StdRng, tag: &str, key: i64) -> Value {
    // Cheap distinct-ish string payloads; width is what the cost model
    // reads, content only needs to be deterministic.
    Value::str(format!("{tag}{key}x{}", rng.random_range(0..997)))
}

/// Generate the full database for a TPC-D instance. Row counts follow the
/// catalog statistics exactly; keys are dense `0..n`; every foreign key
/// references an existing parent.
pub fn generate_database(tpcd: &Tpcd, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let c = &tpcd.catalog;
    let rows_of = |t: TableId| c.table(t).stats.rows as i64;

    let n_region = rows_of(tpcd.t.region);
    let n_nation = rows_of(tpcd.t.nation);
    let n_supplier = rows_of(tpcd.t.supplier);
    let n_customer = rows_of(tpcd.t.customer);
    let n_part = rows_of(tpcd.t.part);
    let n_partsupp = rows_of(tpcd.t.partsupp);
    let n_orders = rows_of(tpcd.t.orders);
    let n_lineitem = rows_of(tpcd.t.lineitem);

    let region_rows: Vec<Tuple> = (0..n_region)
        .map(|i| vec![Value::Int(i), Value::str(format!("REGION_{i}"))])
        .collect();
    db.put_base(
        tpcd.t.region,
        StoredTable::with_rows(c.table(tpcd.t.region).schema.clone(), region_rows),
    );

    let nation_rows: Vec<Tuple> = (0..n_nation)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % n_region),
                Value::str(format!("NATION_{i}")),
            ]
        })
        .collect();
    db.put_base(
        tpcd.t.nation,
        StoredTable::with_rows(c.table(tpcd.t.nation).schema.clone(), nation_rows),
    );

    let supplier_rows: Vec<Tuple> = (0..n_supplier)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(rng.random_range(0..n_nation)),
                Value::Float(rng.random_range(-1_000.0..10_000.0)),
                pad(&mut rng, "S", i),
                pad(&mut rng, "SA", i),
                pad(&mut rng, "SC", i),
            ]
        })
        .collect();
    db.put_base(
        tpcd.t.supplier,
        StoredTable::with_rows(c.table(tpcd.t.supplier).schema.clone(), supplier_rows),
    );

    let customer_rows: Vec<Tuple> = (0..n_customer)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(rng.random_range(0..n_nation)),
                Value::Int(rng.random_range(0..5)),
                Value::Float(rng.random_range(-1_000.0..10_000.0)),
                pad(&mut rng, "C", i),
                pad(&mut rng, "CA", i),
                pad(&mut rng, "CC", i),
            ]
        })
        .collect();
    db.put_base(
        tpcd.t.customer,
        StoredTable::with_rows(c.table(tpcd.t.customer).schema.clone(), customer_rows),
    );

    let part_rows: Vec<Tuple> = (0..n_part)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(rng.random_range(1..=50)),
                Value::Int(rng.random_range(0..25)),
                Value::Float(rng.random_range(900.0..2_000.0)),
                pad(&mut rng, "P", i),
                Value::str(format!("TYPE_{}", rng.random_range(0..150))),
                pad(&mut rng, "PC", i),
            ]
        })
        .collect();
    db.put_base(
        tpcd.t.part,
        StoredTable::with_rows(c.table(tpcd.t.part).schema.clone(), part_rows),
    );

    let partsupp_rows: Vec<Tuple> = (0..n_partsupp)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % n_part), // even coverage of parts
                Value::Int(rng.random_range(0..n_supplier)),
                Value::Int(rng.random_range(0..10_000)),
                Value::Float(rng.random_range(1.0..1_000.0)),
                pad(&mut rng, "PS", i),
            ]
        })
        .collect();
    db.put_base(
        tpcd.t.partsupp,
        StoredTable::with_rows(c.table(tpcd.t.partsupp).schema.clone(), partsupp_rows),
    );

    let orders_rows: Vec<Tuple> = (0..n_orders)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(rng.random_range(0..n_customer)),
                Value::Date(rng.random_range(0..DATE_HI as i32)),
                Value::Int(rng.random_range(0..5)),
                Value::Float(rng.random_range(900.0..500_000.0)),
                Value::Int(rng.random_range(0..3)),
                pad(&mut rng, "O", i),
            ]
        })
        .collect();
    db.put_base(
        tpcd.t.orders,
        StoredTable::with_rows(c.table(tpcd.t.orders).schema.clone(), orders_rows),
    );

    let lineitem_rows: Vec<Tuple> = (0..n_lineitem)
        .map(|i| {
            let shipdate = rng.random_range(0..DATE_HI as i32 - 60);
            vec![
                Value::Int(i),
                Value::Int(rng.random_range(0..n_orders)),
                Value::Int(rng.random_range(0..n_part)),
                Value::Int(rng.random_range(0..n_supplier)),
                Value::Int(rng.random_range(1..=50)),
                Value::Float(rng.random_range(900.0..100_000.0)),
                Value::Float(f64::from(rng.random_range(0..=10)) / 100.0),
                Value::Date(shipdate),
                Value::Date(shipdate + rng.random_range(1..60)),
                Value::Int(rng.random_range(0..3)),
                Value::str(format!("MODE_{}", rng.random_range(0..7))),
                pad(&mut rng, "LC", i),
            ]
        })
        .collect();
    db.put_base(
        tpcd.t.lineitem,
        StoredTable::with_rows(c.table(tpcd.t.lineitem).schema.clone(), lineitem_rows),
    );

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::tpcd_catalog;

    #[test]
    fn generated_rowcounts_match_catalog() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        for id in t.t.all() {
            assert_eq!(
                db.base(id).unwrap().len() as f64,
                t.catalog.table(id).stats.rows,
                "table {}",
                t.catalog.table(id).name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let t = tpcd_catalog(0.001);
        let d1 = generate_database(&t, 7);
        let d2 = generate_database(&t, 7);
        assert_eq!(
            d1.base(t.t.lineitem).unwrap().rows()[..10],
            d2.base(t.t.lineitem).unwrap().rows()[..10]
        );
    }

    #[test]
    fn foreign_keys_reference_existing_parents() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 3);
        let n_orders = db.base(t.t.orders).unwrap().len() as i64;
        let ok_pos = t
            .catalog
            .table(t.t.lineitem)
            .schema
            .position_of(t.attr(t.t.lineitem, "l_orderkey"))
            .unwrap();
        for row in db.base(t.t.lineitem).unwrap().rows() {
            let k = row[ok_pos].as_i64().unwrap();
            assert!(k >= 0 && k < n_orders);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let t = tpcd_catalog(0.001);
        let d1 = generate_database(&t, 1);
        let d2 = generate_database(&t, 2);
        assert_ne!(
            d1.base(t.t.lineitem).unwrap().rows()[..10],
            d2.base(t.t.lineitem).unwrap().rows()[..10]
        );
    }
}
