//! # mvmqo-tpcd
//!
//! TPC-D substrate for the `mvmqo` reproduction (§7.1 of the paper):
//!
//! * [`schema`] — the eight-relation TPC-D catalog at a configurable scale
//!   factor (the paper uses 0.1 ≈ 100 MB), with foreign keys and
//!   primary-key indices;
//! * [`gen`] — a deterministic, referentially consistent data generator
//!   (substitutes for `dbgen`; see DESIGN.md §2);
//! * [`updates`] — the paper's update pattern: x% inserts + x/2% deletes
//!   per relation, fresh keys, FKs referencing pre-update parents;
//! * [`workloads`] — the benchmark view sets for Figures 3, 4, and 5.

pub mod gen;
pub mod schema;
pub mod updates;
pub mod workloads;

pub use gen::generate_database;
pub use schema::{cardinalities, tpcd_catalog, Tables, Tpcd};
pub use updates::{
    epoch_updates, generate_table_update, generate_updates, DriverProfile, UpdateGenError,
};
pub use workloads::{
    five_agg_views, five_join_views, many_views, single_agg_view, single_join_view, ten_views,
};
