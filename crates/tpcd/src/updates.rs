//! Update-batch generator implementing the paper's workload (§7.1):
//! "a 10 percent update to a relation consists of inserting 10% as many
//! tuples as currently in the relation, and deleting 5% of the current
//! tuples" — twice as many inserts as deletes, modelling a growing
//! database; all relations are updated by the same percentage.
//!
//! Inserted rows use fresh primary keys and reference *pre-update* parents,
//! which is exactly the precondition under which the §5.3 foreign-key
//! pruning is an equivalence rather than a heuristic.

use crate::schema::{Tpcd, DATE_HI};
use mvmqo_relalg::catalog::TableId;
use mvmqo_relalg::tuple::Tuple;
use mvmqo_relalg::types::Value;
use mvmqo_storage::database::Database;
use mvmqo_storage::delta::{DeltaBatch, DeltaSet};
use mvmqo_storage::error::StorageError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// Errors from the update generator. Generating a batch for a relation the
/// TPC-D instance does not know (or whose contents were never loaded) is a
/// caller mistake that must not abort a long-lived engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateGenError {
    /// The table is not one of the eight TPC-D relations.
    UnknownTable(TableId),
    /// The table exists in the catalog but has no stored contents.
    Storage(StorageError),
}

impl fmt::Display for UpdateGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateGenError::UnknownTable(t) => write!(f, "unknown TPC-D table {t}"),
            UpdateGenError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UpdateGenError {}

impl From<StorageError> for UpdateGenError {
    fn from(e: StorageError) -> Self {
        UpdateGenError::Storage(e)
    }
}

/// Generate one refresh cycle's deltas at `percent`% for every relation the
/// instance contains (tables absent from `db` are skipped).
pub fn generate_updates(
    tpcd: &Tpcd,
    db: &Database,
    percent: f64,
    seed: u64,
) -> Result<DeltaSet, UpdateGenError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = DeltaSet::new();
    for table in tpcd.t.all() {
        if !db.has_base(table) {
            continue;
        }
        let batch = table_batch(tpcd, db, table, percent, &mut rng)?;
        ds.insert(table, batch);
    }
    Ok(ds)
}

/// Generate one relation's batch at `percent`% (the warehouse CLI's
/// `ingest <table> <pct>` path — arbitrary tables, typed failure).
pub fn generate_table_update(
    tpcd: &Tpcd,
    db: &Database,
    table: TableId,
    percent: f64,
    seed: u64,
) -> Result<DeltaBatch, UpdateGenError> {
    let mut rng = StdRng::seed_from_u64(seed);
    table_batch(tpcd, db, table, percent, &mut rng)
}

fn table_batch(
    tpcd: &Tpcd,
    db: &Database,
    table: TableId,
    percent: f64,
    rng: &mut StdRng,
) -> Result<DeltaBatch, UpdateGenError> {
    let stored = db.base(table)?;
    let rows = stored.len();
    let ins_n = ((rows as f64) * percent / 100.0).round() as usize;
    let del_n = ((rows as f64) * percent / 200.0).round() as usize;
    // Columnar key scan: storage is batch-native, so walking column 0
    // avoids materializing the whole table as rows every epoch.
    let key_col = stored.batch().column(0);
    let next_key = (0..key_col.len())
        .map(|i| key_col.value(i).as_i64().unwrap_or(0))
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    let inserts: Vec<Tuple> = (0..ins_n)
        .map(|i| fresh_row(tpcd, db, table, next_key + i as i64, rng))
        .collect::<Result<_, _>>()?;
    let mut deletes: Vec<Tuple> = Vec::with_capacity(del_n);
    if rows > 0 {
        let mut picked = std::collections::HashSet::new();
        while picked.len() < del_n.min(rows) {
            picked.insert(rng.random_range(0..rows));
        }
        deletes.extend(picked.into_iter().map(|i| stored.tuple_at(i as u32)));
    }
    Ok(DeltaBatch::new(inserts, deletes))
}

fn parent_key(db: &Database, table: TableId, rng: &mut StdRng) -> Result<i64, UpdateGenError> {
    let n = db.base(table)?.len() as i64;
    Ok(if n == 0 { 0 } else { rng.random_range(0..n) })
}

fn fresh_row(
    tpcd: &Tpcd,
    db: &Database,
    table: TableId,
    key: i64,
    rng: &mut StdRng,
) -> Result<Tuple, UpdateGenError> {
    let t = &tpcd.t;
    if table == t.region {
        Ok(vec![Value::Int(key), Value::str(format!("REGION_{key}"))])
    } else if table == t.nation {
        Ok(vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.region, rng)?),
            Value::str(format!("NATION_{key}")),
        ])
    } else if table == t.supplier {
        Ok(vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.nation, rng)?),
            Value::Float(rng.random_range(-1_000.0..10_000.0)),
            Value::str(format!("S{key}")),
            Value::str(format!("SA{key}")),
            Value::str(format!("SC{key}")),
        ])
    } else if table == t.customer {
        Ok(vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.nation, rng)?),
            Value::Int(rng.random_range(0..5)),
            Value::Float(rng.random_range(-1_000.0..10_000.0)),
            Value::str(format!("C{key}")),
            Value::str(format!("CA{key}")),
            Value::str(format!("CC{key}")),
        ])
    } else if table == t.part {
        Ok(vec![
            Value::Int(key),
            Value::Int(rng.random_range(1..=50)),
            Value::Int(rng.random_range(0..25)),
            Value::Float(rng.random_range(900.0..2_000.0)),
            Value::str(format!("P{key}")),
            Value::str(format!("TYPE_{}", rng.random_range(0..150))),
            Value::str(format!("PC{key}")),
        ])
    } else if table == t.partsupp {
        Ok(vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.part, rng)?),
            Value::Int(parent_key(db, t.supplier, rng)?),
            Value::Int(rng.random_range(0..10_000)),
            Value::Float(rng.random_range(1.0..1_000.0)),
            Value::str(format!("PS{key}")),
        ])
    } else if table == t.orders {
        Ok(vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.customer, rng)?),
            Value::Date(rng.random_range(0..DATE_HI as i32)),
            Value::Int(rng.random_range(0..5)),
            Value::Float(rng.random_range(900.0..500_000.0)),
            Value::Int(rng.random_range(0..3)),
            Value::str(format!("O{key}")),
        ])
    } else if table == t.lineitem {
        let shipdate = rng.random_range(0..DATE_HI as i32 - 60);
        Ok(vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.orders, rng)?),
            Value::Int(parent_key(db, t.part, rng)?),
            Value::Int(parent_key(db, t.supplier, rng)?),
            Value::Int(rng.random_range(1..=50)),
            Value::Float(rng.random_range(900.0..100_000.0)),
            Value::Float(f64::from(rng.random_range(0..=10)) / 100.0),
            Value::Date(shipdate),
            Value::Date(shipdate + rng.random_range(1..60)),
            Value::Int(rng.random_range(0..3)),
            Value::str(format!("MODE_{}", rng.random_range(0..7))),
            Value::str(format!("LC{key}")),
        ])
    } else {
        Err(UpdateGenError::UnknownTable(table))
    }
}

/// Shape of a multi-epoch update stream (the warehouse driver workload).
///
/// Each epoch the driver derives a per-relation update percentage from the
/// profile and the epoch number, then generates the batches against the
/// *current* database state — so a growing database yields growing batches,
/// exactly the statistics drift adaptive re-optimization reacts to.
#[derive(Debug, Clone, Copy)]
pub enum DriverProfile {
    /// The same percentage every epoch (the paper's nightly-refresh model).
    Steady { percent: f64 },
    /// `base`% most epochs, `spike`% every `period`-th epoch (end-of-month
    /// load bursts).
    Bursty { base: f64, spike: f64, period: u64 },
    /// Only the fact tables (`orders`, `lineitem`) are updated; dimensions
    /// stay frozen. Models an append-mostly warehouse.
    FactOnly { percent: f64 },
}

impl DriverProfile {
    /// Update percentage for `table` at `epoch` (0-based).
    pub fn percent_for(&self, tpcd: &Tpcd, table: TableId, epoch: u64) -> f64 {
        match *self {
            DriverProfile::Steady { percent } => percent,
            DriverProfile::Bursty {
                base,
                spike,
                period,
            } => {
                if period > 0 && (epoch + 1).is_multiple_of(period) {
                    spike
                } else {
                    base
                }
            }
            DriverProfile::FactOnly { percent } => {
                if table == tpcd.t.orders || table == tpcd.t.lineitem {
                    percent
                } else {
                    0.0
                }
            }
        }
    }
}

/// Generate one epoch's deltas under a [`DriverProfile`]. Seeds are
/// derived from `(seed, epoch)` so every epoch gets a distinct but
/// reproducible batch.
pub fn epoch_updates(
    tpcd: &Tpcd,
    db: &Database,
    profile: DriverProfile,
    epoch: u64,
    seed: u64,
) -> Result<DeltaSet, UpdateGenError> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(epoch));
    let mut ds = DeltaSet::new();
    for table in tpcd.t.all() {
        if !db.has_base(table) {
            continue;
        }
        let percent = profile.percent_for(tpcd, table, epoch);
        if percent <= 0.0 {
            continue;
        }
        let batch = table_batch(tpcd, db, table, percent, &mut rng)?;
        ds.insert(table, batch);
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_database;
    use crate::schema::tpcd_catalog;

    #[test]
    fn batch_sizes_follow_two_to_one_rule() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let ds = generate_updates(&t, &db, 10.0, 2).unwrap();
        let li = ds.get(t.t.lineitem).unwrap();
        let rows = db.base(t.t.lineitem).unwrap().len() as f64;
        assert_eq!(li.inserts.len(), (rows * 0.10).round() as usize);
        assert_eq!(li.deletes.len(), (rows * 0.05).round() as usize);
    }

    #[test]
    fn inserted_keys_are_fresh() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let ds = generate_updates(&t, &db, 10.0, 2).unwrap();
        let existing: std::collections::HashSet<i64> = db
            .base(t.t.orders)
            .unwrap()
            .rows()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        for row in &ds.get(t.t.orders).unwrap().inserts {
            assert!(!existing.contains(&row[0].as_i64().unwrap()));
        }
    }

    #[test]
    fn inserted_fks_reference_pre_update_parents() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let ds = generate_updates(&t, &db, 20.0, 3).unwrap();
        let n_orders = db.base(t.t.orders).unwrap().len() as i64;
        let pos = t
            .catalog
            .table(t.t.lineitem)
            .schema
            .position_of(t.attr(t.t.lineitem, "l_orderkey"))
            .unwrap();
        for row in &ds.get(t.t.lineitem).unwrap().inserts {
            let k = row[pos].as_i64().unwrap();
            assert!(k < n_orders, "new lineitem references a new order");
        }
    }

    #[test]
    fn deletes_are_distinct_existing_rows() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let ds = generate_updates(&t, &db, 30.0, 4).unwrap();
        let batch = ds.get(t.t.customer).unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in &batch.deletes {
            assert!(seen.insert(row.clone()), "duplicate delete row");
            assert!(db.base(t.t.customer).unwrap().rows().contains(row));
        }
    }

    #[test]
    fn zero_percent_yields_empty_set() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let ds = generate_updates(&t, &db, 0.0, 5).unwrap();
        assert!(ds.is_empty());
    }

    #[test]
    fn unknown_table_is_a_typed_error() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let bogus = TableId(99);
        assert!(matches!(
            generate_table_update(&t, &db, bogus, 10.0, 1),
            Err(UpdateGenError::Storage(StorageError::TableNotLoaded(id))) if id == bogus
        ));
    }

    #[test]
    fn fact_only_profile_freezes_dimensions() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let ds = epoch_updates(&t, &db, DriverProfile::FactOnly { percent: 10.0 }, 0, 7).unwrap();
        assert!(ds.get(t.t.lineitem).is_some());
        assert!(ds.get(t.t.orders).is_some());
        assert!(ds.get(t.t.customer).is_none());
        assert!(ds.get(t.t.supplier).is_none());
    }

    #[test]
    fn bursty_profile_spikes_on_period() {
        let t = tpcd_catalog(0.001);
        let profile = DriverProfile::Bursty {
            base: 1.0,
            spike: 20.0,
            period: 3,
        };
        assert_eq!(profile.percent_for(&t, t.t.lineitem, 0), 1.0);
        assert_eq!(profile.percent_for(&t, t.t.lineitem, 2), 20.0);
        assert_eq!(profile.percent_for(&t, t.t.lineitem, 5), 20.0);
    }

    #[test]
    fn epoch_updates_differ_across_epochs() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let profile = DriverProfile::Steady { percent: 10.0 };
        let e0 = epoch_updates(&t, &db, profile, 0, 7).unwrap();
        let e1 = epoch_updates(&t, &db, profile, 1, 7).unwrap();
        assert_ne!(
            e0.get(t.t.lineitem).unwrap().inserts,
            e1.get(t.t.lineitem).unwrap().inserts
        );
    }
}
