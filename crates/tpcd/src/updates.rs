//! Update-batch generator implementing the paper's workload (§7.1):
//! "a 10 percent update to a relation consists of inserting 10% as many
//! tuples as currently in the relation, and deleting 5% of the current
//! tuples" — twice as many inserts as deletes, modelling a growing
//! database; all relations are updated by the same percentage.
//!
//! Inserted rows use fresh primary keys and reference *pre-update* parents,
//! which is exactly the precondition under which the §5.3 foreign-key
//! pruning is an equivalence rather than a heuristic.

use crate::schema::{Tpcd, DATE_HI};
use mvmqo_relalg::catalog::TableId;
use mvmqo_relalg::tuple::Tuple;
use mvmqo_relalg::types::Value;
use mvmqo_storage::database::Database;
use mvmqo_storage::delta::{DeltaBatch, DeltaSet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate one refresh cycle's deltas at `percent`% for every relation the
/// instance contains (tables absent from `db` are skipped).
pub fn generate_updates(tpcd: &Tpcd, db: &Database, percent: f64, seed: u64) -> DeltaSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = DeltaSet::new();
    for table in tpcd.t.all() {
        if !db.has_base(table) {
            continue;
        }
        let batch = table_batch(tpcd, db, table, percent, &mut rng);
        ds.insert(table, batch);
    }
    ds
}

fn table_batch(
    tpcd: &Tpcd,
    db: &Database,
    table: TableId,
    percent: f64,
    rng: &mut StdRng,
) -> DeltaBatch {
    let stored = db.base(table);
    let rows = stored.len();
    let ins_n = ((rows as f64) * percent / 100.0).round() as usize;
    let del_n = ((rows as f64) * percent / 200.0).round() as usize;
    let next_key = stored
        .rows()
        .iter()
        .map(|r| r[0].as_i64().unwrap_or(0))
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    let inserts: Vec<Tuple> = (0..ins_n)
        .map(|i| fresh_row(tpcd, db, table, next_key + i as i64, rng))
        .collect();
    let mut deletes: Vec<Tuple> = Vec::with_capacity(del_n);
    if rows > 0 {
        let mut picked = std::collections::HashSet::new();
        while picked.len() < del_n.min(rows) {
            picked.insert(rng.random_range(0..rows));
        }
        deletes.extend(picked.into_iter().map(|i| stored.rows()[i].clone()));
    }
    DeltaBatch::new(inserts, deletes)
}

fn parent_key(db: &Database, table: TableId, rng: &mut StdRng) -> i64 {
    let n = db.base(table).len() as i64;
    if n == 0 {
        0
    } else {
        rng.random_range(0..n)
    }
}

fn fresh_row(tpcd: &Tpcd, db: &Database, table: TableId, key: i64, rng: &mut StdRng) -> Tuple {
    let t = &tpcd.t;
    if table == t.region {
        vec![Value::Int(key), Value::str(format!("REGION_{key}"))]
    } else if table == t.nation {
        vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.region, rng)),
            Value::str(format!("NATION_{key}")),
        ]
    } else if table == t.supplier {
        vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.nation, rng)),
            Value::Float(rng.random_range(-1_000.0..10_000.0)),
            Value::str(format!("S{key}")),
            Value::str(format!("SA{key}")),
            Value::str(format!("SC{key}")),
        ]
    } else if table == t.customer {
        vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.nation, rng)),
            Value::Int(rng.random_range(0..5)),
            Value::Float(rng.random_range(-1_000.0..10_000.0)),
            Value::str(format!("C{key}")),
            Value::str(format!("CA{key}")),
            Value::str(format!("CC{key}")),
        ]
    } else if table == t.part {
        vec![
            Value::Int(key),
            Value::Int(rng.random_range(1..=50)),
            Value::Int(rng.random_range(0..25)),
            Value::Float(rng.random_range(900.0..2_000.0)),
            Value::str(format!("P{key}")),
            Value::str(format!("TYPE_{}", rng.random_range(0..150))),
            Value::str(format!("PC{key}")),
        ]
    } else if table == t.partsupp {
        vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.part, rng)),
            Value::Int(parent_key(db, t.supplier, rng)),
            Value::Int(rng.random_range(0..10_000)),
            Value::Float(rng.random_range(1.0..1_000.0)),
            Value::str(format!("PS{key}")),
        ]
    } else if table == t.orders {
        vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.customer, rng)),
            Value::Date(rng.random_range(0..DATE_HI as i32)),
            Value::Int(rng.random_range(0..5)),
            Value::Float(rng.random_range(900.0..500_000.0)),
            Value::Int(rng.random_range(0..3)),
            Value::str(format!("O{key}")),
        ]
    } else if table == t.lineitem {
        let shipdate = rng.random_range(0..DATE_HI as i32 - 60);
        vec![
            Value::Int(key),
            Value::Int(parent_key(db, t.orders, rng)),
            Value::Int(parent_key(db, t.part, rng)),
            Value::Int(parent_key(db, t.supplier, rng)),
            Value::Int(rng.random_range(1..=50)),
            Value::Float(rng.random_range(900.0..100_000.0)),
            Value::Float(f64::from(rng.random_range(0..=10)) / 100.0),
            Value::Date(shipdate),
            Value::Date(shipdate + rng.random_range(1..60)),
            Value::Int(rng.random_range(0..3)),
            Value::str(format!("MODE_{}", rng.random_range(0..7))),
            Value::str(format!("LC{key}")),
        ]
    } else {
        panic!("unknown table {table}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_database;
    use crate::schema::tpcd_catalog;

    #[test]
    fn batch_sizes_follow_two_to_one_rule() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let ds = generate_updates(&t, &db, 10.0, 2);
        let li = ds.get(t.t.lineitem).unwrap();
        let rows = db.base(t.t.lineitem).len() as f64;
        assert_eq!(li.inserts.len(), (rows * 0.10).round() as usize);
        assert_eq!(li.deletes.len(), (rows * 0.05).round() as usize);
    }

    #[test]
    fn inserted_keys_are_fresh() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let ds = generate_updates(&t, &db, 10.0, 2);
        let existing: std::collections::HashSet<i64> = db
            .base(t.t.orders)
            .rows()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        for row in &ds.get(t.t.orders).unwrap().inserts {
            assert!(!existing.contains(&row[0].as_i64().unwrap()));
        }
    }

    #[test]
    fn inserted_fks_reference_pre_update_parents() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let ds = generate_updates(&t, &db, 20.0, 3);
        let n_orders = db.base(t.t.orders).len() as i64;
        let pos = t
            .catalog
            .table(t.t.lineitem)
            .schema
            .position_of(t.attr(t.t.lineitem, "l_orderkey"))
            .unwrap();
        for row in &ds.get(t.t.lineitem).unwrap().inserts {
            let k = row[pos].as_i64().unwrap();
            assert!(k < n_orders, "new lineitem references a new order");
        }
    }

    #[test]
    fn deletes_are_distinct_existing_rows() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let ds = generate_updates(&t, &db, 30.0, 4);
        let batch = ds.get(t.t.customer).unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in &batch.deletes {
            assert!(seen.insert(row.clone()), "duplicate delete row");
            assert!(db.base(t.t.customer).rows().contains(row));
        }
    }

    #[test]
    fn zero_percent_yields_empty_set() {
        let t = tpcd_catalog(0.001);
        let db = generate_database(&t, 1);
        let ds = generate_updates(&t, &db, 0.0, 5);
        assert!(ds.is_empty());
    }
}
