//! The TPC-D schema (the benchmark the paper evaluates on, §7.1).
//!
//! Eight relations with the standard cardinality ratios; at scale factor
//! `sf` the database holds roughly `sf × 1 GB` of data (the paper uses
//! `sf = 0.1`, about 100 MB). Column sets are trimmed to the attributes the
//! benchmark views touch, padded so estimated row widths approximate the
//! real TPC-D widths (the cost model works from widths and cardinalities,
//! not payload bytes).
//!
//! Two deliberate deviations, recorded in DESIGN.md: `lineitem` and
//! `partsupp` get surrogate integer primary keys (`l_id`, `ps_id`) instead
//! of composite keys, which keeps the single-attribute index machinery and
//! the update generator simple without affecting any estimated statistic
//! the experiments depend on.

use mvmqo_relalg::catalog::{Catalog, ColumnSpec, TableId};
use mvmqo_relalg::schema::AttrId;
use mvmqo_relalg::types::DataType;

/// Table handles for the eight TPC-D relations.
#[derive(Debug, Clone, Copy)]
pub struct Tables {
    pub region: TableId,
    pub nation: TableId,
    pub supplier: TableId,
    pub customer: TableId,
    pub part: TableId,
    pub partsupp: TableId,
    pub orders: TableId,
    pub lineitem: TableId,
}

impl Tables {
    /// All tables, parents before children (update-propagation order).
    pub fn all(&self) -> [TableId; 8] {
        [
            self.region,
            self.nation,
            self.supplier,
            self.customer,
            self.part,
            self.partsupp,
            self.orders,
            self.lineitem,
        ]
    }
}

/// A TPC-D instance: catalog plus table handles.
pub struct Tpcd {
    pub catalog: Catalog,
    pub t: Tables,
    pub sf: f64,
}

/// Row counts at scale factor `sf` (TPC-D ratios).
pub fn cardinalities(sf: f64) -> [(&'static str, f64); 8] {
    [
        ("region", 5.0),
        ("nation", 25.0),
        ("supplier", (10_000.0 * sf).max(10.0).round()),
        ("customer", (150_000.0 * sf).max(150.0).round()),
        ("part", (200_000.0 * sf).max(200.0).round()),
        ("partsupp", (800_000.0 * sf).max(800.0).round()),
        ("orders", (1_500_000.0 * sf).max(1_500.0).round()),
        ("lineitem", (6_000_000.0 * sf).max(6_000.0).round()),
    ]
}

/// Date domain: days since 1992-01-01, seven years.
pub const DATE_LO: f64 = 0.0;
pub const DATE_HI: f64 = 2556.0;

/// Build the TPC-D catalog at scale factor `sf`.
pub fn tpcd_catalog(sf: f64) -> Tpcd {
    let card = cardinalities(sf);
    let rows = |name: &str| -> f64 {
        card.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, r)| *r)
            .unwrap()
    };
    let mut c = Catalog::new();

    let region = c.add_table(
        "region",
        vec![
            ColumnSpec::key("r_regionkey", DataType::Int),
            ColumnSpec::with_distinct("r_name", DataType::Str, 5.0),
        ],
        rows("region"),
        &["r_regionkey"],
    );
    let nation = c.add_table(
        "nation",
        vec![
            ColumnSpec::key("n_nationkey", DataType::Int),
            ColumnSpec::with_distinct("n_regionkey", DataType::Int, 5.0),
            ColumnSpec::with_distinct("n_name", DataType::Str, 25.0),
        ],
        rows("nation"),
        &["n_nationkey"],
    );
    let supplier = c.add_table(
        "supplier",
        vec![
            ColumnSpec::key("s_suppkey", DataType::Int),
            ColumnSpec::with_distinct("s_nationkey", DataType::Int, 25.0),
            ColumnSpec::with_range("s_acctbal", DataType::Float, 10_000.0, (-1_000.0, 10_000.0)),
            ColumnSpec::with_distinct("s_name", DataType::Str, rows("supplier")),
            ColumnSpec::with_distinct("s_address", DataType::Str, rows("supplier")),
            ColumnSpec::with_distinct("s_comment", DataType::Str, rows("supplier")),
        ],
        rows("supplier"),
        &["s_suppkey"],
    );
    let customer = c.add_table(
        "customer",
        vec![
            ColumnSpec::key("c_custkey", DataType::Int),
            ColumnSpec::with_distinct("c_nationkey", DataType::Int, 25.0),
            ColumnSpec::with_distinct("c_mktsegment", DataType::Int, 5.0),
            ColumnSpec::with_range("c_acctbal", DataType::Float, 10_000.0, (-1_000.0, 10_000.0)),
            ColumnSpec::with_distinct("c_name", DataType::Str, rows("customer")),
            ColumnSpec::with_distinct("c_address", DataType::Str, rows("customer")),
            ColumnSpec::with_distinct("c_comment", DataType::Str, rows("customer")),
        ],
        rows("customer"),
        &["c_custkey"],
    );
    let part = c.add_table(
        "part",
        vec![
            ColumnSpec::key("p_partkey", DataType::Int),
            ColumnSpec::with_range("p_size", DataType::Int, 50.0, (1.0, 50.0)),
            ColumnSpec::with_distinct("p_brand", DataType::Int, 25.0),
            ColumnSpec::with_range("p_retailprice", DataType::Float, 20_000.0, (900.0, 2_000.0)),
            ColumnSpec::with_distinct("p_name", DataType::Str, rows("part")),
            ColumnSpec::with_distinct("p_type", DataType::Str, 150.0),
            ColumnSpec::with_distinct("p_comment", DataType::Str, rows("part")),
        ],
        rows("part"),
        &["p_partkey"],
    );
    let partsupp = c.add_table(
        "partsupp",
        vec![
            ColumnSpec::key("ps_id", DataType::Int),
            ColumnSpec::with_distinct("ps_partkey", DataType::Int, rows("part")),
            ColumnSpec::with_distinct("ps_suppkey", DataType::Int, rows("supplier")),
            ColumnSpec::with_range("ps_availqty", DataType::Int, 10_000.0, (0.0, 10_000.0)),
            ColumnSpec::with_range("ps_supplycost", DataType::Float, 100_000.0, (1.0, 1_000.0)),
            ColumnSpec::with_distinct("ps_comment", DataType::Str, rows("partsupp")),
        ],
        rows("partsupp"),
        &["ps_id"],
    );
    let orders = c.add_table(
        "orders",
        vec![
            ColumnSpec::key("o_orderkey", DataType::Int),
            ColumnSpec::with_distinct("o_custkey", DataType::Int, rows("customer")),
            ColumnSpec::with_range("o_orderdate", DataType::Date, 2_400.0, (DATE_LO, DATE_HI)),
            ColumnSpec::with_distinct("o_orderpriority", DataType::Int, 5.0),
            ColumnSpec::with_range(
                "o_totalprice",
                DataType::Float,
                150_000.0,
                (900.0, 500_000.0),
            ),
            ColumnSpec::with_distinct("o_orderstatus", DataType::Int, 3.0),
            ColumnSpec::with_distinct("o_comment", DataType::Str, rows("orders")),
        ],
        rows("orders"),
        &["o_orderkey"],
    );
    let lineitem = c.add_table(
        "lineitem",
        vec![
            ColumnSpec::key("l_id", DataType::Int),
            ColumnSpec::with_distinct("l_orderkey", DataType::Int, rows("orders")),
            ColumnSpec::with_distinct("l_partkey", DataType::Int, rows("part")),
            ColumnSpec::with_distinct("l_suppkey", DataType::Int, rows("supplier")),
            ColumnSpec::with_range("l_quantity", DataType::Int, 50.0, (1.0, 50.0)),
            ColumnSpec::with_range(
                "l_extendedprice",
                DataType::Float,
                100_000.0,
                (900.0, 100_000.0),
            ),
            ColumnSpec::with_range("l_discount", DataType::Float, 11.0, (0.0, 0.1)),
            ColumnSpec::with_range("l_shipdate", DataType::Date, 2_500.0, (DATE_LO, DATE_HI)),
            ColumnSpec::with_range("l_receiptdate", DataType::Date, 2_500.0, (DATE_LO, DATE_HI)),
            ColumnSpec::with_distinct("l_returnflag", DataType::Int, 3.0),
            ColumnSpec::with_distinct("l_shipmode", DataType::Str, 7.0),
            ColumnSpec::with_distinct("l_comment", DataType::Str, rows("lineitem")),
        ],
        rows("lineitem"),
        &["l_id"],
    );

    // Foreign keys (the §5.3 pruning and the cardinality model use these).
    c.add_foreign_key(nation, &["n_regionkey"], region);
    c.add_foreign_key(supplier, &["s_nationkey"], nation);
    c.add_foreign_key(customer, &["c_nationkey"], nation);
    c.add_foreign_key(partsupp, &["ps_partkey"], part);
    c.add_foreign_key(partsupp, &["ps_suppkey"], supplier);
    c.add_foreign_key(orders, &["o_custkey"], customer);
    c.add_foreign_key(lineitem, &["l_orderkey"], orders);
    c.add_foreign_key(lineitem, &["l_partkey"], part);
    c.add_foreign_key(lineitem, &["l_suppkey"], supplier);

    Tpcd {
        catalog: c,
        t: Tables {
            region,
            nation,
            supplier,
            customer,
            part,
            partsupp,
            orders,
            lineitem,
        },
        sf,
    }
}

impl Tpcd {
    /// Attribute id of `table.column`.
    pub fn attr(&self, table: TableId, column: &str) -> AttrId {
        self.catalog.table(table).attr(column)
    }

    /// The paper's default physical design: an index on every primary key
    /// (§7.1 "we assume that for each of the TPC-D relations, an index is
    /// present on the primary key attributes").
    pub fn pk_indices(&self) -> Vec<(TableId, AttrId)> {
        self.t
            .all()
            .iter()
            .flat_map(|t| {
                self.catalog
                    .table(*t)
                    .primary_key
                    .iter()
                    .map(|a| (*t, *a))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale_linearly() {
        let c01 = cardinalities(0.1);
        assert_eq!(c01[7].1, 600_000.0); // lineitem
        assert_eq!(c01[6].1, 150_000.0); // orders
        assert_eq!(c01[0].1, 5.0); // region fixed
    }

    #[test]
    fn catalog_builds_with_all_fks() {
        let t = tpcd_catalog(0.01);
        assert_eq!(t.catalog.len(), 8);
        let li = t.catalog.table(t.t.lineitem);
        assert_eq!(li.foreign_keys.len(), 3);
        // FK edge detection: l_orderkey → o_orderkey.
        let l_ok = t.attr(t.t.lineitem, "l_orderkey");
        let o_ok = t.attr(t.t.orders, "o_orderkey");
        assert!(t.catalog.is_fk_edge(l_ok, o_ok));
    }

    #[test]
    fn total_size_near_100mb_at_sf_01() {
        let t = tpcd_catalog(0.1);
        let total_bytes: f64 =
            t.t.all()
                .iter()
                .map(|id| {
                    let def = t.catalog.table(*id);
                    def.stats.rows * def.schema.row_width() as f64
                })
                .sum();
        let mb = total_bytes / (1024.0 * 1024.0);
        assert!(
            (60.0..200.0).contains(&mb),
            "expected ≈100 MB at SF 0.1, got {mb:.1} MB"
        );
    }

    #[test]
    fn update_order_is_parent_first() {
        let t = tpcd_catalog(0.01);
        let all = t.t.all();
        // Table ids ascend parents→children, which the §5.3 pruning relies
        // on (orders before lineitem, customer before orders, …).
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn pk_indices_cover_all_tables() {
        let t = tpcd_catalog(0.01);
        assert_eq!(t.pk_indices().len(), 8);
    }
}
