//! Benchmark view workloads — one constructor per experiment (§7.2).
//!
//! The paper identifies its workloads by shape: a stand-alone join of four
//! relations (Figure 3), five-view sets with and without aggregation sharing
//! subexpressions (Figure 4), and ten views of three to four relations each
//! (Figure 5). These constructors realize those shapes over the TPC-D
//! schema, with explicit sharing (common join subexpressions), range
//! predicates that exercise subsumption derivations, and aggregate pairs
//! over a common input that exercise the union-grouping roll-up.

use crate::schema::Tpcd;
use mvmqo_relalg::agg::{AggFunc, AggSpec};
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::logical::{LogicalExpr, ViewDef};
use std::sync::Arc;

fn eq(a: mvmqo_relalg::schema::AttrId, b: mvmqo_relalg::schema::AttrId) -> ScalarExpr {
    ScalarExpr::col_eq_col(a, b)
}

fn join(l: Arc<LogicalExpr>, r: Arc<LogicalExpr>, conjuncts: Vec<ScalarExpr>) -> Arc<LogicalExpr> {
    LogicalExpr::join(l, r, Predicate::from_conjuncts(conjuncts))
}

fn select(input: Arc<LogicalExpr>, conjuncts: Vec<ScalarExpr>) -> Arc<LogicalExpr> {
    LogicalExpr::select(input, Predicate::from_conjuncts(conjuncts))
}

/// `lineitem ⋈ orders` with the FK conjunct.
fn l_o(t: &Tpcd) -> Arc<LogicalExpr> {
    join(
        LogicalExpr::scan(t.t.lineitem),
        LogicalExpr::scan(t.t.orders),
        vec![eq(
            t.attr(t.t.lineitem, "l_orderkey"),
            t.attr(t.t.orders, "o_orderkey"),
        )],
    )
}

fn l_o_c(t: &Tpcd) -> Arc<LogicalExpr> {
    join(
        l_o(t),
        LogicalExpr::scan(t.t.customer),
        vec![eq(
            t.attr(t.t.orders, "o_custkey"),
            t.attr(t.t.customer, "c_custkey"),
        )],
    )
}

fn l_o_c_s(t: &Tpcd) -> Arc<LogicalExpr> {
    join(
        l_o_c(t),
        LogicalExpr::scan(t.t.supplier),
        vec![eq(
            t.attr(t.t.lineitem, "l_suppkey"),
            t.attr(t.t.supplier, "s_suppkey"),
        )],
    )
}

fn date_pred(t: &Tpcd, cutoff: i32) -> ScalarExpr {
    ScalarExpr::col_cmp_lit(
        t.attr(t.t.orders, "o_orderdate"),
        CmpOp::Lt,
        mvmqo_relalg::types::Value::Date(cutoff),
    )
}

/// Figure 3(a): a stand-alone view, join of four relations, no aggregation.
/// `V = σ_{o_orderdate < 1200}(lineitem ⋈ orders ⋈ customer ⋈ supplier)`.
pub fn single_join_view(t: &Tpcd) -> Vec<ViewDef> {
    vec![ViewDef::new(
        "fig3_join4",
        select(l_o_c_s(t), vec![date_pred(t, 400)]),
    )]
}

/// Figure 3(b): aggregation on the same join — revenue per customer nation.
pub fn single_agg_view(t: &mut Tpcd) -> Vec<ViewDef> {
    let input = select(l_o_c_s(t), vec![date_pred(t, 400)]);
    let nation = t.attr(t.t.customer, "c_nationkey");
    let price = t.attr(t.t.lineitem, "l_extendedprice");
    let sum_out = t.catalog.fresh_attr();
    let cnt_out = t.catalog.fresh_attr();
    vec![ViewDef::new(
        "fig3_agg4",
        LogicalExpr::aggregate(
            input,
            vec![nation],
            vec![
                AggSpec::new(AggFunc::Sum, ScalarExpr::Col(price), sum_out),
                AggSpec::new(AggFunc::Count, ScalarExpr::Col(price), cnt_out),
            ],
        ),
    )]
}

/// Figure 4(a): five views of the same class, without aggregation, with
/// heavy sharing (`lineitem ⋈ orders [⋈ customer]` recurs) and a range pair
/// (`o_orderdate < 600` ⊑ `< 1200`) that exercises subsumption.
pub fn five_join_views(t: &Tpcd) -> Vec<ViewDef> {
    let v1 = ViewDef::new("fig4_loc", select(l_o_c(t), vec![date_pred(t, 400)]));
    let v2 = ViewDef::new(
        "fig4_locn",
        select(
            join(
                l_o_c(t),
                LogicalExpr::scan(t.t.nation),
                vec![eq(
                    t.attr(t.t.customer, "c_nationkey"),
                    t.attr(t.t.nation, "n_nationkey"),
                )],
            ),
            vec![date_pred(t, 400)],
        ),
    );
    let v3 = ViewDef::new("fig4_loc_narrow", select(l_o_c(t), vec![date_pred(t, 200)]));
    let v4 = ViewDef::new(
        "fig4_pps",
        select(
            join(
                join(
                    LogicalExpr::scan(t.t.part),
                    LogicalExpr::scan(t.t.partsupp),
                    vec![eq(
                        t.attr(t.t.part, "p_partkey"),
                        t.attr(t.t.partsupp, "ps_partkey"),
                    )],
                ),
                LogicalExpr::scan(t.t.supplier),
                vec![eq(
                    t.attr(t.t.partsupp, "ps_suppkey"),
                    t.attr(t.t.supplier, "s_suppkey"),
                )],
            ),
            vec![ScalarExpr::col_cmp_lit(
                t.attr(t.t.part, "p_size"),
                CmpOp::Lt,
                10i64,
            )],
        ),
    );
    let v5 = ViewDef::new(
        "fig4_lo_pri",
        select(
            l_o(t),
            vec![
                date_pred(t, 400),
                ScalarExpr::col_cmp_lit(t.attr(t.t.orders, "o_orderpriority"), CmpOp::Eq, 1i64),
            ],
        ),
    );
    vec![v1, v2, v3, v4, v5]
}

/// Figure 4(b): five views with aggregation. The first two group the *same*
/// input by different attributes, exercising the introduced union-grouping
/// node of §4.2.
pub fn five_agg_views(t: &mut Tpcd) -> Vec<ViewDef> {
    let price = t.attr(t.t.lineitem, "l_extendedprice");
    let qty = t.attr(t.t.lineitem, "l_quantity");
    let nation = t.attr(t.t.customer, "c_nationkey");
    let priority = t.attr(t.t.orders, "o_orderpriority");
    let segment = t.attr(t.t.customer, "c_mktsegment");
    let brand = t.attr(t.t.part, "p_brand");
    let supplycost = t.attr(t.t.partsupp, "ps_supplycost");
    let status = t.attr(t.t.orders, "o_orderstatus");
    let shared_input = select(l_o_c(t), vec![date_pred(t, 400)]);

    let mk = |catalog: &mut mvmqo_relalg::catalog::Catalog,
              name: &str,
              input: Arc<LogicalExpr>,
              group: Vec<mvmqo_relalg::schema::AttrId>,
              func: AggFunc,
              arg: mvmqo_relalg::schema::AttrId| {
        let out = catalog.fresh_attr();
        ViewDef::new(
            name,
            LogicalExpr::aggregate(
                input,
                group,
                vec![AggSpec::new(func, ScalarExpr::Col(arg), out)],
            ),
        )
    };

    let v1 = mk(
        &mut t.catalog,
        "fig4b_by_nation",
        shared_input.clone(),
        vec![nation],
        AggFunc::Sum,
        price,
    );
    let v2 = mk(
        &mut t.catalog,
        "fig4b_by_priority",
        shared_input.clone(),
        vec![priority],
        AggFunc::Sum,
        price,
    );
    let v3 = mk(
        &mut t.catalog,
        "fig4b_by_segment",
        shared_input,
        vec![segment],
        AggFunc::Count,
        qty,
    );
    let lo_input = l_o(t);
    let v4 = mk(
        &mut t.catalog,
        "fig4b_lo_status",
        lo_input,
        vec![status],
        AggFunc::Sum,
        price,
    );
    let pps = join(
        LogicalExpr::scan(t.t.part),
        LogicalExpr::scan(t.t.partsupp),
        vec![eq(
            t.attr(t.t.part, "p_partkey"),
            t.attr(t.t.partsupp, "ps_partkey"),
        )],
    );
    let v5 = mk(
        &mut t.catalog,
        "fig4b_pps_brand",
        pps,
        vec![brand],
        AggFunc::Sum,
        supplycost,
    );
    vec![v1, v2, v3, v4, v5]
}

/// Figure 5: ten views, each a join of three to four TPC-D relations, with
/// selections; several share `lineitem ⋈ orders`, `part ⋈ partsupp`, and a
/// subsumable date range.
pub fn ten_views(t: &Tpcd) -> Vec<ViewDef> {
    let li = t.t.lineitem;
    let or = t.t.orders;
    let cu = t.t.customer;
    let su = t.t.supplier;
    let pa = t.t.part;
    let ps = t.t.partsupp;
    let na = t.t.nation;
    let re = t.t.region;

    let p_ps = || {
        join(
            LogicalExpr::scan(pa),
            LogicalExpr::scan(ps),
            vec![eq(t.attr(pa, "p_partkey"), t.attr(ps, "ps_partkey"))],
        )
    };

    let mut views = vec![ViewDef::new(
        "t10_loc",
        select(l_o_c(t), vec![date_pred(t, 400)]),
    )];
    // 2. σ_{date<1500}(l ⋈ o ⋈ c ⋈ n)
    views.push(ViewDef::new(
        "t10_locn",
        select(
            join(
                l_o_c(t),
                LogicalExpr::scan(na),
                vec![eq(t.attr(cu, "c_nationkey"), t.attr(na, "n_nationkey"))],
            ),
            vec![date_pred(t, 400)],
        ),
    ));
    // 3. σ_{l_shipdate<1000}(l ⋈ o ⋈ s)
    views.push(ViewDef::new(
        "t10_los",
        select(
            join(
                l_o(t),
                LogicalExpr::scan(su),
                vec![eq(t.attr(li, "l_suppkey"), t.attr(su, "s_suppkey"))],
            ),
            vec![ScalarExpr::col_cmp_lit(
                t.attr(li, "l_shipdate"),
                CmpOp::Lt,
                mvmqo_relalg::types::Value::Date(300),
            )],
        ),
    ));
    // 4. σ_{p_size<25}(l ⋈ p ⋈ s)
    views.push(ViewDef::new(
        "t10_lps",
        select(
            join(
                join(
                    LogicalExpr::scan(li),
                    LogicalExpr::scan(pa),
                    vec![eq(t.attr(li, "l_partkey"), t.attr(pa, "p_partkey"))],
                ),
                LogicalExpr::scan(su),
                vec![eq(t.attr(li, "l_suppkey"), t.attr(su, "s_suppkey"))],
            ),
            vec![ScalarExpr::col_cmp_lit(
                t.attr(pa, "p_size"),
                CmpOp::Lt,
                10i64,
            )],
        ),
    ));
    // 5. σ_{p_size<25}(p ⋈ ps ⋈ s)
    views.push(ViewDef::new(
        "t10_pps",
        select(
            join(
                p_ps(),
                LogicalExpr::scan(su),
                vec![eq(t.attr(ps, "ps_suppkey"), t.attr(su, "s_suppkey"))],
            ),
            vec![ScalarExpr::col_cmp_lit(
                t.attr(pa, "p_size"),
                CmpOp::Lt,
                10i64,
            )],
        ),
    ));
    // 6. ps ⋈ s ⋈ n
    views.push(ViewDef::new(
        "t10_pssn",
        join(
            join(
                LogicalExpr::scan(ps),
                LogicalExpr::scan(su),
                vec![eq(t.attr(ps, "ps_suppkey"), t.attr(su, "s_suppkey"))],
            ),
            LogicalExpr::scan(na),
            vec![eq(t.attr(su, "s_nationkey"), t.attr(na, "n_nationkey"))],
        ),
    ));
    // 7. σ_{c_mktsegment=2}(o ⋈ c ⋈ n)
    views.push(ViewDef::new(
        "t10_ocn",
        select(
            join(
                join(
                    LogicalExpr::scan(or),
                    LogicalExpr::scan(cu),
                    vec![eq(t.attr(or, "o_custkey"), t.attr(cu, "c_custkey"))],
                ),
                LogicalExpr::scan(na),
                vec![eq(t.attr(cu, "c_nationkey"), t.attr(na, "n_nationkey"))],
            ),
            vec![ScalarExpr::col_cmp_lit(
                t.attr(cu, "c_mktsegment"),
                CmpOp::Eq,
                2i64,
            )],
        ),
    ));
    // 8. σ_{date<750}(l ⋈ o ⋈ c) — range-subsumed by view 1.
    views.push(ViewDef::new(
        "t10_loc_narrow",
        select(l_o_c(t), vec![date_pred(t, 200)]),
    ));
    // 9. σ_{p_size<10}(l ⋈ p ⋈ ps) — lineitem and partsupp both reference
    // part.
    views.push(ViewDef::new(
        "t10_lpps",
        select(
            join(
                join(
                    LogicalExpr::scan(li),
                    LogicalExpr::scan(pa),
                    vec![eq(t.attr(li, "l_partkey"), t.attr(pa, "p_partkey"))],
                ),
                LogicalExpr::scan(ps),
                vec![eq(t.attr(pa, "p_partkey"), t.attr(ps, "ps_partkey"))],
            ),
            vec![ScalarExpr::col_cmp_lit(
                t.attr(pa, "p_size"),
                CmpOp::Lt,
                10i64,
            )],
        ),
    ));
    // 10. s ⋈ n ⋈ r
    views.push(ViewDef::new(
        "t10_snr",
        join(
            join(
                LogicalExpr::scan(su),
                LogicalExpr::scan(na),
                vec![eq(t.attr(su, "s_nationkey"), t.attr(na, "n_nationkey"))],
            ),
            LogicalExpr::scan(re),
            vec![eq(t.attr(na, "n_regionkey"), t.attr(re, "r_regionkey"))],
        ),
    ));
    views
}

/// Scaling workload for the optimization-time benchmark: `n` distinct views
/// drawn from parameterized families over the TPC-D schema (the §7.5
/// axis — optimization time as the view set grows).
///
/// Each family shares a join core across its members (`lineitem ⋈ orders
/// [⋈ …]`, `part ⋈ partsupp ⋈ supplier`, …) while varying a selection
/// constant per member, so a growing set exercises exactly what the
/// re-entrant optimizer must be fast at: heavy node sharing, long
/// subsumption chains of range predicates, and a candidate space that
/// grows with every added view. Views are deterministic in `n`: the first
/// `k` views of `many_views(t, n)` equal `many_views(t, k)`, which lets
/// the benchmark add "one more view" to a prefix.
pub fn many_views(t: &Tpcd, n: usize) -> Vec<ViewDef> {
    let li = t.t.lineitem;
    let or = t.t.orders;
    let cu = t.t.customer;
    let su = t.t.supplier;
    let pa = t.t.part;
    let ps = t.t.partsupp;
    let na = t.t.nation;

    let mut views = Vec::with_capacity(n);
    for i in 0..n {
        let round = (i / 5) as i64;
        let v = match i % 5 {
            // Family 0: σ_{o_orderdate < c}(l ⋈ o ⋈ c) — range chain over
            // the shared 3-way core (subsumption derivations between
            // every pair of cutoffs).
            0 => ViewDef::new(
                format!("mv{i}_loc"),
                select(l_o_c(t), vec![date_pred(t, 100 + 60 * round as i32)]),
            ),
            // Family 1: σ_{l_shipdate < c}(l ⋈ o ⋈ c ⋈ s) — four relations
            // (the Figure-5 shape), sharing the l⋈o⋈c core with family 0.
            1 => ViewDef::new(
                format!("mv{i}_locs"),
                select(
                    join(
                        l_o_c(t),
                        LogicalExpr::scan(su),
                        vec![eq(t.attr(li, "l_suppkey"), t.attr(su, "s_suppkey"))],
                    ),
                    vec![ScalarExpr::col_cmp_lit(
                        t.attr(li, "l_shipdate"),
                        CmpOp::Lt,
                        mvmqo_relalg::types::Value::Date(120 + 60 * round as i32),
                    )],
                ),
            ),
            // Family 2: σ_{p_size < c}(p ⋈ ps ⋈ s).
            2 => ViewDef::new(
                format!("mv{i}_pps"),
                select(
                    join(
                        join(
                            LogicalExpr::scan(pa),
                            LogicalExpr::scan(ps),
                            vec![eq(t.attr(pa, "p_partkey"), t.attr(ps, "ps_partkey"))],
                        ),
                        LogicalExpr::scan(su),
                        vec![eq(t.attr(ps, "ps_suppkey"), t.attr(su, "s_suppkey"))],
                    ),
                    vec![ScalarExpr::col_cmp_lit(
                        t.attr(pa, "p_size"),
                        CmpOp::Lt,
                        5 + 3 * round,
                    )],
                ),
            ),
            // Family 3: σ_{c_mktsegment = k}(o ⋈ c ⋈ n ⋈ r) — four
            // relations with point predicates (no subsumption chain,
            // distinct nodes per member).
            3 => ViewDef::new(
                format!("mv{i}_ocnr"),
                select(
                    join(
                        join(
                            join(
                                LogicalExpr::scan(or),
                                LogicalExpr::scan(cu),
                                vec![eq(t.attr(or, "o_custkey"), t.attr(cu, "c_custkey"))],
                            ),
                            LogicalExpr::scan(na),
                            vec![eq(t.attr(cu, "c_nationkey"), t.attr(na, "n_nationkey"))],
                        ),
                        LogicalExpr::scan(t.t.region),
                        vec![eq(
                            t.attr(na, "n_regionkey"),
                            t.attr(t.t.region, "r_regionkey"),
                        )],
                    ),
                    vec![ScalarExpr::col_cmp_lit(
                        t.attr(cu, "c_mktsegment"),
                        CmpOp::Eq,
                        round % 5,
                    )],
                ),
            ),
            // Family 4: σ_{o_orderpriority = k, o_orderdate < c}(l ⋈ o) —
            // two-conjunct selections over the most-shared core.
            _ => ViewDef::new(
                format!("mv{i}_lo"),
                select(
                    l_o(t),
                    vec![
                        date_pred(t, 150 + 60 * round as i32),
                        ScalarExpr::col_cmp_lit(
                            t.attr(or, "o_orderpriority"),
                            CmpOp::Eq,
                            round % 5,
                        ),
                    ],
                ),
            ),
        };
        views.push(v);
    }
    views
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::tpcd_catalog;

    #[test]
    fn all_workload_views_validate() {
        let mut t = tpcd_catalog(0.01);
        for v in single_join_view(&t) {
            v.expr.validate(&t.catalog).unwrap();
        }
        for v in single_agg_view(&mut t) {
            v.expr.validate(&t.catalog).unwrap();
        }
        for v in five_join_views(&t) {
            v.expr.validate(&t.catalog).unwrap();
        }
        for v in five_agg_views(&mut t) {
            v.expr.validate(&t.catalog).unwrap();
        }
        for v in ten_views(&t) {
            v.expr.validate(&t.catalog).unwrap();
        }
    }

    #[test]
    fn workload_shapes_match_the_paper() {
        let mut t = tpcd_catalog(0.01);
        assert_eq!(single_join_view(&t).len(), 1);
        assert_eq!(single_agg_view(&mut t).len(), 1);
        assert_eq!(five_join_views(&t).len(), 5);
        assert_eq!(five_agg_views(&mut t).len(), 5);
        assert_eq!(ten_views(&t).len(), 10);
        // Fig 3: join of exactly four relations.
        let v = &single_join_view(&t)[0];
        assert_eq!(v.expr.base_tables().len(), 4);
        // Fig 5: each view joins three or four relations.
        for v in ten_views(&t) {
            let n = v.expr.base_tables().len();
            assert!((3..=4).contains(&n), "{} joins {n}", v.name);
        }
    }

    #[test]
    fn shared_subexpressions_unify_across_ten_views() {
        let mut t = tpcd_catalog(0.01);
        let views = ten_views(&t);
        let (dag, report) = mvmqo_core::api::build_dag(&mut t.catalog, &views);
        // l⋈o is shared; the DAG must be far smaller than 10 disjoint
        // expansions.
        assert!(dag.eq_count() < 10 * 15);
        // The narrow/wide date pair produces at least one subsumption
        // derivation.
        assert!(report.select_derivations + report.range_derivations >= 1);
    }

    #[test]
    fn many_views_scales_and_prefixes_are_stable() {
        let t = tpcd_catalog(0.01);
        for n in [1, 10, 25] {
            let views = many_views(&t, n);
            assert_eq!(views.len(), n);
            for v in &views {
                v.expr.validate(&t.catalog).unwrap();
            }
            // Distinct names.
            let mut names: Vec<&str> = views.iter().map(|v| v.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), n);
        }
        // Prefix property: many_views(n)[..k] ≡ many_views(k).
        let big = many_views(&t, 25);
        let small = many_views(&t, 10);
        for (a, b) in big.iter().zip(&small) {
            assert_eq!(a.name, b.name);
        }
        // Sharing: the DAG over 25 views is far smaller than 25 disjoint
        // expansions.
        let mut t2 = tpcd_catalog(0.01);
        let (dag, report) = mvmqo_core::api::build_dag(&mut t2.catalog, &big);
        assert!(dag.eq_count() < 25 * 15);
        assert!(report.select_derivations + report.range_derivations >= 10);
    }

    #[test]
    fn agg_pair_produces_rollup() {
        let mut t = tpcd_catalog(0.01);
        let views = five_agg_views(&mut t);
        let (_, report) = mvmqo_core::api::build_dag(&mut t.catalog, &views);
        assert!(report.introduced_group_nodes >= 1);
        assert!(report.aggregate_rollups >= 2);
    }
}
