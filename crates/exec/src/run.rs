//! Maintenance-program execution (§3.2.2 semantics).
//!
//! [`execute_program`] drives one refresh cycle: populate the materialized
//! results on the pre-update state, then propagate updates one relation and
//! one kind at a time — computing temporary differentials, evaluating every
//! merge's delta plan *before* any merge is applied (all plans must see the
//! state with updates `< u`), merging, applying the base delta, and
//! invalidating stale temporaries — and finally refreshing
//! recompute-strategy views.
//!
//! [`execute_epoch`] is the long-lived variant: the caller owns a
//! [`RuntimeState`] that carries the materialized results (and their hidden
//! aggregate/distinct support state and indices) from one epoch to the
//! next, so permanent materializations are maintained in place rather than
//! rebuilt every cycle.

use crate::error::ExecError;
use crate::meter::Meter;
use crate::runtime::{Runtime, RuntimeState};
use mvmqo_core::cost::CostModel;
use mvmqo_core::dag::{Dag, EqId};
use mvmqo_core::opt::StoredRef;
use mvmqo_core::plan::{MergeKind, Program};
use mvmqo_relalg::batch::Batch;
use mvmqo_relalg::catalog::Catalog;
use mvmqo_relalg::schema::AttrId;
use mvmqo_relalg::tuple::Tuple;
use mvmqo_storage::database::Database;
use mvmqo_storage::delta::{DeltaBatch, DeltaKind, DeltaSet};
use mvmqo_storage::faults::FaultRegistry;
use mvmqo_storage::index::IndexKind;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Outcome of one executed refresh cycle.
#[derive(Debug)]
pub struct ExecReport {
    /// Modeled cost of initial population of views/permanent results
    /// (one-time; not part of maintenance cost, §6.1).
    pub setup_seconds: f64,
    /// Modeled cost of the maintenance run itself — the executed
    /// counterpart of the paper's estimated "Plan Cost".
    pub maintenance_seconds: f64,
    /// Detailed maintenance meter.
    pub maintenance_meter: Meter,
    /// Final contents per view (the refreshed multisets; tests compare them
    /// against recomputation). Empty when the epoch ran with
    /// [`ExecOptions::collect_view_rows`] off — the maintained state stays
    /// columnar and rows are materialized on demand instead.
    pub view_rows: BTreeMap<String, Vec<Tuple>>,
    /// Views that fell back to recomputation mid-run (MIN/MAX deletions).
    pub forced_recomputes: usize,
    /// Full results (re)computed during the setup phase. Zero when every
    /// maintained result was served from a persisted [`RuntimeState`] —
    /// the signal that nothing was rebuilt across epochs.
    pub setup_builds: usize,
    /// Full results (re)computed over the whole cycle (setup + on-demand
    /// temporaries + final recomputes).
    pub total_builds: usize,
}

/// Executor scheduling options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Execute independent plan roots of each epoch phase concurrently
    /// (scoped threads). Results are bag-identical to serial execution:
    /// every parallel evaluation reads the same pre-phase state, and all
    /// merges/stores are applied serially in program order.
    ///
    /// On a single-hardware-thread host the request is ignored (see
    /// [`effective_parallel`]): the scheduler's levelling overhead cannot
    /// be repaid without a second core.
    pub parallel: bool,
    /// Materialize every view's rows into [`ExecReport::view_rows`] at the
    /// end of the epoch. Long-lived engines that serve reads on demand
    /// (the warehouse `query` path) turn this off — view state then stays
    /// columnar across epochs and rows are only built when a user asks.
    pub collect_view_rows: bool,
    /// Run the parallel scheduler even on a 1-thread host, bypassing the
    /// [`effective_parallel`] auto-disable. For tests and benchmarks that
    /// must exercise the parallel code path regardless of the machine —
    /// without it, the parallel≡serial property test is vacuous on
    /// single-core CI.
    pub force_parallel: bool,
    /// Worker-thread budget for the epoch when `parallel` is on: root-level
    /// workers across independent plans plus morsel-level workers inside
    /// operators (partitioned join build/probe, partition-parallel grouped
    /// aggregation, parallel filters and delta scans). `0` means "auto" —
    /// use [`std::thread::available_parallelism`]. Ignored when `parallel`
    /// is off; the serial path always runs with one thread and is the
    /// reference the parallel path is property-tested against.
    pub threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallel: false,
            collect_view_rows: true,
            force_parallel: false,
            threads: 0,
        }
    }
}

impl ExecOptions {
    pub fn serial() -> Self {
        ExecOptions::default()
    }

    pub fn parallel() -> Self {
        ExecOptions {
            parallel: true,
            ..ExecOptions::default()
        }
    }

    /// Parallel options pinned to an explicit worker count (`0` = auto).
    pub fn parallel_with_threads(threads: usize) -> Self {
        ExecOptions {
            parallel: true,
            threads,
            ..ExecOptions::default()
        }
    }

    /// Resolve this option set to a concrete worker count for one epoch:
    /// `1` when the scheduler is serial (or auto-disabled on a 1-thread
    /// host and not forced), otherwise the explicit `threads` value or the
    /// host's available parallelism for `0`/auto.
    pub fn resolved_threads(&self) -> usize {
        let parallel = if self.force_parallel {
            self.parallel
        } else {
            effective_parallel(self.parallel)
        };
        if !parallel {
            return 1;
        }
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Resolve a parallel-scheduler request against the host: with one
/// hardware thread the epoch runs serially (the scheduler would only add
/// levelling overhead — measured slower on 1-core containers).
pub fn effective_parallel(requested: bool) -> bool {
    requested && std::thread::available_parallelism().map_or(1, |n| n.get()) > 1
}

/// One-line scheduler description for `explain`/CLI output, naming the
/// worker count the epoch will actually run with and the auto-disable when
/// it bites.
pub fn scheduler_description(options: ExecOptions) -> String {
    if !options.parallel {
        return "serial".to_string();
    }
    let threads = options.resolved_threads();
    if threads > 1 {
        format!("parallel ({threads} threads)")
    } else if options.threads == 1 {
        "parallel (1 thread)".to_string()
    } else {
        "parallel requested, 1 thread available, running serial".to_string()
    }
}

/// Indices the executor must realize before running.
#[derive(Debug, Clone, Default)]
pub struct IndexPlan {
    /// Indices on base tables (initial + chosen).
    pub base: Vec<(mvmqo_relalg::catalog::TableId, AttrId)>,
    /// Indices on materialized nodes (chosen).
    pub mats: Vec<(EqId, AttrId)>,
}

/// Execute a maintenance program against `db`, applying `deltas`.
///
/// On return, `db` holds the post-update base tables, and every view has
/// been refreshed (incrementally or by recomputation, per the program).
/// One-shot: materialized state is built and dropped within the call.
pub fn execute_program(
    dag: &Dag,
    catalog: &Catalog,
    model: CostModel,
    db: &mut Database,
    deltas: &DeltaSet,
    program: &Program,
    indices: &IndexPlan,
) -> Result<ExecReport, ExecError> {
    let mut state = RuntimeState::new();
    execute_epoch(
        dag, catalog, model, db, deltas, program, indices, &mut state,
    )
}

/// Execute one maintenance epoch, resuming from (and persisting back into)
/// `state`. Pass the same `state` across consecutive epochs of the same
/// program so permanent materializations and view contents survive; drop
/// the state whenever the program is re-optimized (node ids change).
#[allow(clippy::too_many_arguments)]
pub fn execute_epoch(
    dag: &Dag,
    catalog: &Catalog,
    model: CostModel,
    db: &mut Database,
    deltas: &DeltaSet,
    program: &Program,
    indices: &IndexPlan,
    state: &mut RuntimeState,
) -> Result<ExecReport, ExecError> {
    execute_epoch_opts(
        dag,
        catalog,
        model,
        db,
        deltas,
        program,
        indices,
        state,
        ExecOptions::serial(),
    )
}

/// [`execute_epoch`] with explicit scheduling options (the warehouse
/// engine's serial-vs-parallel knob).
#[allow(clippy::too_many_arguments)]
pub fn execute_epoch_opts(
    dag: &Dag,
    catalog: &Catalog,
    model: CostModel,
    db: &mut Database,
    deltas: &DeltaSet,
    program: &Program,
    indices: &IndexPlan,
    state: &mut RuntimeState,
    options: ExecOptions,
) -> Result<ExecReport, ExecError> {
    execute_epoch_faults(
        dag,
        catalog,
        model,
        db,
        deltas,
        program,
        indices,
        state,
        options,
        FaultRegistry::none(),
    )
}

/// [`execute_epoch_opts`] with a live fault-injection registry: every
/// operator evaluation, merge, and base-delta application checks it, so
/// the chaos tests can fail the epoch at any site.
///
/// On `Err`, `db` and `state` may hold partially-applied work — `state` is
/// taken (left default) at entry and only written back on success. Callers
/// wanting all-or-nothing semantics must run against *staged clones* and
/// install them only on `Ok` (the warehouse transactional-epoch path does
/// exactly that; cloning is cheap because stored tables are copy-on-write).
#[allow(clippy::too_many_arguments)]
pub fn execute_epoch_faults(
    dag: &Dag,
    catalog: &Catalog,
    model: CostModel,
    db: &mut Database,
    deltas: &DeltaSet,
    program: &Program,
    indices: &IndexPlan,
    state: &mut RuntimeState,
    options: ExecOptions,
    faults: &FaultRegistry,
) -> Result<ExecReport, ExecError> {
    // Resolve the scheduler once: a parallel request on a 1-thread host
    // runs serially (see `effective_parallel`) unless explicitly forced
    // (tests covering the parallel path on single-core machines), and the
    // worker budget is pinned for the whole epoch so every phase sees the
    // same thread count.
    let threads = options.resolved_threads();
    let options = ExecOptions {
        parallel: if options.force_parallel {
            options.parallel
        } else {
            effective_parallel(options.parallel)
        },
        ..options
    };
    // Realize base indices. Skip ones that already exist: the storage
    // layer keeps indices in sync as deltas apply, so across epochs they
    // persist rather than being rebuilt.
    for (t, attr) in &indices.base {
        if db.base(*t)?.index_on(*attr).is_none() {
            db.create_base_index(*t, *attr, IndexKind::Hash)?;
        }
    }
    let mut mat_indices: HashMap<EqId, Vec<AttrId>> = HashMap::new();
    for (e, attr) in &indices.mats {
        mat_indices.entry(*e).or_default().push(*attr);
    }
    let mut rt = Runtime::with_state(
        dag,
        catalog,
        model,
        db,
        deltas,
        program.full_plans.clone(),
        mat_indices,
        std::mem::take(state),
    );
    if options.parallel {
        rt.set_threads(threads);
    }
    rt.set_faults(faults);

    // ------------------------------------------------------------------
    // Setup: populate views and permanent extras on the OLD state. Under
    // the parallel scheduler, independent full plans of one dependency
    // level are evaluated concurrently.
    // ------------------------------------------------------------------
    let setup_targets: Vec<EqId> = program
        .views
        .iter()
        .map(|(_, e)| *e)
        .chain(program.permanent_mats.iter().copied())
        .collect();
    rt.materialize_many(&setup_targets, options.parallel)?;
    let setup_meter = rt.meter.clone();
    let setup_seconds = setup_meter.seconds;
    let setup_builds = rt.full_builds;

    // Incrementally maintained results: they are merged when affected and
    // exactly unchanged when their differential is empty (independence or
    // §5.3 FK pruning), so they always survive invalidation.
    let mut maintained: HashSet<EqId> = program.permanent_mats.iter().copied().collect();
    for (_, e) in &program.views {
        if !program.final_recomputes.contains(e) {
            maintained.insert(*e);
        }
    }

    // ------------------------------------------------------------------
    // Propagation: one relation, one update kind at a time.
    // ------------------------------------------------------------------
    let mut forced_recomputes = 0usize;
    for step in &program.steps {
        let u = step.update.id;
        let kind = step.update.kind;
        let table = step.update.table;

        // 1. Temporarily materialized differentials (bottom-up order).
        // A later differential may read an earlier one (`ReadDelta`), so
        // the parallel scheduler levels them by those references and runs
        // each level concurrently; stores stay in program order.
        if options.parallel && step.temp_deltas.len() > 1 {
            let temp_ids: Vec<EqId> = step.temp_deltas.iter().map(|(e, _)| *e).collect();
            let plan_of: HashMap<EqId, &mvmqo_core::plan::PhysPlan> = step
                .temp_deltas
                .iter()
                .map(|(e, plan)| (*e, plan))
                .collect();
            let in_set: HashSet<EqId> = temp_ids.iter().copied().collect();
            let levels = crate::runtime::level_items(&temp_ids, |e| {
                crate::runtime::delta_refs(plan_of[&e], u)
                    .into_iter()
                    .filter(|d| in_set.contains(d) && *d != e)
                    .collect()
            });
            for level in levels {
                for e in &level {
                    rt.prepare(plan_of[e])?;
                }
                let plans: Vec<&mvmqo_core::plan::PhysPlan> =
                    level.iter().map(|e| plan_of[e]).collect();
                let results = crate::runtime::eval_parallel(&rt, &plans)?;
                for (e, (batch, meter)) in level.into_iter().zip(results) {
                    rt.meter.absorb(&meter);
                    rt.store_delta(e, u, batch);
                }
            }
        } else {
            for (e, plan) in &step.temp_deltas {
                let batch = rt.eval_batch(plan)?;
                rt.store_delta(*e, u, batch);
            }
        }

        // 2. Evaluate all merge deltas against the pre-step state (all of
        // them before any merge applies, so every plan sees updates < u;
        // that same independence is what lets them run concurrently)...
        let mut merge_batches: Vec<(usize, Batch)> = Vec::with_capacity(step.merges.len());
        if options.parallel && step.merges.len() > 1 {
            for merge in &step.merges {
                rt.prepare(&merge.delta_plan)?;
            }
            let plans: Vec<&mvmqo_core::plan::PhysPlan> =
                step.merges.iter().map(|m| &m.delta_plan).collect();
            let results = crate::runtime::eval_parallel(&rt, &plans)?;
            for (i, (batch, meter)) in results.into_iter().enumerate() {
                rt.meter.absorb(&meter);
                merge_batches.push((i, batch));
            }
        } else {
            for (i, merge) in step.merges.iter().enumerate() {
                merge_batches.push((i, rt.eval_batch(&merge.delta_plan)?));
            }
        }
        // ...then apply them, columnar end-to-end.
        for (i, batch) in merge_batches {
            let merge = &step.merges[i];
            match &merge.kind {
                MergeKind::Plain => rt.merge_plain(merge.target, batch, kind)?,
                MergeKind::Aggregate { .. } => {
                    if rt.merge_aggregate(merge.target, batch, kind)? {
                        forced_recomputes += 1;
                    }
                }
                MergeKind::Distinct => rt.merge_distinct(merge.target, batch, kind)?,
            }
        }

        // 3. Apply the base delta for this (relation, kind).
        let batch = match kind {
            DeltaKind::Insert => {
                DeltaBatch::new(deltas.side(table, DeltaKind::Insert).to_vec(), vec![])
            }
            DeltaKind::Delete => {
                DeltaBatch::new(vec![], deltas.side(table, DeltaKind::Delete).to_vec())
            }
        };
        let width = catalog.table(table).schema.row_width();
        let batch_len = batch.inserts.len() + batch.deletes.len();
        faults.hit("exec:apply-base-delta")?;
        rt.db.apply_base_delta(table, &batch)?;
        rt.meter.charge_seq(&model, batch_len, width);

        // 4. Invalidate stale temporaries; maintained results stay fresh.
        rt.invalidate_depending(table, &maintained);
        rt.clear_deltas(u);
    }

    // ------------------------------------------------------------------
    // Finalize: recompute-strategy views, drop temporaries.
    // ------------------------------------------------------------------
    for e in &program.final_recomputes {
        rt.drop_mat(*e);
    }
    rt.materialize_many(&program.final_recomputes, options.parallel)?;
    for e in &program.temporary_mats {
        rt.drop_mat(*e);
    }

    let mut view_rows: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
    for (name, e) in &program.views {
        // Views must be materialized at the end of the cycle; rows are
        // only built when the caller asked for them — the one
        // user-facing row conversion of the epoch.
        let table = rt.materialize(*e)?;
        let rows = if options.collect_view_rows {
            table.batch().to_rows()
        } else {
            Vec::new()
        };
        view_rows.insert(name.clone(), rows);
    }

    let total = rt.meter.clone();
    let maintenance_meter = Meter {
        seconds: total.seconds - setup_meter.seconds,
        tuples_processed: total.tuples_processed - setup_meter.tuples_processed,
        blocks_io: total.blocks_io - setup_meter.blocks_io,
        random_pages: total.random_pages - setup_meter.random_pages,
    };
    let total_builds = rt.full_builds;
    *state = rt.take_state();
    Ok(ExecReport {
        setup_seconds,
        maintenance_seconds: maintenance_meter.seconds,
        maintenance_meter,
        view_rows,
        forced_recomputes,
        setup_builds,
        total_builds,
    })
}

/// Collect the executor-facing index plan from an optimizer report.
pub fn index_plan_from_report(
    initial: &[(mvmqo_relalg::catalog::TableId, AttrId)],
    report: &mvmqo_core::api::OptimizerReport,
) -> IndexPlan {
    let mut plan = IndexPlan {
        base: initial.to_vec(),
        mats: Vec::new(),
    };
    for choice in &report.chosen_indices {
        match choice.target {
            StoredRef::Base(t) => plan.base.push((t, choice.attr)),
            StoredRef::Mat(e) => plan.mats.push((e, choice.attr)),
        }
    }
    plan
}

/// Fetch the final rows of a view by name after execution; helper for tests
/// and examples that re-run the runtime read-only.
pub fn view_root(program: &Program, name: &str) -> Option<EqId> {
    program
        .views
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, e)| *e)
}
