//! Reference evaluator: direct, naive evaluation of a [`LogicalExpr`]
//! against the current database state.
//!
//! This is the executor's ground truth. Integration tests compute every
//! view incrementally through optimizer-chosen plans and compare, as
//! multisets, against this evaluator run on the post-update database —
//! the correctness check the paper's authors could not perform (§7.1).

use mvmqo_relalg::agg::Accumulator;
use mvmqo_relalg::catalog::Catalog;
use mvmqo_relalg::logical::LogicalExpr;
use mvmqo_relalg::schema::Schema;
use mvmqo_relalg::tuple::{bag_minus, bag_union, concat_tuples, Tuple};
use mvmqo_relalg::types::Value;
use mvmqo_storage::database::Database;
use std::collections::HashMap;

/// Evaluate a logical expression directly over `db`.
// Invariants, not input validation: the logical expression comes from the
// catalog-validated view registry, so referenced tables are loaded and
// projected/grouped attributes exist in their input schemas by
// construction. This evaluator is ground truth for tests and `verify` —
// drifting from it silently would be worse than failing loudly.
#[allow(clippy::expect_used)]
pub fn eval_logical(expr: &LogicalExpr, catalog: &Catalog, db: &Database) -> Vec<Tuple> {
    match expr {
        LogicalExpr::Scan { table } => db.base(*table).expect("base table loaded").rows().to_vec(),
        LogicalExpr::Select { input, predicate } => {
            let schema = input.schema(catalog);
            eval_logical(input, catalog, db)
                .into_iter()
                .filter(|r| predicate.matches(r, &schema))
                .collect()
        }
        LogicalExpr::Project { input, attrs } => {
            let schema = input.schema(catalog);
            let positions: Vec<usize> = attrs
                .iter()
                .map(|a| schema.position_of(*a).expect("project attr"))
                .collect();
            eval_logical(input, catalog, db)
                .into_iter()
                .map(|r| positions.iter().map(|&i| r[i].clone()).collect())
                .collect()
        }
        LogicalExpr::Join {
            left,
            right,
            predicate,
        } => {
            let ls = left.schema(catalog);
            let rs = right.schema(catalog);
            let combined = ls.concat(&rs);
            let lrows = eval_logical(left, catalog, db);
            let rrows = eval_logical(right, catalog, db);
            let mut out = Vec::new();
            for l in &lrows {
                for r in &rrows {
                    let joined = concat_tuples(l, r);
                    if predicate.is_true() || predicate.matches(&joined, &combined) {
                        out.push(joined);
                    }
                }
            }
            out
        }
        LogicalExpr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let schema = input.schema(catalog);
            let rows = eval_logical(input, catalog, db);
            aggregate_reference(&rows, &schema, group_by, aggs)
        }
        LogicalExpr::UnionAll { left, right } => bag_union(
            &eval_logical(left, catalog, db),
            &eval_logical(right, catalog, db),
        ),
        LogicalExpr::Minus { left, right } => bag_minus(
            &eval_logical(left, catalog, db),
            &eval_logical(right, catalog, db),
        ),
        LogicalExpr::Distinct { input } => {
            let mut seen: HashMap<Tuple, ()> = HashMap::new();
            let mut out = Vec::new();
            for r in eval_logical(input, catalog, db) {
                if seen.insert(r.clone(), ()).is_none() {
                    out.push(r);
                }
            }
            out
        }
    }
}

// Invariant: group-by attributes come from the aggregate's own input
// schema (see `eval_logical`).
#[allow(clippy::expect_used)]
fn aggregate_reference(
    rows: &[Tuple],
    schema: &Schema,
    group_by: &[mvmqo_relalg::schema::AttrId],
    aggs: &[mvmqo_relalg::agg::AggSpec],
) -> Vec<Tuple> {
    let key_pos: Vec<usize> = group_by
        .iter()
        .map(|g| schema.position_of(*g).expect("group attr"))
        .collect();
    let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = key_pos.iter().map(|&i| row[i].clone()).collect();
        let entry = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|s| Accumulator::new(s.func)).collect());
        for (acc, spec) in entry.iter_mut().zip(aggs) {
            acc.add(&spec.input.eval(row, schema));
        }
    }
    let mut out: Vec<Tuple> = groups
        .into_iter()
        .map(|(key, accs)| {
            let mut row = key;
            row.extend(accs.iter().map(Accumulator::finish));
            row
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::agg::{AggFunc, AggSpec};
    use mvmqo_relalg::catalog::ColumnSpec;
    use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
    use mvmqo_relalg::types::DataType;
    use mvmqo_storage::table::StoredTable;

    fn setup() -> (Catalog, Database, mvmqo_relalg::catalog::TableId) {
        let mut c = Catalog::new();
        let t = c.add_table(
            "t",
            vec![
                ColumnSpec::key("k", DataType::Int),
                ColumnSpec::with_distinct("g", DataType::Int, 2.0),
            ],
            4.0,
            &["k"],
        );
        let mut db = Database::new();
        db.put_base(
            t,
            StoredTable::with_rows(
                c.table(t).schema.clone(),
                vec![
                    vec![Value::Int(1), Value::Int(0)],
                    vec![Value::Int(2), Value::Int(1)],
                    vec![Value::Int(3), Value::Int(0)],
                    vec![Value::Int(4), Value::Int(1)],
                ],
            ),
        );
        (c, db, t)
    }

    #[test]
    fn select_filters() {
        let (c, db, t) = setup();
        let g = c.table(t).attr("g");
        let e = LogicalExpr::select(
            LogicalExpr::scan(t),
            Predicate::from_expr(ScalarExpr::col_cmp_lit(g, CmpOp::Eq, 0i64)),
        );
        assert_eq!(eval_logical(&e, &c, &db).len(), 2);
    }

    #[test]
    fn aggregate_counts_groups() {
        let (mut c, db, t) = setup();
        let g = c.table(t).attr("g");
        let k = c.table(t).attr("k");
        let out = c.fresh_attr();
        let e = LogicalExpr::aggregate(
            LogicalExpr::scan(t),
            vec![g],
            vec![AggSpec::new(AggFunc::Sum, ScalarExpr::Col(k), out)],
        );
        let rows = eval_logical(&e, &c, &db);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Value::Int(0), Value::Int(4)]));
        assert!(rows.contains(&vec![Value::Int(1), Value::Int(6)]));
    }

    #[test]
    fn join_is_cartesian_with_filter() {
        let (mut c, mut db, t) = setup();
        let u = c.add_table(
            "u",
            vec![ColumnSpec::key("g2", DataType::Int)],
            2.0,
            &["g2"],
        );
        db.put_base(
            u,
            StoredTable::with_rows(
                c.table(u).schema.clone(),
                vec![vec![Value::Int(0)], vec![Value::Int(1)]],
            ),
        );
        let g = c.table(t).attr("g");
        let g2 = c.table(u).attr("g2");
        let cross = LogicalExpr::Join {
            left: LogicalExpr::scan(t),
            right: LogicalExpr::scan(u),
            predicate: Predicate::true_(),
        };
        assert_eq!(eval_logical(&cross, &c, &db).len(), 8);
        let filtered = LogicalExpr::Join {
            left: LogicalExpr::scan(t),
            right: LogicalExpr::scan(u),
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(g, g2)),
        };
        assert_eq!(eval_logical(&filtered, &c, &db).len(), 4);
    }

    #[test]
    fn distinct_dedups() {
        let (c, mut db, t) = setup();
        let rows = db.base(t).unwrap().rows().to_vec();
        let doubled: Vec<Tuple> = rows.iter().chain(rows.iter()).cloned().collect();
        db.put_base(
            t,
            StoredTable::with_rows(c.table(t).schema.clone(), doubled),
        );
        let e = LogicalExpr::distinct(LogicalExpr::scan(t));
        assert_eq!(eval_logical(&e, &c, &db).len(), 4);
    }
}
