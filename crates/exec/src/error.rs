//! Typed executor errors.
//!
//! Every operator evaluation, materialization, and merge in this crate
//! returns `Result<_, ExecError>` instead of unwinding: schema drift, a
//! plan referencing state that was never prepared, a storage-level failure,
//! an injected fault, or a panicking morsel worker all surface as values
//! the warehouse can catch, abort the epoch on, and retry.

use mvmqo_core::dag::EqId;
use mvmqo_storage::error::StorageError;
use mvmqo_storage::faults::FaultError;
use std::fmt;

/// An operator-level execution failure. The epoch that hit it is aborted
/// by the warehouse; none of its staged state is installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A storage lookup failed (e.g. a scanned base table was never loaded).
    Storage(StorageError),
    /// An injected fault fired (chaos testing).
    Fault(FaultError),
    /// A plan referenced an attribute its input schema does not carry
    /// (schema drift between planner and executor).
    MissingAttr { attr: String, context: &'static str },
    /// A materialization step had no physical plan for its target node.
    MissingPlan(EqId),
    /// A plan read a materialized node that was never prepared.
    MissingMat(EqId),
    /// A plan read a delta that was never stored.
    MissingDelta { node: EqId, update: String },
    /// An index-nested-loop probe found no index on the inner relation.
    MissingIndex { target: String },
    /// A maintained-state invariant did not hold at merge time.
    Invariant(String),
    /// A parallel worker panicked; the message is the panic payload.
    WorkerPanic { message: String },
}

impl ExecError {
    pub fn missing_attr(attr: impl fmt::Display, context: &'static str) -> ExecError {
        ExecError::MissingAttr {
            attr: attr.to_string(),
            context,
        }
    }

    pub fn invariant(msg: impl Into<String>) -> ExecError {
        ExecError::Invariant(msg.into())
    }

    /// Short site label for abort reporting (`EpochAborted { site, .. }`).
    pub fn site(&self) -> String {
        match self {
            ExecError::Storage(_) => "exec:storage".to_string(),
            ExecError::Fault(f) => f.site.clone(),
            ExecError::MissingAttr { context, .. } => format!("exec:{context}"),
            ExecError::MissingPlan(_) => "exec:plan".to_string(),
            ExecError::MissingMat(_) => "exec:read-mat".to_string(),
            ExecError::MissingDelta { .. } => "exec:read-delta".to_string(),
            ExecError::MissingIndex { .. } => "exec:index-nl-join".to_string(),
            ExecError::Invariant(_) => "exec:merge".to_string(),
            ExecError::WorkerPanic { .. } => "exec:worker".to_string(),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage: {e}"),
            ExecError::Fault(e) => write!(f, "{e}"),
            ExecError::MissingAttr { attr, context } => {
                write!(f, "attribute {attr} missing from input schema in {context}")
            }
            ExecError::MissingPlan(e) => write!(f, "no physical plan for materialized node {e}"),
            ExecError::MissingMat(e) => write!(f, "materialized node {e} not prepared"),
            ExecError::MissingDelta { node, update } => {
                write!(f, "delta ({node},{update}) not stored")
            }
            ExecError::MissingIndex { target } => {
                write!(f, "no index on inner relation {target} of index join")
            }
            ExecError::Invariant(msg) => write!(f, "executor invariant violated: {msg}"),
            ExecError::WorkerPanic { message } => {
                write!(f, "parallel worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> ExecError {
        ExecError::Storage(e)
    }
}

impl From<FaultError> for ExecError {
    fn from(e: FaultError) -> ExecError {
        ExecError::Fault(e)
    }
}

/// Render a `catch_unwind` payload as a message (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
