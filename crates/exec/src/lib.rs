//! # mvmqo-exec
//!
//! Multiset execution engine for `mvmqo` maintenance programs. The paper
//! evaluated with estimated costs only ("since we do not currently have a
//! query execution engine ... we are unable to get actual numbers", §7.1);
//! this crate closes that gap:
//!
//! * [`runtime`] — *vectorized* plan evaluation over columnar
//!   [`mvmqo_relalg::batch::Batch`]es (hash / merge / nested-loop / index
//!   nested-loop joins, aggregation, multiset union/difference; filters
//!   and projections are selection-vector/column updates, joins build
//!   borrowed-key hash tables and gather row-id pairs once), stored
//!   materializations with on-demand recomputation, aggregate/distinct
//!   merge with hidden support state;
//! * [`run`] — drives a [`mvmqo_core::plan::Program`] through one refresh
//!   cycle with the one-relation-one-kind-at-a-time semantics of §3.2.2;
//!   [`ExecOptions::parallel`] levels each phase's independent plan roots
//!   and evaluates them on scoped threads, deterministically;
//! * [`mod@reference`] — a naive ground-truth evaluator used to verify that
//!   incremental maintenance produces exactly the recomputed result;
//! * [`mod@error`] — typed executor errors ([`ExecError`]): operator
//!   failures, schema drift, injected faults, and forwarded worker panics
//!   all surface as values, so a long-lived engine can abort the epoch
//!   that hit them and retry instead of crashing;
//! * [`meter`] — simulated I/O/CPU accounting in the same units as the
//!   optimizer's cost model, so executed and estimated costs are
//!   comparable.

// Panic-free discipline: unwinding in an operator would tear down a
// long-lived warehouse engine, so reaching for `unwrap`/`expect` here needs
// an explicit per-site justification (a true invariant) or a typed error.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod error;
pub mod meter;
pub mod reference;
pub mod run;
pub mod runtime;

pub use error::{panic_message, ExecError};
pub use meter::Meter;
pub use reference::eval_logical;
pub use run::{
    effective_parallel, execute_epoch, execute_epoch_faults, execute_epoch_opts, execute_program,
    index_plan_from_report, scheduler_description, view_root, ExecOptions, ExecReport, IndexPlan,
};
pub use runtime::{align_rows, AggState, DistinctState, Runtime, RuntimeState};
