//! # mvmqo-exec
//!
//! Multiset execution engine for `mvmqo` maintenance programs. The paper
//! evaluated with estimated costs only ("since we do not currently have a
//! query execution engine ... we are unable to get actual numbers", §7.1);
//! this crate closes that gap:
//!
//! * [`runtime`] — *vectorized* plan evaluation over columnar
//!   [`mvmqo_relalg::batch::Batch`]es (hash / merge / nested-loop / index
//!   nested-loop joins, aggregation, multiset union/difference; filters
//!   and projections are selection-vector/column updates, joins build
//!   borrowed-key hash tables and gather row-id pairs once), stored
//!   materializations with on-demand recomputation, aggregate/distinct
//!   merge with hidden support state;
//! * [`run`] — drives a [`mvmqo_core::plan::Program`] through one refresh
//!   cycle with the one-relation-one-kind-at-a-time semantics of §3.2.2;
//!   [`ExecOptions::parallel`] levels each phase's independent plan roots
//!   and evaluates them on scoped threads, deterministically;
//! * [`mod@reference`] — a naive ground-truth evaluator used to verify that
//!   incremental maintenance produces exactly the recomputed result;
//! * [`meter`] — simulated I/O/CPU accounting in the same units as the
//!   optimizer's cost model, so executed and estimated costs are
//!   comparable.

pub mod meter;
pub mod reference;
pub mod run;
pub mod runtime;

pub use meter::Meter;
pub use reference::eval_logical;
pub use run::{
    effective_parallel, execute_epoch, execute_epoch_opts, execute_program, index_plan_from_report,
    scheduler_description, view_root, ExecOptions, ExecReport, IndexPlan,
};
pub use runtime::{align_rows, AggState, DistinctState, Runtime, RuntimeState};
