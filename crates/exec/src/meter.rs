//! Simulated I/O and CPU metering.
//!
//! The executor charges every operator the same primitives the optimizer's
//! cost model uses, but with *actual* row counts, producing an "executed
//! modeled seconds" figure directly comparable to the optimizer's estimated
//! plan cost. (The paper could only report estimates — §7.1: "we are unable
//! to get actual numbers"; this closes that loop.)

use mvmqo_core::cost::CostModel;

/// Accumulates simulated execution cost.
#[derive(Debug, Clone, Default)]
pub struct Meter {
    /// Modeled seconds spent so far.
    pub seconds: f64,
    /// Tuples flowing through operators (CPU accounting).
    pub tuples_processed: u64,
    /// Blocks sequentially read or written.
    pub blocks_io: u64,
    /// Random page accesses (index probes).
    pub random_pages: u64,
}

impl Meter {
    pub fn new() -> Self {
        Meter::default()
    }

    /// Charge a sequential scan/write of `rows` tuples of `width` bytes.
    pub fn charge_seq(&mut self, model: &CostModel, rows: usize, width: usize) {
        let blocks = model.block.blocks_for_exact(rows, width);
        self.blocks_io += blocks as u64;
        self.tuples_processed += rows as u64;
        self.seconds += model.seq_io(blocks as f64) + rows as f64 * model.cpu_tuple;
    }

    /// Charge pure per-tuple CPU.
    pub fn charge_cpu(&mut self, model: &CostModel, rows: usize) {
        self.tuples_processed += rows as u64;
        self.seconds += rows as f64 * model.cpu_tuple;
    }

    /// Charge `probes` index descents touching `pages` random pages, capped
    /// (like the cost model) at one sequential read of the probed relation.
    pub fn charge_probes(
        &mut self,
        model: &CostModel,
        probes: usize,
        pages: usize,
        rel_rows: usize,
        rel_width: usize,
    ) {
        self.random_pages += pages as u64;
        self.tuples_processed += probes as u64;
        let random = pages as f64 * model.random_page();
        let cap = model.seq_io(model.block.blocks_for_exact(rel_rows, rel_width) as f64);
        self.seconds += probes as f64 * model.index_probe_cpu + random.min(cap);
    }

    /// Fold another meter in (sub-phase accounting).
    pub fn absorb(&mut self, other: &Meter) {
        self.seconds += other.seconds;
        self.tuples_processed += other.tuples_processed;
        self.blocks_io += other.blocks_io;
        self.random_pages += other.random_pages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_charge_counts_blocks_and_cpu() {
        let model = CostModel::default();
        let mut m = Meter::new();
        m.charge_seq(&model, 1000, 100);
        assert_eq!(m.blocks_io, 25); // 40 tuples per 4KB block
        assert_eq!(m.tuples_processed, 1000);
        assert!(m.seconds > 0.0);
    }

    #[test]
    fn probe_charge_is_capped_by_relation_size() {
        let model = CostModel::default();
        let mut a = Meter::new();
        // A million random pages against a relation of 100 blocks: cost must
        // cap near the sequential read.
        a.charge_probes(&model, 1_000_000, 1_000_000, 4000, 100);
        let seq = model.seq_io(100.0);
        assert!(a.seconds < seq + 1_000_000.0 * model.index_probe_cpu + 1e-9);
    }

    #[test]
    fn absorb_accumulates() {
        let model = CostModel::default();
        let mut a = Meter::new();
        a.charge_cpu(&model, 10);
        let mut b = Meter::new();
        b.charge_cpu(&model, 5);
        a.absorb(&b);
        assert_eq!(a.tuples_processed, 15);
    }

    #[test]
    fn empty_charges_cost_nothing() {
        let model = CostModel::default();
        let mut m = Meter::new();
        m.charge_seq(&model, 0, 100);
        assert_eq!(m.seconds, 0.0);
    }
}
