//! Execution runtime: stored materializations, vectorized plan evaluation,
//! and delta merging.
//!
//! The runtime owns the materialized results (user views, permanent extras,
//! and on-demand temporaries), evaluates [`PhysPlan`]s against the *current*
//! database state, and applies computed differentials. Temporarily
//! materialized results are recomputed on demand and invalidated whenever a
//! base relation they depend on is updated, which keeps every full input a
//! delta plan reads in exactly the state updates `1..u−1` applied — the
//! semantics §5.2's per-node state entries describe.
//!
//! Evaluation is split in two:
//!
//! 1. `Runtime::prepare` — the only *mutable* pass: materializes every
//!    stored result the plan reads and creates any index it probes;
//! 2. `EvalCtx::eval` — a read-only vectorized evaluator over columnar
//!    [`Batch`]es. Because it only holds shared references, the epoch
//!    scheduler can run independent plan roots on separate threads against
//!    one prepared state.

use crate::meter::Meter;
use mvmqo_core::cost::CostModel;
use mvmqo_core::dag::{Dag, EqId};
use mvmqo_core::opt::StoredRef;
use mvmqo_core::plan::{PhysPlan, PlanNode};
use mvmqo_core::update::UpdateId;
use mvmqo_relalg::agg::{Accumulator, AggSpec};
use mvmqo_relalg::batch::{Batch, Column, CompiledPredicate};
use mvmqo_relalg::catalog::Catalog;
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::schema::{AttrId, Schema};
use mvmqo_relalg::tuple::{bag_minus, Tuple};
use mvmqo_relalg::types::Value;
use mvmqo_storage::database::Database;
use mvmqo_storage::delta::{DeltaKind, DeltaSet};
use mvmqo_storage::index::IndexKind;
use mvmqo_storage::table::StoredTable;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Hidden per-group accumulator state for a maintained aggregate view
/// (footnote 1 of the paper: counts must be kept to apply deletions).
#[derive(Debug, Clone)]
pub struct AggState {
    pub group_by: Vec<AttrId>,
    pub specs: Vec<AggSpec>,
    pub input_schema: Schema,
    groups: HashMap<Vec<Value>, Vec<Accumulator>>,
}

impl AggState {
    fn new(group_by: Vec<AttrId>, specs: Vec<AggSpec>, input_schema: Schema) -> Self {
        AggState {
            group_by,
            specs,
            input_schema,
            groups: HashMap::new(),
        }
    }

    fn key_positions(&self) -> Vec<usize> {
        self.group_by
            .iter()
            .map(|g| self.input_schema.position_of(*g).expect("group attr"))
            .collect()
    }

    /// Fold raw input rows in (inserts) or out (deletes). Returns `true` if
    /// a non-removable aggregate (MIN/MAX) saw a deletion and the state can
    /// no longer answer exactly — the caller must recompute.
    fn fold(&mut self, rows: &[Tuple], kind: DeltaKind) -> bool {
        let key_pos = self.key_positions();
        let mut needs_recompute = false;
        for row in rows {
            let key: Vec<Value> = key_pos.iter().map(|&i| row[i].clone()).collect();
            let specs = &self.specs;
            let entry = self
                .groups
                .entry(key)
                .or_insert_with(|| specs.iter().map(|s| Accumulator::new(s.func)).collect());
            for (acc, spec) in entry.iter_mut().zip(specs) {
                let v = spec.input.eval(row, &self.input_schema);
                match kind {
                    DeltaKind::Insert => acc.add(&v),
                    DeltaKind::Delete => {
                        if spec.func.removable() {
                            acc.remove(&v);
                        } else {
                            needs_recompute = true;
                        }
                    }
                }
            }
        }
        // Drop extinct groups.
        self.groups.retain(|_, accs| !accs[0].is_empty());
        needs_recompute
    }

    /// Current view rows: group key columns followed by aggregate values.
    fn rows(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self
            .groups
            .iter()
            .map(|(key, accs)| {
                let mut row = key.clone();
                row.extend(accs.iter().map(Accumulator::finish));
                row
            })
            .collect();
        out.sort();
        out
    }
}

/// Hidden support counts for a maintained DISTINCT view.
#[derive(Debug, Clone, Default)]
pub struct DistinctState {
    counts: HashMap<Tuple, i64>,
}

impl DistinctState {
    fn fold(&mut self, rows: &[Tuple], kind: DeltaKind) {
        for row in rows {
            let c = self.counts.entry(row.clone()).or_insert(0);
            match kind {
                DeltaKind::Insert => *c += 1,
                DeltaKind::Delete => *c -= 1,
            }
        }
        self.counts.retain(|_, c| *c > 0);
    }

    fn rows(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.counts.keys().cloned().collect();
        out.sort();
        out
    }
}

/// The materialized state a refresh cycle leaves behind: stored results,
/// their freshness marks, and the hidden aggregate/distinct support state.
///
/// For the one-shot pipeline this is created and dropped inside
/// [`crate::run::execute_program`]; a long-lived warehouse engine instead
/// keeps it across epochs (via [`crate::run::execute_epoch`]) so permanent
/// materializations and their indices are *reused*, not rebuilt. Node ids
/// are only meaningful for the DAG/program the state was built under — drop
/// the state whenever the engine re-optimizes.
#[derive(Debug, Default)]
pub struct RuntimeState {
    pub(crate) mats: HashMap<EqId, StoredTable>,
    pub(crate) fresh: HashSet<EqId>,
    pub(crate) agg_states: HashMap<EqId, AggState>,
    pub(crate) distinct_states: HashMap<EqId, DistinctState>,
}

impl RuntimeState {
    pub fn new() -> Self {
        RuntimeState::default()
    }

    /// Rows of a stored result, if present (warehouse `query` reads served
    /// from the maintained materializations).
    pub fn mat_rows(&self, e: EqId) -> Option<&[Tuple]> {
        self.mats.get(&e).map(|t| t.rows())
    }

    /// Number of stored results.
    pub fn mat_count(&self) -> usize {
        self.mats.len()
    }

    /// Total tuples held by stored results.
    pub fn total_tuples(&self) -> usize {
        self.mats.values().map(StoredTable::len).sum()
    }

    /// True if `e` is stored and fresh.
    pub fn is_fresh(&self, e: EqId) -> bool {
        self.fresh.contains(&e)
    }

    /// Keep only the listed stored results (and their hidden
    /// aggregate/distinct support state), dropping everything else.
    ///
    /// Used across re-optimizations: the re-entrant optimizer's DAG keeps
    /// node ids stable, so a result that stayed fresh under the old plan
    /// and is maintained by the new one carries over instead of being
    /// rebuilt at the next epoch's setup.
    pub fn retain_mats(&mut self, keep: &HashSet<EqId>) {
        self.mats.retain(|e, _| keep.contains(e));
        self.fresh.retain(|e| keep.contains(e));
        self.agg_states.retain(|e, _| keep.contains(e));
        self.distinct_states.retain(|e, _| keep.contains(e));
    }
}

/// How a full plan's root folds into stored state when materialized:
/// grouped and distinct roots keep hidden support state (footnote 1), so
/// the evaluator runs their *input* plan and the install step folds it.
enum RootKind {
    Plain,
    Agg {
        group_by: Vec<AttrId>,
        aggs: Vec<AggSpec>,
        input_schema: Schema,
    },
    Distinct,
}

/// One claimed materialization build: what to evaluate and how to install
/// the result. Produced by `Runtime::claim_build`, consumed by
/// `Runtime::install_build` — the shared halves of the serial and
/// parallel materialization paths.
struct MatWork {
    e: EqId,
    schema: Schema,
    kind: RootKind,
    eval_plan: PhysPlan,
}

/// The execution runtime for one maintenance cycle.
pub struct Runtime<'a> {
    pub dag: &'a Dag,
    pub catalog: &'a Catalog,
    pub model: CostModel,
    pub db: &'a mut Database,
    pub deltas: &'a DeltaSet,
    full_plans: BTreeMap<EqId, PhysPlan>,
    /// Indices to maintain on materialized nodes (chosen by the optimizer).
    mat_indices: HashMap<EqId, Vec<AttrId>>,
    state: RuntimeState,
    delta_store: HashMap<(EqId, UpdateId), Vec<Tuple>>,
    /// Full results actually (re)computed this cycle — stays at zero for
    /// results served from a persisted [`RuntimeState`].
    pub full_builds: usize,
    pub meter: Meter,
}

impl<'a> Runtime<'a> {
    pub fn new(
        dag: &'a Dag,
        catalog: &'a Catalog,
        model: CostModel,
        db: &'a mut Database,
        deltas: &'a DeltaSet,
        full_plans: BTreeMap<EqId, PhysPlan>,
        mat_indices: HashMap<EqId, Vec<AttrId>>,
    ) -> Self {
        Runtime::with_state(
            dag,
            catalog,
            model,
            db,
            deltas,
            full_plans,
            mat_indices,
            RuntimeState::new(),
        )
    }

    /// Like [`Runtime::new`], but resuming from a persisted [`RuntimeState`]
    /// (the warehouse epoch path): stored results that are still fresh are
    /// served as-is instead of being rebuilt.
    #[allow(clippy::too_many_arguments)]
    pub fn with_state(
        dag: &'a Dag,
        catalog: &'a Catalog,
        model: CostModel,
        db: &'a mut Database,
        deltas: &'a DeltaSet,
        full_plans: BTreeMap<EqId, PhysPlan>,
        mat_indices: HashMap<EqId, Vec<AttrId>>,
        state: RuntimeState,
    ) -> Self {
        Runtime {
            dag,
            catalog,
            model,
            db,
            deltas,
            full_plans,
            mat_indices,
            state,
            delta_store: HashMap::new(),
            full_builds: 0,
            meter: Meter::new(),
        }
    }

    /// Hand the materialized state back to the caller (end of an epoch).
    pub fn take_state(&mut self) -> RuntimeState {
        std::mem::take(&mut self.state)
    }

    /// Rows of a materialized result (test/report access; does not compute).
    pub fn mat_rows(&self, e: EqId) -> Option<&[Tuple]> {
        self.state.mats.get(&e).map(|t| t.rows())
    }

    /// Ensure a materialized result exists and is fresh; returns its rows.
    pub fn materialize(&mut self, e: EqId) -> &StoredTable {
        if !self.state.fresh.contains(&e) {
            let work = self.claim_build(e);
            let rows = self.eval(&work.eval_plan);
            self.install_build(work, rows);
        }
        self.state.mats.get(&e).expect("just materialized")
    }

    /// Claim one full build: count it, classify the plan root, and return
    /// the plan the evaluator must actually run (the aggregate/distinct
    /// *input* — so hidden accumulator state can be built from it,
    /// footnote 1 of the paper — or the plan itself otherwise). Shared by
    /// the serial and parallel materialization paths so their semantics
    /// cannot drift.
    fn claim_build(&mut self, e: EqId) -> MatWork {
        self.full_builds += 1;
        let plan = self
            .full_plans
            .get(&e)
            .unwrap_or_else(|| panic!("no full plan for materialized node {e}"))
            .clone();
        let schema = plan.schema.clone();
        match plan.node {
            PlanNode::HashAggregate {
                input,
                group_by,
                aggs,
            } => MatWork {
                e,
                schema,
                kind: RootKind::Agg {
                    group_by,
                    aggs,
                    input_schema: input.schema.clone(),
                },
                eval_plan: *input,
            },
            PlanNode::Distinct { input } => MatWork {
                e,
                schema,
                kind: RootKind::Distinct,
                eval_plan: *input,
            },
            _ => MatWork {
                e,
                schema,
                kind: RootKind::Plain,
                eval_plan: plan,
            },
        }
    }

    /// Install one evaluated build: fold hidden aggregate/distinct support
    /// state if the root needs it, charge the store, build the table with
    /// its chosen indices, and mark it fresh.
    fn install_build(&mut self, work: MatWork, eval_rows: Vec<Tuple>) {
        let MatWork {
            e, schema, kind, ..
        } = work;
        let rows = match kind {
            RootKind::Plain => eval_rows,
            RootKind::Agg {
                group_by,
                aggs,
                input_schema,
            } => {
                let mut state = AggState::new(group_by, aggs, input_schema);
                state.fold(&eval_rows, DeltaKind::Insert);
                let rows = state.rows();
                self.state.agg_states.insert(e, state);
                rows
            }
            RootKind::Distinct => {
                let mut state = DistinctState::default();
                state.fold(&eval_rows, DeltaKind::Insert);
                let rows = state.rows();
                self.state.distinct_states.insert(e, state);
                rows
            }
        };
        self.meter
            .charge_seq(&self.model, rows.len(), schema.row_width());
        let mut table = StoredTable::with_rows(schema, rows);
        for attr in self.mat_indices.get(&e).cloned().unwrap_or_default() {
            table.create_index(attr, IndexKind::Hash);
        }
        self.state.mats.insert(e, table);
        self.state.fresh.insert(e);
    }

    /// Materialize a set of results, optionally in parallel: the targets
    /// are topologically levelled by their stored-result dependencies, and
    /// within each level the full plans are evaluated concurrently by the
    /// read-only vectorized evaluator (one scoped thread per plan root).
    /// All state mutation — dependency preparation before a level, result
    /// installation after — stays serial and in target order, so the
    /// outcome is identical to calling [`Runtime::materialize`] in a loop.
    pub fn materialize_many(&mut self, targets: &[EqId], parallel: bool) {
        let mut seen = HashSet::new();
        let todo: Vec<EqId> = targets
            .iter()
            .copied()
            .filter(|e| seen.insert(*e) && !self.state.fresh.contains(e))
            .collect();
        if !parallel || todo.len() < 2 {
            for e in todo {
                self.materialize(e);
            }
            return;
        }
        let in_set: HashSet<EqId> = todo.iter().copied().collect();
        let levels = level_items(&todo, |e| {
            self.full_plans
                .get(&e)
                .map(|p| {
                    mat_refs(p)
                        .into_iter()
                        .filter(|d| in_set.contains(d) && *d != e)
                        .collect()
                })
                .unwrap_or_default()
        });

        for level in levels {
            // Serial mutable pass: claim builds, prepare dependencies.
            let mut work: Vec<MatWork> = Vec::with_capacity(level.len());
            for &e in &level {
                if self.state.fresh.contains(&e) {
                    continue;
                }
                let w = self.claim_build(e);
                self.prepare(&w.eval_plan);
                work.push(w);
            }
            // Parallel read-only evaluation of the level's plan roots.
            let plans: Vec<&PhysPlan> = work.iter().map(|w| &w.eval_plan).collect();
            let results = eval_parallel(self, &plans);
            // Serial installation, in target order.
            for (w, (batch, meter)) in work.into_iter().zip(results) {
                self.meter.absorb(&meter);
                self.install_build(w, batch.into_rows());
            }
        }
    }

    /// Drop a temporary materialization.
    pub fn drop_mat(&mut self, e: EqId) {
        self.state.mats.remove(&e);
        self.state.fresh.remove(&e);
        self.state.agg_states.remove(&e);
        self.state.distinct_states.remove(&e);
    }

    /// Mark every materialization depending on `table` stale, except the
    /// maintained ones listed in `keep` (they were just merged).
    pub fn invalidate_depending(
        &mut self,
        table: mvmqo_relalg::catalog::TableId,
        keep: &HashSet<EqId>,
    ) {
        let stale: Vec<EqId> = self
            .state
            .fresh
            .iter()
            .copied()
            .filter(|e| self.dag.eq(*e).depends_on(table) && !keep.contains(e))
            .collect();
        for e in stale {
            self.state.fresh.remove(&e);
        }
    }

    /// Store a temporarily materialized differential.
    pub fn store_delta(&mut self, e: EqId, u: UpdateId, rows: Vec<Tuple>) {
        self.meter
            .charge_seq(&self.model, rows.len(), self.dag.eq(e).schema.row_width());
        self.delta_store.insert((e, u), rows);
    }

    /// Clear stored differentials of one update step.
    pub fn clear_deltas(&mut self, u: UpdateId) {
        self.delta_store.retain(|(_, du), _| *du != u);
    }

    // ==================================================================
    // Merging (§6.1: how maintained results absorb differentials)
    // ==================================================================

    /// Merge plain delta rows into a maintained result.
    pub fn merge_plain(&mut self, e: EqId, rows: Vec<Tuple>, kind: DeltaKind) {
        let width = self.dag.eq(e).schema.row_width();
        self.meter.charge_seq(&self.model, rows.len(), width);
        let table = self
            .state
            .mats
            .get_mut(&e)
            .expect("maintained result stored");
        match kind {
            DeltaKind::Insert => {
                table.apply_delta(&mvmqo_storage::delta::DeltaBatch::new(rows, vec![]))
            }
            DeltaKind::Delete => {
                table.apply_delta(&mvmqo_storage::delta::DeltaBatch::new(vec![], rows))
            }
        }
        self.state.fresh.insert(e);
    }

    /// Merge raw input delta rows into a maintained aggregate. Returns
    /// `true` if the view had to fall back to recomputation (MIN/MAX
    /// deletion).
    pub fn merge_aggregate(&mut self, e: EqId, input_rows: Vec<Tuple>, kind: DeltaKind) -> bool {
        self.meter.charge_cpu(&self.model, input_rows.len());
        let state = self.state.agg_states.get_mut(&e).expect("aggregate state");
        let needs_recompute = state.fold(&input_rows, kind);
        if needs_recompute {
            // Affected-group recompute, realized as a full refresh (§3.1.2's
            // "significant extra work"; the cost model charges the same).
            self.state.fresh.remove(&e);
            self.materialize(e);
            return true;
        }
        let rows = state.rows();
        let schema = self.state.mats.get(&e).expect("stored").schema().clone();
        let mut table = StoredTable::with_rows(schema, rows);
        for attr in self.mat_indices.get(&e).cloned().unwrap_or_default() {
            table.create_index(attr, IndexKind::Hash);
        }
        self.state.mats.insert(e, table);
        self.state.fresh.insert(e);
        false
    }

    /// Merge raw input delta rows into a maintained DISTINCT view.
    pub fn merge_distinct(&mut self, e: EqId, input_rows: Vec<Tuple>, kind: DeltaKind) {
        self.meter.charge_cpu(&self.model, input_rows.len());
        let state = self
            .state
            .distinct_states
            .get_mut(&e)
            .expect("distinct state");
        state.fold(&input_rows, kind);
        let rows = state.rows();
        let schema = self.state.mats.get(&e).expect("stored").schema().clone();
        self.state
            .mats
            .insert(e, StoredTable::with_rows(schema, rows));
        self.state.fresh.insert(e);
    }

    // ==================================================================
    // Plan evaluation (vectorized)
    // ==================================================================

    /// Evaluate a physical plan against the current state, as rows.
    pub fn eval(&mut self, plan: &PhysPlan) -> Vec<Tuple> {
        self.eval_batch(plan).into_rows()
    }

    /// Evaluate a physical plan against the current state, as a columnar
    /// [`Batch`]. Runs the mutable `prepare` pass first, then the
    /// read-only vectorized evaluator.
    pub fn eval_batch(&mut self, plan: &PhysPlan) -> Batch {
        self.prepare(plan);
        let mut meter = Meter::new();
        let batch = self.eval_ctx().eval(plan, &mut meter);
        self.meter.absorb(&meter);
        batch
    }

    /// Read-only evaluation context over the runtime's current state.
    /// `Copy`, so the epoch scheduler can hand one to each worker thread.
    pub(crate) fn eval_ctx(&self) -> EvalCtx<'_> {
        EvalCtx {
            model: &self.model,
            db: &*self.db,
            deltas: self.deltas,
            mats: &self.state.mats,
            delta_store: &self.delta_store,
        }
    }

    /// Mutable pre-pass: materialize every stored result the plan reads
    /// and create any index it probes, so that evaluation itself is
    /// read-only (and therefore shareable across scheduler threads). This
    /// is also what lets the index nested-loop join probe the stored inner
    /// relation in place instead of cloning it.
    pub(crate) fn prepare(&mut self, plan: &PhysPlan) {
        match &plan.node {
            PlanNode::ScanBase(_) | PlanNode::ScanDelta { .. } | PlanNode::ReadDelta(..) => {}
            PlanNode::ReadMat(e) => {
                self.materialize(*e);
            }
            PlanNode::IndexScan { target, .. } => {
                if let StoredRef::Mat(e) = target {
                    self.materialize(*e);
                }
            }
            PlanNode::IndexNlJoin {
                outer, inner, keys, ..
            } => {
                self.prepare(outer);
                let t = self.stored_table_mut(*inner);
                if t.index_on(keys.1).is_none() {
                    t.create_index(keys.1, IndexKind::Hash);
                }
            }
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::HashAggregate { input, .. }
            | PlanNode::Distinct { input } => self.prepare(input),
            PlanNode::HashJoin { build, probe, .. } => {
                self.prepare(build);
                self.prepare(probe);
            }
            PlanNode::MergeJoin { left, right, .. }
            | PlanNode::NlJoin { left, right, .. }
            | PlanNode::Minus { left, right } => {
                self.prepare(left);
                self.prepare(right);
            }
            PlanNode::UnionAll(inputs) => {
                for i in inputs {
                    self.prepare(i);
                }
            }
        }
    }

    /// Resolve a stored relation reference (mutable, for on-demand index
    /// creation during [`Runtime::prepare`]).
    fn stored_table_mut(&mut self, target: StoredRef) -> &mut StoredTable {
        match target {
            StoredRef::Base(t) => self.db.base_mut(t).expect("base table loaded"),
            StoredRef::Mat(e) => {
                self.materialize(e);
                self.state.mats.get_mut(&e).expect("materialized")
            }
        }
    }
}

/// The read-only vectorized evaluator: shared references to everything a
/// plan can touch after [`Runtime::prepare`] ran. All operators fold over
/// [`Batch`]es — filters/projections are selection/column updates, joins
/// build borrowed-key hash tables over column positions and emit row-id
/// pairs that are gathered into output columns once, at the end.
#[derive(Clone, Copy)]
pub(crate) struct EvalCtx<'r> {
    pub model: &'r CostModel,
    pub db: &'r Database,
    pub deltas: &'r DeltaSet,
    pub mats: &'r HashMap<EqId, StoredTable>,
    pub delta_store: &'r HashMap<(EqId, UpdateId), Vec<Tuple>>,
}

impl EvalCtx<'_> {
    /// Evaluate a plan, charging `meter` the same primitives the
    /// row-at-a-time executor charged (so executed-vs-estimated cost
    /// comparisons are unchanged by vectorization).
    pub(crate) fn eval(&self, plan: &PhysPlan, meter: &mut Meter) -> Batch {
        match &plan.node {
            PlanNode::ScanBase(t) => {
                let table = self.db.base(*t).expect("base table loaded");
                let batch = (*table.to_batch()).clone().align(&plan.schema);
                meter.charge_seq(self.model, batch.num_rows(), plan.schema.row_width());
                batch
            }
            PlanNode::ScanDelta { table, kind } => {
                let rows = self.deltas.side(*table, *kind);
                meter.charge_seq(self.model, rows.len(), plan.schema.row_width());
                Batch::from_rows(plan.schema.clone(), rows)
            }
            PlanNode::ReadMat(e) => {
                let table = self
                    .mats
                    .get(e)
                    .unwrap_or_else(|| panic!("materialized node {e} not prepared"));
                let batch = (*table.to_batch()).clone().align(&plan.schema);
                meter.charge_seq(self.model, batch.num_rows(), plan.schema.row_width());
                batch
            }
            PlanNode::ReadDelta(e, u) => {
                let rows = self
                    .delta_store
                    .get(&(*e, *u))
                    .unwrap_or_else(|| panic!("δ({e},{u}) not stored"));
                meter.charge_seq(self.model, rows.len(), plan.schema.row_width());
                Batch::from_rows(plan.schema.clone(), rows)
            }
            PlanNode::IndexScan { target, attr, pred } => {
                self.eval_index_scan(plan, *target, *attr, pred, meter)
            }
            PlanNode::Filter { input, pred } => {
                let mut batch = self.eval(input, meter);
                meter.charge_cpu(self.model, batch.num_rows());
                let compiled = CompiledPredicate::compile(pred, batch.schema());
                let mut scratch = Vec::new();
                batch.filter(&compiled, &mut scratch);
                batch
            }
            PlanNode::Project { input, attrs } => {
                let batch = self.eval(input, meter);
                meter.charge_cpu(self.model, batch.num_rows());
                let positions: Vec<usize> = attrs
                    .iter()
                    .map(|a| input.schema.position_of(*a).expect("project attr"))
                    .collect();
                batch.project(plan.schema.clone(), &positions)
            }
            PlanNode::HashJoin {
                build,
                probe,
                keys,
                residual,
            } => self.eval_hash_join(plan, build, probe, keys, residual, meter),
            PlanNode::MergeJoin {
                left,
                right,
                keys,
                residual,
            } => self.eval_merge_join(plan, left, right, keys, residual, meter),
            PlanNode::NlJoin { left, right, pred } => {
                self.eval_nl_join(plan, left, right, pred, meter)
            }
            PlanNode::IndexNlJoin {
                outer,
                inner,
                keys,
                inner_filter,
                residual,
            } => self.eval_index_nl_join(plan, outer, *inner, *keys, inner_filter, residual, meter),
            PlanNode::HashAggregate {
                input,
                group_by,
                aggs,
            } => self.eval_hash_aggregate(plan, input, group_by, aggs, meter),
            PlanNode::UnionAll(inputs) => {
                let mut out: Option<Batch> = None;
                for i in inputs {
                    let b = self.eval(i, meter).align(&plan.schema);
                    match &mut out {
                        None => out = Some(b),
                        Some(acc) => acc.append(&b),
                    }
                }
                let out = out.unwrap_or_else(|| Batch::empty(plan.schema.clone()));
                meter.charge_cpu(self.model, out.num_rows());
                out
            }
            PlanNode::Minus { left, right } => {
                let l = self.eval(left, meter).into_rows();
                let r = self.eval(right, meter).align(&left.schema).into_rows();
                meter.charge_cpu(self.model, l.len() + r.len());
                debug_assert_eq!(plan.schema.ids(), left.schema.ids());
                Batch::from_rows(plan.schema.clone(), &bag_minus(&l, &r))
            }
            PlanNode::Distinct { input } => self.eval_distinct(plan, input, meter),
        }
    }

    fn stored(&self, target: StoredRef) -> &StoredTable {
        match target {
            StoredRef::Base(t) => self.db.base(t).expect("base table loaded"),
            StoredRef::Mat(e) => self
                .mats
                .get(&e)
                .unwrap_or_else(|| panic!("materialized node {e} not prepared")),
        }
    }

    fn eval_index_scan(
        &self,
        plan: &PhysPlan,
        target: StoredRef,
        attr: AttrId,
        pred: &Predicate,
        meter: &mut Meter,
    ) -> Batch {
        // Equality probe when possible, else a filtered scan.
        let eq_value = pred.conjuncts().iter().find_map(|c| {
            if let ScalarExpr::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } = c
            {
                match (lhs.as_ref(), rhs.as_ref()) {
                    (ScalarExpr::Col(a), ScalarExpr::Lit(v)) if *a == attr => Some(v.clone()),
                    (ScalarExpr::Lit(v), ScalarExpr::Col(a)) if *a == attr => Some(v.clone()),
                    _ => None,
                }
            } else {
                None
            }
        });
        let table = self.stored(target);
        let schema = table.schema();
        let total = table.len();
        let mut batch = match eq_value.as_ref().and_then(|v| table.probe(attr, v)) {
            Some(positions) => {
                // Probe returned row positions; select only the hits.
                let mut b = (*table.to_batch()).clone();
                b.set_selection(positions.to_vec());
                b
            }
            None => (*table.to_batch()).clone(),
        };
        let compiled = CompiledPredicate::compile(pred, schema);
        let mut scratch = Vec::new();
        batch.filter(&compiled, &mut scratch);
        meter.charge_probes(
            self.model,
            1,
            batch.num_rows().max(1),
            total,
            schema.row_width(),
        );
        batch.align(&plan.schema)
    }

    fn eval_hash_join(
        &self,
        plan: &PhysPlan,
        build: &PhysPlan,
        probe: &PhysPlan,
        keys: &[(AttrId, AttrId)],
        residual: &Predicate,
        meter: &mut Meter,
    ) -> Batch {
        let build_b = self.eval(build, meter);
        let probe_b = self.eval(probe, meter);
        let bcols: Vec<usize> = keys
            .iter()
            .map(|(b, _)| build.schema.position_of(*b).expect("build key"))
            .collect();
        let pcols: Vec<usize> = keys
            .iter()
            .map(|(_, p)| probe.schema.position_of(*p).expect("probe key"))
            .collect();
        // Hash table over the build side, keyed by the *hash* of the key
        // columns at each position: hash once per row, no per-row key
        // vector is ever allocated; candidate collisions are resolved by
        // comparing key columns position-to-position.
        let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(build_b.num_rows());
        for i in 0..build_b.num_rows() {
            let phys = build_b.physical(i);
            if build_b.any_null(phys, &bcols) {
                continue; // NULL keys can never match a probe
            }
            table
                .entry(build_b.hash_keys(phys, &bcols))
                .or_default()
                .push(phys);
        }
        let combined = build.schema.concat(&probe.schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for i in 0..probe_b.num_rows() {
            let pphys = probe_b.physical(i);
            if probe_b.any_null(pphys, &pcols) {
                continue;
            }
            if let Some(cands) = table.get(&probe_b.hash_keys(pphys, &pcols)) {
                for &bphys in cands {
                    if build_b.keys_eq(bphys, &bcols, &probe_b, pphys, &pcols) {
                        pairs.push((bphys, pphys));
                    }
                }
            }
        }
        if !residual.is_true() {
            let mut joined = Vec::with_capacity(combined.len());
            pairs.retain(|&(b, p)| {
                concat_row(&build_b, b, &probe_b, p, &mut joined);
                residual.matches(&joined, &combined)
            });
        }
        meter.charge_cpu(
            self.model,
            build_b.num_rows() + probe_b.num_rows() + pairs.len(),
        );
        Batch::gather_pairs(
            &build_b,
            &probe_b,
            &pairs,
            plan.schema.clone(),
            &out_positions,
        )
    }

    fn eval_merge_join(
        &self,
        plan: &PhysPlan,
        left: &PhysPlan,
        right: &PhysPlan,
        keys: &[(AttrId, AttrId)],
        residual: &Predicate,
        meter: &mut Meter,
    ) -> Batch {
        let l_b = self.eval(left, meter);
        let r_b = self.eval(right, meter);
        let lcols: Vec<usize> = keys
            .iter()
            .map(|(l, _)| left.schema.position_of(*l).expect("left key"))
            .collect();
        let rcols: Vec<usize> = keys
            .iter()
            .map(|(_, r)| right.schema.position_of(*r).expect("right key"))
            .collect();
        // Sort *positions* by key (values never move).
        let mut lidx = l_b.positions();
        lidx.sort_by(|&a, &b| l_b.cmp_keys(a, &lcols, &l_b, b, &lcols));
        let mut ridx = r_b.positions();
        ridx.sort_by(|&a, &b| r_b.cmp_keys(a, &rcols, &r_b, b, &rcols));
        // Charge the sorts.
        meter.charge_cpu(self.model, lidx.len() + ridx.len());
        let combined = left.schema.concat(&right.schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut joined = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < lidx.len() && j < ridx.len() {
            match l_b.cmp_keys(lidx[i], &lcols, &r_b, ridx[j], &rcols) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Cross product of the equal-key runs.
                    let mut i_end = i + 1;
                    while i_end < lidx.len()
                        && l_b.cmp_keys(lidx[i_end], &lcols, &l_b, lidx[i], &lcols)
                            == std::cmp::Ordering::Equal
                    {
                        i_end += 1;
                    }
                    let mut j_end = j + 1;
                    while j_end < ridx.len()
                        && r_b.cmp_keys(ridx[j_end], &rcols, &r_b, ridx[j], &rcols)
                            == std::cmp::Ordering::Equal
                    {
                        j_end += 1;
                    }
                    // NULL sorts equal to NULL but a NULL key matches
                    // nothing in SQL semantics (the hash join and the
                    // reference evaluator agree); skip the run.
                    if l_b.any_null(lidx[i], &lcols) {
                        i = i_end;
                        j = j_end;
                        continue;
                    }
                    for &lp in &lidx[i..i_end] {
                        for &rp in &ridx[j..j_end] {
                            if !residual.is_true() {
                                concat_row(&l_b, lp, &r_b, rp, &mut joined);
                                if !residual.matches(&joined, &combined) {
                                    continue;
                                }
                            }
                            pairs.push((lp, rp));
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        meter.charge_cpu(self.model, pairs.len());
        Batch::gather_pairs(&l_b, &r_b, &pairs, plan.schema.clone(), &out_positions)
    }

    fn eval_nl_join(
        &self,
        plan: &PhysPlan,
        left: &PhysPlan,
        right: &PhysPlan,
        pred: &Predicate,
        meter: &mut Meter,
    ) -> Batch {
        let l_b = self.eval(left, meter);
        let r_b = self.eval(right, meter);
        let combined = left.schema.concat(&right.schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut joined = Vec::new();
        for i in 0..l_b.num_rows() {
            let lp = l_b.physical(i);
            for j in 0..r_b.num_rows() {
                let rp = r_b.physical(j);
                if !pred.is_true() {
                    concat_row(&l_b, lp, &r_b, rp, &mut joined);
                    if !pred.matches(&joined, &combined) {
                        continue;
                    }
                }
                pairs.push((lp, rp));
            }
        }
        meter.charge_cpu(
            self.model,
            l_b.num_rows() * r_b.num_rows().max(1) / 10 + pairs.len(),
        );
        Batch::gather_pairs(&l_b, &r_b, &pairs, plan.schema.clone(), &out_positions)
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_index_nl_join(
        &self,
        plan: &PhysPlan,
        outer: &PhysPlan,
        inner: StoredRef,
        keys: (AttrId, AttrId),
        inner_filter: &Predicate,
        residual: &Predicate,
        meter: &mut Meter,
    ) -> Batch {
        let outer_b = self.eval(outer, meter);
        let okey_col = outer.schema.position_of(keys.0).expect("outer key");
        // The inner is probed *in place* through its index — no snapshot.
        // `Runtime::prepare` already created the index the optimizer
        // assumed.
        let inner_table = self.stored(inner);
        let inner_schema = inner_table.schema();
        let idx = inner_table
            .index_on(keys.1)
            .expect("inner index prepared before evaluation");
        let combined = outer.schema.concat(inner_schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut pages = 0usize;
        let mut joined = Vec::new();
        let key_column = outer_b.column(okey_col);
        for i in 0..outer_b.num_rows() {
            let op = outer_b.physical(i) as usize;
            if key_column.is_null(op) {
                continue;
            }
            let key = key_column.value(op);
            for &pos in idx.lookup_eq(&key) {
                let irow = inner_table.row(pos);
                if !inner_filter.is_true() && !inner_filter.matches(irow, inner_schema) {
                    continue;
                }
                pages += 1;
                if !residual.is_true() {
                    outer_b.write_row(op as u32, &mut joined);
                    joined.extend(irow.iter().cloned());
                    if !residual.matches(&joined, &combined) {
                        continue;
                    }
                }
                pairs.push((op as u32, pos));
            }
        }
        meter.charge_probes(
            self.model,
            outer_b.num_rows(),
            pages,
            inner_table.len(),
            inner_schema.row_width(),
        );
        // Output: outer columns gather by pair positions; inner columns
        // are built from the stored rows at the matched positions.
        let outer_width = outer.schema.len();
        let outer_idx: Vec<u32> = pairs.iter().map(|&(o, _)| o).collect();
        let columns: Vec<Column> = out_positions
            .iter()
            .map(|&p| {
                if p < outer_width {
                    outer_b.column(p).gather(&outer_idx)
                } else {
                    let inner_col = p - outer_width;
                    let dt = inner_schema.attrs()[inner_col].data_type;
                    let mut col = Column::with_capacity(dt, pairs.len());
                    for &(_, ipos) in &pairs {
                        col.push(&inner_table.row(ipos)[inner_col]);
                    }
                    col
                }
            })
            .collect();
        Batch::from_columns(plan.schema.clone(), columns)
    }

    fn eval_hash_aggregate(
        &self,
        plan: &PhysPlan,
        input: &PhysPlan,
        group_by: &[AttrId],
        aggs: &[AggSpec],
        meter: &mut Meter,
    ) -> Batch {
        let in_b = self.eval(input, meter);
        meter.charge_cpu(self.model, in_b.num_rows());
        let key_cols: Vec<usize> = group_by
            .iter()
            .map(|g| input.schema.position_of(*g).expect("group attr"))
            .collect();
        // Aggregate inputs: direct column reads for plain columns, scratch
        // row for general expressions.
        enum AggInput<'p> {
            Col(usize),
            Expr(&'p ScalarExpr),
        }
        let agg_inputs: Vec<AggInput> = aggs
            .iter()
            .map(|s| match &s.input {
                ScalarExpr::Col(id) => match input.schema.position_of(*id) {
                    Some(pos) => AggInput::Col(pos),
                    None => AggInput::Expr(&s.input),
                },
                e => AggInput::Expr(e),
            })
            .collect();
        // Group table keyed by borrowed column positions: per distinct key,
        // a representative physical row and the accumulators.
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut groups: Vec<(u32, Vec<Accumulator>)> = Vec::new();
        let mut scratch = Vec::new();
        for i in 0..in_b.num_rows() {
            let phys = in_b.physical(i);
            let h = in_b.hash_keys(phys, &key_cols);
            let ids = buckets.entry(h).or_default();
            let gid =
                match ids.iter().copied().find(|&g| {
                    in_b.keys_eq(groups[g as usize].0, &key_cols, &in_b, phys, &key_cols)
                }) {
                    Some(g) => g as usize,
                    None => {
                        let g = groups.len();
                        groups.push((
                            phys,
                            aggs.iter().map(|s| Accumulator::new(s.func)).collect(),
                        ));
                        ids.push(g as u32);
                        g
                    }
                };
            let mut scratch_filled = false;
            for (k, ai) in agg_inputs.iter().enumerate() {
                let v = match ai {
                    AggInput::Col(c) => in_b.column(*c).value(phys as usize),
                    AggInput::Expr(e) => {
                        if !scratch_filled {
                            in_b.write_row(phys, &mut scratch);
                            scratch_filled = true;
                        }
                        e.eval(&scratch, &input.schema)
                    }
                };
                groups[gid].1[k].add(&v);
            }
        }
        // Output rows: group key columns followed by aggregate values,
        // sorted — matching the row executor's deterministic order.
        let mut out_rows: Vec<Tuple> = groups
            .iter()
            .map(|(rep, accs)| {
                let mut row: Tuple = key_cols
                    .iter()
                    .map(|&c| in_b.column(c).value(*rep as usize))
                    .collect();
                row.extend(accs.iter().map(Accumulator::finish));
                row
            })
            .collect();
        out_rows.sort();
        Batch::from_rows(plan.schema.clone(), &out_rows)
    }

    fn eval_distinct(&self, plan: &PhysPlan, input: &PhysPlan, meter: &mut Meter) -> Batch {
        let in_b = self.eval(input, meter);
        meter.charge_cpu(self.model, in_b.num_rows());
        let all_cols: Vec<usize> = (0..in_b.schema().len()).collect();
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut reps: Vec<u32> = Vec::new();
        for i in 0..in_b.num_rows() {
            let phys = in_b.physical(i);
            let h = in_b.hash_keys(phys, &all_cols);
            let ids = buckets.entry(h).or_default();
            if !ids
                .iter()
                .any(|&r| in_b.keys_eq(r, &all_cols, &in_b, phys, &all_cols))
            {
                ids.push(phys);
                reps.push(phys);
            }
        }
        // Sorted output, as the support-counting distinct produced.
        let mut out_rows: Vec<Tuple> = reps
            .iter()
            .map(|&r| {
                let mut row = Vec::with_capacity(in_b.schema().len());
                in_b.write_row(r, &mut row);
                row
            })
            .collect();
        out_rows.sort();
        Batch::from_rows(plan.schema.clone(), &out_rows)
    }
}

/// Fill `buf` with the concatenation of one physical row from each batch
/// (residual-predicate evaluation during joins).
fn concat_row(left: &Batch, l: u32, right: &Batch, r: u32, buf: &mut Vec<Value>) {
    buf.clear();
    for c in 0..left.schema().len() {
        buf.push(left.column(c).value(l as usize));
    }
    for c in 0..right.schema().len() {
        buf.push(right.column(c).value(r as usize));
    }
}

// ======================================================================
// Parallel scheduling support
// ======================================================================

/// Evaluate several plans concurrently against one prepared runtime state.
/// Spawns at most 16 scoped worker threads; results come back in plan
/// order, each with its own meter so charges can be absorbed
/// deterministically by the caller.
pub(crate) fn eval_parallel(rt: &Runtime<'_>, plans: &[&PhysPlan]) -> Vec<(Batch, Meter)> {
    if plans.is_empty() {
        return Vec::new();
    }
    if plans.len() == 1 {
        let mut m = Meter::new();
        let b = rt.eval_ctx().eval(plans[0], &mut m);
        return vec![(b, m)];
    }
    let ctx = rt.eval_ctx();
    // No more workers than plans, hardware threads, or 16 — spawning past
    // the core count only buys context-switch overhead.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = plans.len().min(16).min(cores.max(1));
    let mut slots: Vec<Option<(Batch, Meter)>> = (0..plans.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < plans.len() {
                        let mut m = Meter::new();
                        let b = ctx.eval(plans[i], &mut m);
                        out.push((i, b, m));
                        i += workers;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, b, m) in h.join().expect("executor worker thread panicked") {
                slots[i] = Some((b, m));
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every plan evaluated"))
        .collect()
}

/// Stored materialized results a plan reads ([`PlanNode::ReadMat`], index
/// scans over materializations, index-NL inners) — the dependency edges
/// the parallel scheduler levels by.
pub(crate) fn mat_refs(plan: &PhysPlan) -> Vec<EqId> {
    fn walk(plan: &PhysPlan, out: &mut Vec<EqId>) {
        match &plan.node {
            PlanNode::ReadMat(e) => out.push(*e),
            PlanNode::IndexScan { target, .. } => {
                if let StoredRef::Mat(e) = target {
                    out.push(*e);
                }
            }
            PlanNode::IndexNlJoin { outer, inner, .. } => {
                if let StoredRef::Mat(e) = inner {
                    out.push(*e);
                }
                walk(outer, out);
            }
            PlanNode::ScanBase(_) | PlanNode::ScanDelta { .. } | PlanNode::ReadDelta(..) => {}
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::HashAggregate { input, .. }
            | PlanNode::Distinct { input } => walk(input, out),
            PlanNode::HashJoin { build, probe, .. } => {
                walk(build, out);
                walk(probe, out);
            }
            PlanNode::MergeJoin { left, right, .. }
            | PlanNode::NlJoin { left, right, .. }
            | PlanNode::Minus { left, right } => {
                walk(left, out);
                walk(right, out);
            }
            PlanNode::UnionAll(inputs) => {
                for i in inputs {
                    walk(i, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

/// Temporarily stored differentials of update `u` a plan reads
/// ([`PlanNode::ReadDelta`]) — intra-step dependency edges.
pub(crate) fn delta_refs(plan: &PhysPlan, u: UpdateId) -> Vec<EqId> {
    fn walk(plan: &PhysPlan, u: UpdateId, out: &mut Vec<EqId>) {
        match &plan.node {
            PlanNode::ReadDelta(e, du) => {
                if *du == u {
                    out.push(*e);
                }
            }
            PlanNode::ScanBase(_)
            | PlanNode::ScanDelta { .. }
            | PlanNode::ReadMat(_)
            | PlanNode::IndexScan { .. } => {}
            PlanNode::IndexNlJoin { outer, .. } => walk(outer, u, out),
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::HashAggregate { input, .. }
            | PlanNode::Distinct { input } => walk(input, u, out),
            PlanNode::HashJoin { build, probe, .. } => {
                walk(build, u, out);
                walk(probe, u, out);
            }
            PlanNode::MergeJoin { left, right, .. }
            | PlanNode::NlJoin { left, right, .. }
            | PlanNode::Minus { left, right } => {
                walk(left, u, out);
                walk(right, u, out);
            }
            PlanNode::UnionAll(inputs) => {
                for i in inputs {
                    walk(i, u, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(plan, u, &mut out);
    out
}

/// Topologically level `items` by `deps_of` (edges must point at other
/// items in the slice): every item lands in the first level after all of
/// its dependencies. Falls back to one final level for any remainder (a
/// cycle would be a planner bug; executing the remainder serially in one
/// level keeps behaviour defined).
pub(crate) fn level_items<F>(items: &[EqId], deps_of: F) -> Vec<Vec<EqId>>
where
    F: Fn(EqId) -> Vec<EqId>,
{
    let mut placed: HashSet<EqId> = HashSet::new();
    let mut remaining: Vec<EqId> = items.to_vec();
    let mut levels = Vec::new();
    while !remaining.is_empty() {
        let in_remaining: HashSet<EqId> = remaining.iter().copied().collect();
        let (ready, rest): (Vec<EqId>, Vec<EqId>) = remaining.iter().copied().partition(|&e| {
            deps_of(e)
                .into_iter()
                .all(|d| placed.contains(&d) || !in_remaining.contains(&d))
        });
        if ready.is_empty() {
            levels.push(rest);
            break;
        }
        placed.extend(ready.iter().copied());
        levels.push(ready);
        remaining = rest;
    }
    levels
}

/// Reorder rows from one schema layout to another (same attribute set).
pub fn align_rows(rows: Vec<Tuple>, from: &Schema, to: &Schema) -> Vec<Tuple> {
    if from.ids() == to.ids() {
        return rows;
    }
    let positions = positions_for(from, to);
    rows.into_iter()
        .map(|r| project_positions(&r, &positions))
        .collect()
}

fn positions_for(from: &Schema, to: &Schema) -> Vec<usize> {
    to.ids()
        .iter()
        .map(|a| {
            from.position_of(*a)
                .unwrap_or_else(|| panic!("attribute {a} missing during alignment"))
        })
        .collect()
}

fn project_positions(row: &[Value], positions: &[usize]) -> Tuple {
    positions.iter().map(|&i| row[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::schema::Attribute;
    use mvmqo_relalg::types::DataType;

    fn schema(ids: &[u32]) -> Schema {
        Schema::new(
            ids.iter()
                .map(|&i| Attribute {
                    id: AttrId(i),
                    name: format!("a{i}"),
                    data_type: DataType::Int,
                })
                .collect(),
        )
    }

    #[test]
    fn align_rows_reorders_columns() {
        let from = schema(&[1, 2]);
        let to = schema(&[2, 1]);
        let rows = vec![vec![Value::Int(10), Value::Int(20)]];
        let out = align_rows(rows, &from, &to);
        assert_eq!(out[0], vec![Value::Int(20), Value::Int(10)]);
    }

    #[test]
    fn align_rows_identical_schema_is_identity() {
        let from = schema(&[3, 4, 5]);
        let to = schema(&[3, 4, 5]);
        let rows = vec![vec![Value::Int(1), Value::Int(2), Value::Int(3)]];
        assert_eq!(align_rows(rows.clone(), &from, &to), rows);
    }

    #[test]
    fn align_rows_fully_permuted_schema() {
        let from = schema(&[1, 2, 3, 4]);
        let to = schema(&[4, 2, 1, 3]);
        let rows = vec![
            vec![
                Value::Int(10),
                Value::Int(20),
                Value::Int(30),
                Value::Int(40),
            ],
            vec![
                Value::Int(11),
                Value::Int(21),
                Value::Int(31),
                Value::Int(41),
            ],
        ];
        let out = align_rows(rows, &from, &to);
        assert_eq!(
            out[0],
            vec![
                Value::Int(40),
                Value::Int(20),
                Value::Int(10),
                Value::Int(30)
            ]
        );
        assert_eq!(
            out[1],
            vec![
                Value::Int(41),
                Value::Int(21),
                Value::Int(11),
                Value::Int(31)
            ]
        );
    }

    #[test]
    fn align_rows_projects_to_narrower_schema() {
        // A target schema that keeps a subset of the source attributes
        // (UnionAll arms project shared attributes this way).
        let from = schema(&[1, 2, 3]);
        let to = schema(&[3, 1]);
        let rows = vec![vec![Value::Int(10), Value::Int(20), Value::Int(30)]];
        let out = align_rows(rows, &from, &to);
        assert_eq!(out[0], vec![Value::Int(30), Value::Int(10)]);
    }

    #[test]
    fn align_rows_empty_input_stays_empty() {
        let from = schema(&[1, 2]);
        let to = schema(&[2, 1]);
        assert!(align_rows(Vec::new(), &from, &to).is_empty());
    }

    #[test]
    #[should_panic(expected = "missing during alignment")]
    fn align_rows_missing_attribute_panics() {
        // The target wants an attribute the source never produced — a
        // planner bug, which must fail loudly rather than mis-align.
        let from = schema(&[1, 2]);
        let to = schema(&[1, 7]);
        align_rows(vec![vec![Value::Int(1), Value::Int(2)]], &from, &to);
    }

    #[test]
    fn runtime_state_reports_contents() {
        let mut state = RuntimeState::new();
        assert_eq!(state.mat_count(), 0);
        assert_eq!(state.total_tuples(), 0);
        let e = EqId(0);
        assert!(!state.is_fresh(e));
        assert!(state.mat_rows(e).is_none());
        state.mats.insert(
            e,
            StoredTable::with_rows(schema(&[1]), vec![vec![Value::Int(5)]]),
        );
        state.fresh.insert(e);
        assert_eq!(state.mat_count(), 1);
        assert_eq!(state.total_tuples(), 1);
        assert!(state.is_fresh(e));
        assert_eq!(state.mat_rows(e).unwrap().len(), 1);
    }

    #[test]
    fn agg_state_fold_and_unfold() {
        let s = schema(&[0, 1]);
        let mut state = AggState::new(
            vec![AttrId(0)],
            vec![AggSpec::new(
                mvmqo_relalg::agg::AggFunc::Sum,
                ScalarExpr::Col(AttrId(1)),
                AttrId(5),
            )],
            s,
        );
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(5)],
            vec![Value::Int(2), Value::Int(7)],
        ];
        assert!(!state.fold(&rows, DeltaKind::Insert));
        assert_eq!(state.rows().len(), 2);
        // Delete one row of group 1.
        assert!(!state.fold(&[vec![Value::Int(1), Value::Int(10)]], DeltaKind::Delete));
        let out = state.rows();
        assert!(out.contains(&vec![Value::Int(1), Value::Int(5)]));
        // Delete the rest of group 1 → group disappears.
        state.fold(&[vec![Value::Int(1), Value::Int(5)]], DeltaKind::Delete);
        assert_eq!(state.rows().len(), 1);
    }

    #[test]
    fn min_delete_requests_recompute() {
        let s = schema(&[0, 1]);
        let mut state = AggState::new(
            vec![AttrId(0)],
            vec![AggSpec::new(
                mvmqo_relalg::agg::AggFunc::Min,
                ScalarExpr::Col(AttrId(1)),
                AttrId(5),
            )],
            s,
        );
        state.fold(&[vec![Value::Int(1), Value::Int(10)]], DeltaKind::Insert);
        assert!(state.fold(&[vec![Value::Int(1), Value::Int(10)]], DeltaKind::Delete));
    }

    #[test]
    fn distinct_state_counts_support() {
        let mut d = DistinctState::default();
        d.fold(
            &[
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
            DeltaKind::Insert,
        );
        assert_eq!(d.rows().len(), 2);
        d.fold(&[vec![Value::Int(1)]], DeltaKind::Delete);
        assert_eq!(d.rows().len(), 2); // support 1 left
        d.fold(&[vec![Value::Int(1)]], DeltaKind::Delete);
        assert_eq!(d.rows().len(), 1);
    }
}
