//! Execution runtime: stored materializations, vectorized plan evaluation,
//! and delta merging.
//!
//! The runtime owns the materialized results (user views, permanent extras,
//! and on-demand temporaries), evaluates [`PhysPlan`]s against the *current*
//! database state, and applies computed differentials. Temporarily
//! materialized results are recomputed on demand and invalidated whenever a
//! base relation they depend on is updated, which keeps every full input a
//! delta plan reads in exactly the state updates `1..u−1` applied — the
//! semantics §5.2's per-node state entries describe.
//!
//! Evaluation is split in two:
//!
//! 1. `Runtime::prepare` — the only *mutable* pass: materializes every
//!    stored result the plan reads and creates any index it probes;
//! 2. `EvalCtx::eval` — a read-only vectorized evaluator over columnar
//!    [`Batch`]es. Because it only holds shared references, the epoch
//!    scheduler can run independent plan roots on separate threads against
//!    one prepared state.

use crate::error::{panic_message, ExecError};
use crate::meter::Meter;
use mvmqo_core::cost::CostModel;
use mvmqo_core::dag::{Dag, EqId};
use mvmqo_core::opt::StoredRef;
use mvmqo_core::plan::{PhysPlan, PlanNode};
use mvmqo_core::update::UpdateId;
use mvmqo_relalg::agg::{Accumulator, AggSpec};
use mvmqo_relalg::batch::{Batch, Column, ColumnData, CompiledPredicate};
use mvmqo_relalg::catalog::Catalog;
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::hash::{u64_map_with_capacity, U64Map};
use mvmqo_relalg::schema::{AttrId, Schema};
use mvmqo_relalg::tuple::Tuple;
use mvmqo_relalg::types::{DataType, Value};
use mvmqo_storage::database::Database;
use mvmqo_storage::delta::{DeltaKind, DeltaSet};
use mvmqo_storage::faults::FaultRegistry;
use mvmqo_storage::index::IndexKind;
use mvmqo_storage::table::StoredTable;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrder};

/// Hidden per-group accumulator state for a maintained aggregate view
/// (footnote 1 of the paper: counts must be kept to apply deletions).
#[derive(Debug, Clone)]
pub struct AggState {
    pub group_by: Vec<AttrId>,
    pub specs: Vec<AggSpec>,
    pub input_schema: Schema,
    groups: HashMap<Vec<Value>, Vec<Accumulator>>,
}

impl AggState {
    pub fn new(group_by: Vec<AttrId>, specs: Vec<AggSpec>, input_schema: Schema) -> Self {
        AggState {
            group_by,
            specs,
            input_schema,
            groups: HashMap::new(),
        }
    }

    // Invariant, not input validation: `group_by` is derived from
    // `input_schema` when the state is built, so every group attribute is
    // present by construction.
    #[allow(clippy::expect_used)]
    fn key_positions(&self) -> Vec<usize> {
        self.group_by
            .iter()
            .map(|g| self.input_schema.position_of(*g).expect("group attr"))
            .collect()
    }

    /// Iterate the hidden per-group accumulators (the durability layer
    /// persists them so aggregate views stay incrementally maintainable
    /// after recovery).
    pub fn group_entries(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<Accumulator>)> {
        self.groups.iter()
    }

    /// Reassemble from persisted parts (inverse of
    /// [`AggState::group_entries`] plus the public fields).
    pub fn from_parts(
        group_by: Vec<AttrId>,
        specs: Vec<AggSpec>,
        input_schema: Schema,
        groups: Vec<(Vec<Value>, Vec<Accumulator>)>,
    ) -> Self {
        AggState {
            group_by,
            specs,
            input_schema,
            groups: groups.into_iter().collect(),
        }
    }

    /// Fold raw input rows in (inserts) or out (deletes). Returns `true` if
    /// a non-removable aggregate (MIN/MAX) saw a deletion and the state can
    /// no longer answer exactly — the caller must recompute.
    pub fn fold(&mut self, rows: &[Tuple], kind: DeltaKind) -> bool {
        let key_pos = self.key_positions();
        let mut needs_recompute = false;
        for row in rows {
            let key: Vec<Value> = key_pos.iter().map(|&i| row[i].clone()).collect();
            let specs = &self.specs;
            let entry = self
                .groups
                .entry(key)
                .or_insert_with(|| specs.iter().map(|s| Accumulator::new(s.func)).collect());
            for (acc, spec) in entry.iter_mut().zip(specs) {
                let v = spec.input.eval(row, &self.input_schema);
                match kind {
                    DeltaKind::Insert => acc.add(&v),
                    DeltaKind::Delete => {
                        if spec.func.removable() {
                            acc.remove(&v);
                        } else {
                            needs_recompute = true;
                        }
                    }
                }
            }
        }
        // Drop extinct groups.
        self.groups.retain(|_, accs| !accs[0].is_empty());
        needs_recompute
    }

    /// Columnar [`AggState::fold`]: the merge path's input differential
    /// arrives as a [`Batch`] and is folded by column access — group keys
    /// and plain-column aggregate arguments read straight from the column
    /// vectors; only general expressions fall back to a scratch row. The
    /// batch is aligned to the state's input layout first, so column-order
    /// drift cannot mis-bind arguments.
    pub fn fold_batch(&mut self, batch: &Batch, kind: DeltaKind) -> bool {
        let batch = batch.clone().align(&self.input_schema);
        let key_pos = self.key_positions();
        let arg_cols: Vec<Option<usize>> = self
            .specs
            .iter()
            .map(|s| match &s.input {
                ScalarExpr::Col(id) => self.input_schema.position_of(*id),
                _ => None,
            })
            .collect();
        let mut needs_recompute = false;
        let mut scratch: Vec<Value> = Vec::new();
        for i in 0..batch.num_rows() {
            let phys = batch.physical(i) as usize;
            let key: Vec<Value> = key_pos
                .iter()
                .map(|&c| batch.column(c).value(phys))
                .collect();
            let specs = &self.specs;
            let entry = self
                .groups
                .entry(key)
                .or_insert_with(|| specs.iter().map(|s| Accumulator::new(s.func)).collect());
            let mut scratch_filled = false;
            for ((acc, spec), arg) in entry.iter_mut().zip(specs).zip(&arg_cols) {
                let v = match arg {
                    Some(c) => batch.column(*c).value(phys),
                    None => {
                        if !scratch_filled {
                            batch.write_row(phys as u32, &mut scratch);
                            scratch_filled = true;
                        }
                        spec.input.eval(&scratch, &self.input_schema)
                    }
                };
                match kind {
                    DeltaKind::Insert => acc.add(&v),
                    DeltaKind::Delete => {
                        if spec.func.removable() {
                            acc.remove(&v);
                        } else {
                            needs_recompute = true;
                        }
                    }
                }
            }
        }
        self.groups.retain(|_, accs| !accs[0].is_empty());
        needs_recompute
    }

    /// Current view rows: group key columns followed by aggregate values.
    pub fn rows(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self
            .groups
            .iter()
            .map(|(key, accs)| {
                let mut row = key.clone();
                row.extend(accs.iter().map(Accumulator::finish));
                row
            })
            .collect();
        out.sort();
        out
    }

    /// Current view contents as a columnar batch in `schema` layout (group
    /// keys then aggregate outputs), sorted by key for the deterministic
    /// order the row path produced. This is what the deferred merge rebuild
    /// installs — no row materialization.
    pub fn output_batch(&self, schema: &Schema) -> Batch {
        let mut entries: Vec<(&Vec<Value>, &Vec<Accumulator>)> = self.groups.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut columns: Vec<Column> = schema
            .attrs()
            .iter()
            .map(|a| Column::with_capacity(a.data_type, entries.len()))
            .collect();
        let nkeys = self.group_by.len();
        debug_assert_eq!(schema.len(), nkeys + self.specs.len());
        for (key, accs) in entries {
            for (c, v) in key.iter().enumerate() {
                columns[c].push(v);
            }
            for (k, acc) in accs.iter().enumerate() {
                columns[nkeys + k].push(&acc.finish());
            }
        }
        Batch::from_columns(schema.clone(), columns)
    }
}

/// Hidden support counts for a maintained DISTINCT view.
#[derive(Debug, Clone, Default)]
pub struct DistinctState {
    counts: HashMap<Tuple, i64>,
}

impl DistinctState {
    pub fn fold(&mut self, rows: &[Tuple], kind: DeltaKind) {
        for row in rows {
            let c = self.counts.entry(row.clone()).or_insert(0);
            match kind {
                DeltaKind::Insert => *c += 1,
                DeltaKind::Delete => *c -= 1,
            }
        }
        self.counts.retain(|_, c| *c > 0);
    }

    /// Columnar [`DistinctState::fold`]: support counts updated from a
    /// differential batch (aligned to `schema`, the stored layout) using
    /// the batch's own multiset counts, so each distinct delta row is
    /// materialized once instead of once per occurrence.
    pub fn fold_batch(&mut self, batch: &Batch, schema: &Schema, kind: DeltaKind) {
        let batch = batch.clone().align(schema);
        for (rep, n) in batch.counts() {
            let row = batch.tuple_at_physical(rep);
            let c = self.counts.entry(row).or_insert(0);
            match kind {
                DeltaKind::Insert => *c += n,
                DeltaKind::Delete => *c -= n,
            }
        }
        self.counts.retain(|_, c| *c > 0);
    }

    pub fn rows(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.counts.keys().cloned().collect();
        out.sort();
        out
    }

    /// Iterate the hidden support counts (persisted by the durability
    /// layer so DISTINCT views survive recovery incrementally).
    pub fn count_entries(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.counts.iter().map(|(t, c)| (t, *c))
    }

    /// Reassemble from persisted support counts.
    pub fn from_parts(counts: Vec<(Tuple, i64)>) -> Self {
        DistinctState {
            counts: counts.into_iter().collect(),
        }
    }

    /// Current view contents as a sorted columnar batch (deferred merge
    /// rebuild install path).
    pub fn output_batch(&self, schema: &Schema) -> Batch {
        let mut keys: Vec<&Tuple> = self.counts.keys().collect();
        keys.sort();
        let mut columns: Vec<Column> = schema
            .attrs()
            .iter()
            .map(|a| Column::with_capacity(a.data_type, keys.len()))
            .collect();
        for row in keys {
            debug_assert_eq!(row.len(), columns.len());
            for (c, v) in row.iter().enumerate() {
                columns[c].push(v);
            }
        }
        Batch::from_columns(schema.clone(), columns)
    }
}

/// The materialized state a refresh cycle leaves behind: stored results,
/// their freshness marks, and the hidden aggregate/distinct support state.
///
/// For the one-shot pipeline this is created and dropped inside
/// [`crate::run::execute_program`]; a long-lived warehouse engine instead
/// keeps it across epochs (via [`crate::run::execute_epoch`]) so permanent
/// materializations and their indices are *reused*, not rebuilt. Node ids
/// are only meaningful for the DAG/program the state was built under — drop
/// the state whenever the engine re-optimizes.
#[derive(Debug, Clone, Default)]
pub struct RuntimeState {
    pub(crate) mats: HashMap<EqId, StoredTable>,
    pub(crate) fresh: HashSet<EqId>,
    pub(crate) agg_states: HashMap<EqId, AggState>,
    pub(crate) distinct_states: HashMap<EqId, DistinctState>,
    /// Maintained aggregate/distinct results whose hidden support state has
    /// absorbed merges the stored image has not: the stored table is
    /// rebuilt from the state *once*, at the first read (or at epoch end),
    /// instead of after every one of the step-by-step merges that touch it.
    pub(crate) deferred: HashSet<EqId>,
}

impl RuntimeState {
    pub fn new() -> Self {
        RuntimeState::default()
    }

    /// Rows of a stored result, if present (warehouse `query` reads served
    /// from the maintained materializations).
    pub fn mat_rows(&self, e: EqId) -> Option<&[Tuple]> {
        self.mats.get(&e).map(|t| t.rows())
    }

    /// Number of stored results.
    pub fn mat_count(&self) -> usize {
        self.mats.len()
    }

    /// Total tuples held by stored results.
    pub fn total_tuples(&self) -> usize {
        self.mats.values().map(StoredTable::len).sum()
    }

    /// True if `e` is stored and fresh.
    pub fn is_fresh(&self, e: EqId) -> bool {
        self.fresh.contains(&e)
    }

    /// Iterate every stored result (the durability layer walks this when
    /// snapshotting permanent materializations).
    pub fn mats(&self) -> impl Iterator<Item = (EqId, &StoredTable)> {
        self.mats.iter().map(|(e, t)| (*e, t))
    }

    /// Hidden aggregate support state of a stored result, if any.
    pub fn agg_state(&self, e: EqId) -> Option<&AggState> {
        self.agg_states.get(&e)
    }

    /// Hidden DISTINCT support state of a stored result, if any.
    pub fn distinct_state(&self, e: EqId) -> Option<&DistinctState> {
        self.distinct_states.get(&e)
    }

    /// True while some stored image lags its hidden support state (a
    /// deferred rebuild is pending).
    pub fn has_deferred(&self) -> bool {
        !self.deferred.is_empty()
    }

    /// Realize every pending deferred rebuild in place: each lagging
    /// stored table is rebuilt from its aggregate/distinct support state,
    /// keeping the indices it already had. [`crate::Runtime::take_state`]
    /// does this at epoch end; the durability layer calls it again
    /// defensively before serializing, so a snapshot can never capture a
    /// stale stored-table image.
    // Invariant, not input validation: an id only enters `deferred` when its
    // stored table and support state were installed in the same merge, so
    // both lookups succeed by construction.
    #[allow(clippy::expect_used)]
    pub fn realize_deferred(&mut self) {
        let pending: Vec<EqId> = self.deferred.drain().collect();
        for e in pending {
            let old = self.mats.get(&e).expect("deferred result stored");
            let schema = old.schema().clone();
            let specs: Vec<_> = old
                .indexed_attrs()
                .map(|a| (a, old.index_on(a).expect("indexed attr").kind))
                .collect();
            let batch = if let Some(st) = self.agg_states.get(&e) {
                st.output_batch(&schema)
            } else if let Some(st) = self.distinct_states.get(&e) {
                st.output_batch(&schema)
            } else {
                unreachable!("deferred {e} has neither aggregate nor distinct state")
            };
            let mut table = StoredTable::from_batch(batch);
            for (attr, kind) in specs {
                table.create_index(attr, kind);
            }
            self.mats.insert(e, table);
        }
    }

    /// Install a recovered stored result (and its freshness mark) under a
    /// node id of the *current* plan. Recovery resolves view names to the
    /// re-planned DAG's root ids before calling this — raw ids from an old
    /// session are meaningless here.
    pub fn install_mat(&mut self, e: EqId, table: StoredTable, fresh: bool) {
        self.mats.insert(e, table);
        if fresh {
            self.fresh.insert(e);
        } else {
            self.fresh.remove(&e);
        }
    }

    /// Install recovered aggregate support state for a stored result.
    pub fn install_agg_state(&mut self, e: EqId, state: AggState) {
        self.agg_states.insert(e, state);
    }

    /// Install recovered DISTINCT support state for a stored result.
    pub fn install_distinct_state(&mut self, e: EqId, state: DistinctState) {
        self.distinct_states.insert(e, state);
    }

    /// Keep only the listed stored results (and their hidden
    /// aggregate/distinct support state), dropping everything else.
    ///
    /// Used across re-optimizations: the re-entrant optimizer's DAG keeps
    /// node ids stable, so a result that stayed fresh under the old plan
    /// and is maintained by the new one carries over instead of being
    /// rebuilt at the next epoch's setup.
    pub fn retain_mats(&mut self, keep: &HashSet<EqId>) {
        debug_assert!(
            self.deferred.is_empty(),
            "deferred rebuilds must be realized before state is carried over"
        );
        self.mats.retain(|e, _| keep.contains(e));
        self.fresh.retain(|e| keep.contains(e));
        self.agg_states.retain(|e, _| keep.contains(e));
        self.distinct_states.retain(|e, _| keep.contains(e));
    }
}

/// How a full plan's root folds into stored state when materialized:
/// grouped and distinct roots keep hidden support state (footnote 1), so
/// the evaluator runs their *input* plan and the install step folds it.
enum RootKind {
    Plain,
    Agg {
        group_by: Vec<AttrId>,
        aggs: Vec<AggSpec>,
        input_schema: Schema,
    },
    Distinct,
}

/// One claimed materialization build: what to evaluate and how to install
/// the result. Produced by `Runtime::claim_build`, consumed by
/// `Runtime::install_build` — the shared halves of the serial and
/// parallel materialization paths.
struct MatWork {
    e: EqId,
    schema: Schema,
    kind: RootKind,
    eval_plan: PhysPlan,
}

/// The execution runtime for one maintenance cycle.
pub struct Runtime<'a> {
    pub dag: &'a Dag,
    pub catalog: &'a Catalog,
    pub model: CostModel,
    pub db: &'a mut Database,
    pub deltas: &'a DeltaSet,
    full_plans: BTreeMap<EqId, PhysPlan>,
    /// Indices to maintain on materialized nodes (chosen by the optimizer).
    mat_indices: HashMap<EqId, Vec<AttrId>>,
    state: RuntimeState,
    delta_store: HashMap<(EqId, UpdateId), Batch>,
    /// Worker-thread budget for plan evaluation (morsel-level parallelism
    /// inside operators and root-level parallelism across independent
    /// plans). `1` — the default — is the serial reference path.
    threads: usize,
    /// Full results actually (re)computed this cycle — stays at zero for
    /// results served from a persisted [`RuntimeState`].
    pub full_builds: usize,
    pub meter: Meter,
    /// Fault-injection registry checked at every operator evaluation and
    /// merge. Defaults to the inert shared registry (one relaxed atomic
    /// load per check); the chaos tests arm a live one via
    /// [`Runtime::set_faults`].
    faults: &'a FaultRegistry,
}

impl<'a> Runtime<'a> {
    pub fn new(
        dag: &'a Dag,
        catalog: &'a Catalog,
        model: CostModel,
        db: &'a mut Database,
        deltas: &'a DeltaSet,
        full_plans: BTreeMap<EqId, PhysPlan>,
        mat_indices: HashMap<EqId, Vec<AttrId>>,
    ) -> Self {
        Runtime::with_state(
            dag,
            catalog,
            model,
            db,
            deltas,
            full_plans,
            mat_indices,
            RuntimeState::new(),
        )
    }

    /// Like [`Runtime::new`], but resuming from a persisted [`RuntimeState`]
    /// (the warehouse epoch path): stored results that are still fresh are
    /// served as-is instead of being rebuilt.
    #[allow(clippy::too_many_arguments)]
    pub fn with_state(
        dag: &'a Dag,
        catalog: &'a Catalog,
        model: CostModel,
        db: &'a mut Database,
        deltas: &'a DeltaSet,
        full_plans: BTreeMap<EqId, PhysPlan>,
        mat_indices: HashMap<EqId, Vec<AttrId>>,
        state: RuntimeState,
    ) -> Self {
        Runtime {
            dag,
            catalog,
            model,
            db,
            deltas,
            full_plans,
            mat_indices,
            state,
            delta_store: HashMap::new(),
            threads: 1,
            full_builds: 0,
            meter: Meter::new(),
            faults: FaultRegistry::none(),
        }
    }

    /// Install a fault-injection registry; operator evaluations and merges
    /// check it and surface armed faults as [`ExecError::Fault`].
    pub fn set_faults(&mut self, faults: &'a FaultRegistry) {
        self.faults = faults;
    }

    /// Set the worker-thread budget for plan evaluation. `1` (the default)
    /// runs every operator on its serial reference path; larger budgets
    /// enable morsel-level parallelism inside scans, filters, hash joins,
    /// and grouped aggregation, plus root-level parallelism across
    /// independent plans of one scheduler level.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The current worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Hand the materialized state back to the caller (end of an epoch).
    /// Any deferred aggregate/distinct rebuilds are realized first, so the
    /// persisted state always serves current stored images.
    pub fn take_state(&mut self) -> RuntimeState {
        let deferred: Vec<EqId> = self.state.deferred.iter().copied().collect();
        for e in deferred {
            self.realize_deferred(e);
        }
        std::mem::take(&mut self.state)
    }

    /// Rebuild a maintained aggregate/distinct result's stored table from
    /// its hidden support state (the deferred half of a merge). Columnar:
    /// the output batch is built straight from the accumulators.
    // Invariant, not input validation: ids enter `deferred` only alongside
    // their stored table and support state (see `RuntimeState`).
    #[allow(clippy::expect_used)]
    fn realize_deferred(&mut self, e: EqId) {
        if !self.state.deferred.remove(&e) {
            return;
        }
        let schema = self
            .state
            .mats
            .get(&e)
            .expect("deferred result stored")
            .schema()
            .clone();
        let batch = if let Some(st) = self.state.agg_states.get(&e) {
            st.output_batch(&schema)
        } else if let Some(st) = self.state.distinct_states.get(&e) {
            st.output_batch(&schema)
        } else {
            unreachable!("deferred {e} has neither aggregate nor distinct state")
        };
        // No extra meter charge: the merges that made the state current
        // were charged when they folded, exactly as the eager path was.
        let mut table = StoredTable::from_batch(batch);
        for attr in self.mat_indices.get(&e).cloned().unwrap_or_default() {
            table.create_index(attr, IndexKind::Hash);
        }
        self.state.mats.insert(e, table);
    }

    /// Rows of a materialized result (test/report access; does not
    /// compute). Returns `None` while `e` has a *deferred* rebuild
    /// pending (its support state absorbed merges the stored image has
    /// not) — serving the stale image silently would be a trap; use
    /// [`Runtime::materialize`] to realize and read.
    pub fn mat_rows(&self, e: EqId) -> Option<&[Tuple]> {
        if self.state.deferred.contains(&e) {
            return None;
        }
        self.state.mats.get(&e).map(|t| t.rows())
    }

    /// Ensure a materialized result exists, is fresh, and its stored image
    /// is current; returns the stored table.
    pub fn materialize(&mut self, e: EqId) -> Result<&StoredTable, ExecError> {
        if !self.state.fresh.contains(&e) {
            // A pending deferred rebuild is moot: the full rebuild below
            // replaces the stored image (and its support state) anyway.
            self.state.deferred.remove(&e);
            let work = self.claim_build(e)?;
            let batch = self.eval_batch(&work.eval_plan)?;
            self.install_build(work, batch);
        } else {
            self.realize_deferred(e);
        }
        self.state
            .mats
            .get(&e)
            .ok_or_else(|| ExecError::invariant(format!("{e} absent after materialize")))
    }

    /// Claim one full build: count it, classify the plan root, and return
    /// the plan the evaluator must actually run (the aggregate/distinct
    /// *input* — so hidden accumulator state can be built from it,
    /// footnote 1 of the paper — or the plan itself otherwise). Shared by
    /// the serial and parallel materialization paths so their semantics
    /// cannot drift.
    fn claim_build(&mut self, e: EqId) -> Result<MatWork, ExecError> {
        let plan = self
            .full_plans
            .get(&e)
            .ok_or(ExecError::MissingPlan(e))?
            .clone();
        self.full_builds += 1;
        let schema = plan.schema.clone();
        Ok(match plan.node {
            PlanNode::HashAggregate {
                input,
                group_by,
                aggs,
            } => MatWork {
                e,
                schema,
                kind: RootKind::Agg {
                    group_by,
                    aggs,
                    input_schema: input.schema.clone(),
                },
                eval_plan: *input,
            },
            PlanNode::Distinct { input } => MatWork {
                e,
                schema,
                kind: RootKind::Distinct,
                eval_plan: *input,
            },
            _ => MatWork {
                e,
                schema,
                kind: RootKind::Plain,
                eval_plan: plan,
            },
        })
    }

    /// Install one evaluated build: fold hidden aggregate/distinct support
    /// state if the root needs it, charge the store, build the table with
    /// its chosen indices, and mark it fresh. Columnar end-to-end: the
    /// evaluated batch is adopted (plain roots) or folded and re-emitted
    /// from the support state (grouped/distinct roots) without a row
    /// detour.
    fn install_build(&mut self, work: MatWork, eval_batch: Batch) {
        let MatWork {
            e, schema, kind, ..
        } = work;
        let batch = match kind {
            RootKind::Plain => eval_batch.align(&schema),
            RootKind::Agg {
                group_by,
                aggs,
                input_schema,
            } => {
                let mut state = AggState::new(group_by, aggs, input_schema);
                state.fold_batch(&eval_batch, DeltaKind::Insert);
                let batch = state.output_batch(&schema);
                self.state.agg_states.insert(e, state);
                batch
            }
            RootKind::Distinct => {
                let mut state = DistinctState::default();
                state.fold_batch(&eval_batch, &schema, DeltaKind::Insert);
                let batch = state.output_batch(&schema);
                self.state.distinct_states.insert(e, state);
                batch
            }
        };
        self.meter
            .charge_seq(&self.model, batch.num_rows(), schema.row_width());
        let mut table = StoredTable::from_batch(batch);
        for attr in self.mat_indices.get(&e).cloned().unwrap_or_default() {
            table.create_index(attr, IndexKind::Hash);
        }
        self.state.mats.insert(e, table);
        self.state.fresh.insert(e);
    }

    /// Materialize a set of results, optionally in parallel: the targets
    /// are topologically levelled by their stored-result dependencies, and
    /// within each level the full plans are evaluated concurrently by the
    /// read-only vectorized evaluator (one scoped thread per plan root).
    /// All state mutation — dependency preparation before a level, result
    /// installation after — stays serial and in target order, so the
    /// outcome is identical to calling [`Runtime::materialize`] in a loop.
    pub fn materialize_many(&mut self, targets: &[EqId], parallel: bool) -> Result<(), ExecError> {
        let mut seen = HashSet::new();
        let todo: Vec<EqId> = targets
            .iter()
            .copied()
            .filter(|e| seen.insert(*e) && !self.state.fresh.contains(e))
            .collect();
        if !parallel || todo.len() < 2 {
            for e in todo {
                self.materialize(e)?;
            }
            return Ok(());
        }
        let in_set: HashSet<EqId> = todo.iter().copied().collect();
        let levels = level_items(&todo, |e| {
            self.full_plans
                .get(&e)
                .map(|p| {
                    mat_refs(p)
                        .into_iter()
                        .filter(|d| in_set.contains(d) && *d != e)
                        .collect()
                })
                .unwrap_or_default()
        });

        for level in levels {
            // Serial mutable pass: claim builds, prepare dependencies.
            let mut work: Vec<MatWork> = Vec::with_capacity(level.len());
            for &e in &level {
                if self.state.fresh.contains(&e) {
                    continue;
                }
                let w = self.claim_build(e)?;
                self.prepare(&w.eval_plan)?;
                work.push(w);
            }
            // Parallel read-only evaluation of the level's plan roots.
            let plans: Vec<&PhysPlan> = work.iter().map(|w| &w.eval_plan).collect();
            let results = eval_parallel(self, &plans)?;
            // Serial installation, in target order.
            for (w, (batch, meter)) in work.into_iter().zip(results) {
                self.meter.absorb(&meter);
                self.install_build(w, batch);
            }
        }
        Ok(())
    }

    /// Drop a temporary materialization.
    pub fn drop_mat(&mut self, e: EqId) {
        self.state.mats.remove(&e);
        self.state.fresh.remove(&e);
        self.state.agg_states.remove(&e);
        self.state.distinct_states.remove(&e);
        self.state.deferred.remove(&e);
    }

    /// Mark every materialization depending on `table` stale, except the
    /// maintained ones listed in `keep` (they were just merged).
    pub fn invalidate_depending(
        &mut self,
        table: mvmqo_relalg::catalog::TableId,
        keep: &HashSet<EqId>,
    ) {
        let stale: Vec<EqId> = self
            .state
            .fresh
            .iter()
            .copied()
            .filter(|e| self.dag.eq(*e).depends_on(table) && !keep.contains(e))
            .collect();
        for e in stale {
            self.state.fresh.remove(&e);
        }
    }

    /// Store a temporarily materialized differential, columnar: the batch
    /// that fell out of evaluation is kept as-is (columns `Arc`-shared), so
    /// downstream `ReadDelta`s serve it without a row round-trip.
    pub fn store_delta(&mut self, e: EqId, u: UpdateId, batch: Batch) {
        self.meter.charge_seq(
            &self.model,
            batch.num_rows(),
            self.dag.eq(e).schema.row_width(),
        );
        self.delta_store.insert((e, u), batch);
    }

    /// Clear stored differentials of one update step.
    pub fn clear_deltas(&mut self, u: UpdateId) {
        self.delta_store.retain(|(_, du), _| *du != u);
    }

    // ==================================================================
    // Merging (§6.1: how maintained results absorb differentials)
    // ==================================================================

    /// Merge a plain differential batch into a maintained result. Fully
    /// columnar: the delta batch is aligned to the stored layout and
    /// applied as a column append (inserts) or a keep-mask compaction with
    /// index position remap (deletes).
    pub fn merge_plain(&mut self, e: EqId, delta: Batch, kind: DeltaKind) -> Result<(), ExecError> {
        self.faults.hit("exec:merge")?;
        let width = self.dag.eq(e).schema.row_width();
        self.meter.charge_seq(&self.model, delta.num_rows(), width);
        let table = self
            .state
            .mats
            .get_mut(&e)
            .ok_or_else(|| ExecError::invariant(format!("maintained result {e} not stored")))?;
        let delta = delta.align(table.schema());
        match kind {
            DeltaKind::Insert => table.apply_batch_delta(Some(&delta), None),
            DeltaKind::Delete => table.apply_batch_delta(None, Some(&delta)),
        }
        self.state.fresh.insert(e);
        Ok(())
    }

    /// Merge a raw input differential batch into a maintained aggregate.
    /// The fold is immediate; the stored table rebuild is *deferred* until
    /// the result is next read (or the epoch ends), so a view whose input
    /// is touched by several update steps re-emits its groups once, not
    /// once per step. Returns `true` if the view had to fall back to
    /// recomputation (MIN/MAX deletion).
    pub fn merge_aggregate(
        &mut self,
        e: EqId,
        input: Batch,
        kind: DeltaKind,
    ) -> Result<bool, ExecError> {
        self.faults.hit("exec:merge")?;
        self.meter.charge_cpu(&self.model, input.num_rows());
        let state =
            self.state.agg_states.get_mut(&e).ok_or_else(|| {
                ExecError::invariant(format!("aggregate state for {e} not stored"))
            })?;
        let needs_recompute = state.fold_batch(&input, kind);
        if needs_recompute {
            // Affected-group recompute, realized as a full refresh (§3.1.2's
            // "significant extra work"; the cost model charges the same).
            self.state.deferred.remove(&e);
            self.state.fresh.remove(&e);
            self.materialize(e)?;
            return Ok(true);
        }
        self.state.deferred.insert(e);
        self.state.fresh.insert(e);
        Ok(false)
    }

    /// Merge a raw input differential batch into a maintained DISTINCT
    /// view (support-count fold now, stored rebuild deferred).
    pub fn merge_distinct(
        &mut self,
        e: EqId,
        input: Batch,
        kind: DeltaKind,
    ) -> Result<(), ExecError> {
        self.faults.hit("exec:merge")?;
        self.meter.charge_cpu(&self.model, input.num_rows());
        let schema = self
            .state
            .mats
            .get(&e)
            .ok_or_else(|| ExecError::invariant(format!("maintained result {e} not stored")))?
            .schema()
            .clone();
        let state =
            self.state.distinct_states.get_mut(&e).ok_or_else(|| {
                ExecError::invariant(format!("distinct state for {e} not stored"))
            })?;
        state.fold_batch(&input, &schema, kind);
        self.state.deferred.insert(e);
        self.state.fresh.insert(e);
        Ok(())
    }

    // ==================================================================
    // Plan evaluation (vectorized)
    // ==================================================================

    /// Evaluate a physical plan against the current state, as rows.
    pub fn eval(&mut self, plan: &PhysPlan) -> Result<Vec<Tuple>, ExecError> {
        Ok(self.eval_batch(plan)?.into_rows())
    }

    /// Evaluate a physical plan against the current state, as a columnar
    /// [`Batch`]. Runs the mutable `prepare` pass first, then the
    /// read-only vectorized evaluator.
    pub fn eval_batch(&mut self, plan: &PhysPlan) -> Result<Batch, ExecError> {
        self.prepare(plan)?;
        let mut meter = Meter::new();
        let batch = self.eval_ctx().eval(plan, &mut meter)?;
        self.meter.absorb(&meter);
        Ok(batch)
    }

    /// Read-only evaluation context over the runtime's current state.
    /// `Copy`, so the epoch scheduler can hand one to each worker thread.
    pub(crate) fn eval_ctx(&self) -> EvalCtx<'_> {
        EvalCtx {
            model: &self.model,
            db: &*self.db,
            deltas: self.deltas,
            mats: &self.state.mats,
            delta_store: &self.delta_store,
            threads: self.threads,
            faults: self.faults,
        }
    }

    /// Mutable pre-pass: materialize every stored result the plan reads
    /// and create any index it probes, so that evaluation itself is
    /// read-only (and therefore shareable across scheduler threads). This
    /// is also what lets the index nested-loop join probe the stored inner
    /// relation in place instead of cloning it.
    pub(crate) fn prepare(&mut self, plan: &PhysPlan) -> Result<(), ExecError> {
        match &plan.node {
            PlanNode::ScanBase(_) | PlanNode::ScanDelta { .. } | PlanNode::ReadDelta(..) => {}
            PlanNode::ReadMat(e) => {
                self.materialize(*e)?;
            }
            PlanNode::IndexScan { target, .. } => {
                if let StoredRef::Mat(e) = target {
                    self.materialize(*e)?;
                }
            }
            PlanNode::IndexNlJoin {
                outer, inner, keys, ..
            } => {
                self.prepare(outer)?;
                let t = self.stored_table_mut(*inner)?;
                if t.index_on(keys.1).is_none() {
                    t.create_index(keys.1, IndexKind::Hash);
                }
            }
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::HashAggregate { input, .. }
            | PlanNode::Distinct { input } => self.prepare(input)?,
            PlanNode::HashJoin { build, probe, .. } => {
                self.prepare(build)?;
                self.prepare(probe)?;
            }
            PlanNode::MergeJoin { left, right, .. }
            | PlanNode::NlJoin { left, right, .. }
            | PlanNode::Minus { left, right } => {
                self.prepare(left)?;
                self.prepare(right)?;
            }
            PlanNode::UnionAll(inputs) => {
                for i in inputs {
                    self.prepare(i)?;
                }
            }
        }
        Ok(())
    }

    /// Resolve a stored relation reference (mutable, for on-demand index
    /// creation during [`Runtime::prepare`]).
    fn stored_table_mut(&mut self, target: StoredRef) -> Result<&mut StoredTable, ExecError> {
        match target {
            StoredRef::Base(t) => Ok(self.db.base_mut(t)?),
            StoredRef::Mat(e) => {
                self.materialize(e)?;
                self.state
                    .mats
                    .get_mut(&e)
                    .ok_or_else(|| ExecError::invariant(format!("{e} absent after materialize")))
            }
        }
    }
}

/// The read-only vectorized evaluator: shared references to everything a
/// plan can touch after [`Runtime::prepare`] ran. All operators fold over
/// [`Batch`]es — filters/projections are selection/column updates, joins
/// build borrowed-key hash tables over column positions and emit row-id
/// pairs that are gathered into output columns once, at the end.
#[derive(Clone, Copy)]
pub(crate) struct EvalCtx<'r> {
    pub model: &'r CostModel,
    pub db: &'r Database,
    pub deltas: &'r DeltaSet,
    pub mats: &'r HashMap<EqId, StoredTable>,
    pub delta_store: &'r HashMap<(EqId, UpdateId), Batch>,
    /// Worker-thread budget for morsel-level parallelism inside operators.
    /// `1` is the serial reference path; parallel paths only engage past
    /// [`MORSEL_ROWS`] input rows, and always produce results identical to
    /// serial evaluation (morsel-order concatenation, hash-disjoint
    /// partitions, key-sorted group output).
    pub threads: usize,
    /// Fault-injection registry, checked once per operator evaluation.
    pub faults: &'r FaultRegistry,
}

/// Rows per morsel: the unit of intra-operator work distribution. Inputs at
/// or below one morsel always run serially — below this size the scoped
/// thread spawn costs more than the scan.
pub(crate) const MORSEL_ROWS: usize = 1024;

/// Split `0..n` into contiguous morsel ranges of at most [`MORSEL_ROWS`].
fn morsel_ranges(n: usize) -> Vec<std::ops::Range<usize>> {
    (0..n.div_ceil(MORSEL_ROWS))
        .map(|m| m * MORSEL_ROWS..((m + 1) * MORSEL_ROWS).min(n))
        .collect()
}

/// Run `task` over `count` independent work items on up to `workers` scoped
/// threads; results come back indexed by item, so callers concatenating in
/// item order get output independent of thread scheduling.
///
/// A panicking task does not tear the process down: the worker catches it,
/// flags cancellation so the remaining morsels are skipped, and the first
/// panic (in join order) comes back as [`ExecError::WorkerPanic`]. The
/// serial path runs uncaught — a panic there unwinds to the epoch boundary,
/// where the warehouse catches it and aborts the epoch.
fn run_indexed<T: Send>(
    count: usize,
    workers: usize,
    task: impl Fn(usize) -> T + Sync,
) -> Result<Vec<Option<T>>, ExecError> {
    let workers = workers.min(count).max(1);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    if workers <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(task(i));
        }
        return Ok(slots);
    }
    let task = &task;
    let cancel = &AtomicBool::new(false);
    let mut first_panic: Option<String> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || -> Result<Vec<(usize, T)>, String> {
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < count {
                        if cancel.load(AtomicOrder::Relaxed) {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| task(i))) {
                            Ok(v) => out.push((i, v)),
                            Err(payload) => {
                                cancel.store(true, AtomicOrder::Relaxed);
                                return Err(panic_message(payload.as_ref()));
                            }
                        }
                        i += workers;
                    }
                    Ok(out)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Ok(chunk)) => {
                    for (i, v) in chunk {
                        slots[i] = Some(v);
                    }
                }
                Ok(Err(msg)) => {
                    first_panic.get_or_insert(msg);
                }
                // Defensive: the worker catches its own panics, but drop
                // glue could still unwind.
                Err(payload) => {
                    first_panic.get_or_insert(panic_message(payload.as_ref()));
                }
            }
        }
    });
    match first_panic {
        Some(message) => Err(ExecError::WorkerPanic { message }),
        None => Ok(slots),
    }
}

/// Fault-injection site label for one operator evaluation — every operator
/// entry in [`EvalCtx::eval`] is an addressable site.
fn op_site(node: &PlanNode) -> &'static str {
    match node {
        PlanNode::ScanBase(_) => "exec:scan-base",
        PlanNode::ScanDelta { .. } => "exec:scan-delta",
        PlanNode::ReadMat(_) => "exec:read-mat",
        PlanNode::ReadDelta(..) => "exec:read-delta",
        PlanNode::IndexScan { .. } => "exec:index-scan",
        PlanNode::Filter { .. } => "exec:filter",
        PlanNode::Project { .. } => "exec:project",
        PlanNode::HashJoin { .. } => "exec:hash-join",
        PlanNode::MergeJoin { .. } => "exec:merge-join",
        PlanNode::NlJoin { .. } => "exec:nl-join",
        PlanNode::IndexNlJoin { .. } => "exec:index-nl-join",
        PlanNode::HashAggregate { .. } => "exec:hash-aggregate",
        PlanNode::UnionAll(_) => "exec:union-all",
        PlanNode::Minus { .. } => "exec:minus",
        PlanNode::Distinct { .. } => "exec:distinct",
    }
}

impl EvalCtx<'_> {
    /// Evaluate a plan, charging `meter` the same primitives the
    /// row-at-a-time executor charged (so executed-vs-estimated cost
    /// comparisons are unchanged by vectorization).
    pub(crate) fn eval(&self, plan: &PhysPlan, meter: &mut Meter) -> Result<Batch, ExecError> {
        self.faults.hit(op_site(&plan.node))?;
        match &plan.node {
            PlanNode::ScanBase(t) => {
                let table = self.db.base(*t)?;
                // O(width): the stored image is primary and its columns are
                // Arc-shared with the clone.
                let batch = table.batch().clone().align(&plan.schema);
                meter.charge_seq(self.model, batch.num_rows(), plan.schema.row_width());
                Ok(batch)
            }
            PlanNode::ScanDelta { table, kind } => {
                let rows = self.deltas.side(*table, *kind);
                meter.charge_seq(self.model, rows.len(), plan.schema.row_width());
                if self.threads > 1 && rows.len() > MORSEL_ROWS {
                    // Morsel-parallel row→column conversion; morsel-order
                    // concatenation reproduces the serial batch exactly.
                    let ranges = morsel_ranges(rows.len());
                    let chunks = run_indexed(ranges.len(), self.threads, |m| {
                        Batch::from_rows(plan.schema.clone(), &rows[ranges[m].clone()])
                    })?;
                    let mut out = Batch::empty(plan.schema.clone());
                    for chunk in chunks.into_iter().flatten() {
                        out.append(&chunk);
                    }
                    Ok(out)
                } else {
                    Ok(Batch::from_rows(plan.schema.clone(), rows))
                }
            }
            PlanNode::ReadMat(e) => {
                let table = self.mats.get(e).ok_or(ExecError::MissingMat(*e))?;
                let batch = table.batch().clone().align(&plan.schema);
                meter.charge_seq(self.model, batch.num_rows(), plan.schema.row_width());
                Ok(batch)
            }
            PlanNode::ReadDelta(e, u) => {
                // Stored differentials are columnar: serving one is a
                // column-handle clone plus alignment, never a row rebuild.
                let batch = self
                    .delta_store
                    .get(&(*e, *u))
                    .ok_or_else(|| ExecError::MissingDelta {
                        node: *e,
                        update: u.to_string(),
                    })?
                    .clone()
                    .align(&plan.schema);
                meter.charge_seq(self.model, batch.num_rows(), plan.schema.row_width());
                Ok(batch)
            }
            PlanNode::IndexScan { target, attr, pred } => {
                self.eval_index_scan(plan, *target, *attr, pred, meter)
            }
            PlanNode::Filter { input, pred } => {
                let mut batch = self.eval(input, meter)?;
                meter.charge_cpu(self.model, batch.num_rows());
                let compiled = CompiledPredicate::compile(pred, batch.schema());
                let n = batch.num_rows();
                if self.threads > 1 && n > MORSEL_ROWS {
                    // Each morsel evaluates the predicate over its logical
                    // row range; concatenating the kept physical positions
                    // in morsel order rebuilds the exact serial selection.
                    let ranges = morsel_ranges(n);
                    let kept = run_indexed(ranges.len(), self.threads, |m| {
                        let mut scratch = Vec::new();
                        let mut keep = Vec::new();
                        for i in ranges[m].clone() {
                            let phys = batch.physical(i);
                            if compiled.matches_at(&batch, phys, &mut scratch) {
                                keep.push(phys);
                            }
                        }
                        keep
                    })?;
                    let sel: Vec<u32> = kept.into_iter().flatten().flatten().collect();
                    batch.set_selection(sel);
                } else {
                    let mut scratch = Vec::new();
                    batch.filter(&compiled, &mut scratch);
                }
                Ok(batch)
            }
            PlanNode::Project { input, attrs } => {
                let batch = self.eval(input, meter)?;
                meter.charge_cpu(self.model, batch.num_rows());
                let positions: Vec<usize> = attrs
                    .iter()
                    .map(|a| {
                        input
                            .schema
                            .position_of(*a)
                            .ok_or_else(|| ExecError::missing_attr(*a, "project"))
                    })
                    .collect::<Result<_, _>>()?;
                Ok(batch.project(plan.schema.clone(), &positions))
            }
            PlanNode::HashJoin {
                build,
                probe,
                keys,
                residual,
            } => self.eval_hash_join(plan, build, probe, keys, residual, meter),
            PlanNode::MergeJoin {
                left,
                right,
                keys,
                residual,
            } => self.eval_merge_join(plan, left, right, keys, residual, meter),
            PlanNode::NlJoin { left, right, pred } => {
                self.eval_nl_join(plan, left, right, pred, meter)
            }
            PlanNode::IndexNlJoin {
                outer,
                inner,
                keys,
                inner_filter,
                residual,
            } => self.eval_index_nl_join(plan, outer, *inner, *keys, inner_filter, residual, meter),
            PlanNode::HashAggregate {
                input,
                group_by,
                aggs,
            } => self.eval_hash_aggregate(plan, input, group_by, aggs, meter),
            PlanNode::UnionAll(inputs) => {
                let mut out: Option<Batch> = None;
                for i in inputs {
                    let b = self.eval(i, meter)?.align(&plan.schema);
                    match &mut out {
                        None => out = Some(b),
                        Some(acc) => acc.append(&b),
                    }
                }
                let out = out.unwrap_or_else(|| Batch::empty(plan.schema.clone()));
                meter.charge_cpu(self.model, out.num_rows());
                Ok(out)
            }
            PlanNode::Minus { left, right } => {
                // Columnar set difference: both sides stay batches; keys
                // are hashed and compared by column position.
                let l = self.eval(left, meter)?;
                let r = self.eval(right, meter)?.align(&left.schema);
                meter.charge_cpu(self.model, l.num_rows() + r.num_rows());
                debug_assert_eq!(plan.schema.ids(), left.schema.ids());
                Ok(l.minus(&r).align(&plan.schema))
            }
            PlanNode::Distinct { input } => self.eval_distinct(plan, input, meter),
        }
    }

    fn stored(&self, target: StoredRef) -> Result<&StoredTable, ExecError> {
        match target {
            StoredRef::Base(t) => Ok(self.db.base(t)?),
            StoredRef::Mat(e) => self.mats.get(&e).ok_or(ExecError::MissingMat(e)),
        }
    }

    fn eval_index_scan(
        &self,
        plan: &PhysPlan,
        target: StoredRef,
        attr: AttrId,
        pred: &Predicate,
        meter: &mut Meter,
    ) -> Result<Batch, ExecError> {
        // Equality probe when possible, else a filtered scan.
        let eq_value = pred.conjuncts().iter().find_map(|c| {
            if let ScalarExpr::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } = c
            {
                match (lhs.as_ref(), rhs.as_ref()) {
                    (ScalarExpr::Col(a), ScalarExpr::Lit(v)) if *a == attr => Some(v.clone()),
                    (ScalarExpr::Lit(v), ScalarExpr::Col(a)) if *a == attr => Some(v.clone()),
                    _ => None,
                }
            } else {
                None
            }
        });
        let table = self.stored(target)?;
        let schema = table.schema();
        let total = table.len();
        let mut batch = match eq_value.as_ref().and_then(|v| table.probe(attr, v)) {
            Some(positions) => {
                // Probe returned row positions; select only the hits.
                let mut b = table.batch().clone();
                b.set_selection(positions.to_vec());
                b
            }
            None => table.batch().clone(),
        };
        let compiled = CompiledPredicate::compile(pred, schema);
        let mut scratch = Vec::new();
        batch.filter(&compiled, &mut scratch);
        meter.charge_probes(
            self.model,
            1,
            batch.num_rows().max(1),
            total,
            schema.row_width(),
        );
        Ok(batch.align(&plan.schema))
    }

    fn eval_hash_join(
        &self,
        plan: &PhysPlan,
        build: &PhysPlan,
        probe: &PhysPlan,
        keys: &[(AttrId, AttrId)],
        residual: &Predicate,
        meter: &mut Meter,
    ) -> Result<Batch, ExecError> {
        let build_b = self.eval(build, meter)?;
        let probe_b = self.eval(probe, meter)?;
        let bcols: Vec<usize> = keys
            .iter()
            .map(|(b, _)| {
                build
                    .schema
                    .position_of(*b)
                    .ok_or_else(|| ExecError::missing_attr(*b, "hash-join"))
            })
            .collect::<Result<_, _>>()?;
        let pcols: Vec<usize> = keys
            .iter()
            .map(|(_, p)| {
                probe
                    .schema
                    .position_of(*p)
                    .ok_or_else(|| ExecError::missing_attr(*p, "hash-join"))
            })
            .collect::<Result<_, _>>()?;
        let combined = build.schema.concat(&probe.schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let pairs = if self.threads > 1 && build_b.num_rows() + probe_b.num_rows() > MORSEL_ROWS {
            hash_join_pairs_parallel(
                &build_b,
                &bcols,
                &probe_b,
                &pcols,
                residual,
                &combined,
                self.threads,
            )?
        } else {
            hash_join_pairs(&build_b, &bcols, &probe_b, &pcols, residual, &combined)
        };
        meter.charge_cpu(
            self.model,
            build_b.num_rows() + probe_b.num_rows() + pairs.len(),
        );
        Ok(Batch::gather_pairs(
            &build_b,
            &probe_b,
            &pairs,
            plan.schema.clone(),
            &out_positions,
        ))
    }

    fn eval_merge_join(
        &self,
        plan: &PhysPlan,
        left: &PhysPlan,
        right: &PhysPlan,
        keys: &[(AttrId, AttrId)],
        residual: &Predicate,
        meter: &mut Meter,
    ) -> Result<Batch, ExecError> {
        let l_b = self.eval(left, meter)?;
        let r_b = self.eval(right, meter)?;
        let lcols: Vec<usize> = keys
            .iter()
            .map(|(l, _)| {
                left.schema
                    .position_of(*l)
                    .ok_or_else(|| ExecError::missing_attr(*l, "merge-join"))
            })
            .collect::<Result<_, _>>()?;
        let rcols: Vec<usize> = keys
            .iter()
            .map(|(_, r)| {
                right
                    .schema
                    .position_of(*r)
                    .ok_or_else(|| ExecError::missing_attr(*r, "merge-join"))
            })
            .collect::<Result<_, _>>()?;
        // Sort *positions* by key (values never move).
        let mut lidx = l_b.positions();
        lidx.sort_by(|&a, &b| l_b.cmp_keys(a, &lcols, &l_b, b, &lcols));
        let mut ridx = r_b.positions();
        ridx.sort_by(|&a, &b| r_b.cmp_keys(a, &rcols, &r_b, b, &rcols));
        // Charge the sorts.
        meter.charge_cpu(self.model, lidx.len() + ridx.len());
        let combined = left.schema.concat(&right.schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut joined = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < lidx.len() && j < ridx.len() {
            match l_b.cmp_keys(lidx[i], &lcols, &r_b, ridx[j], &rcols) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Cross product of the equal-key runs.
                    let mut i_end = i + 1;
                    while i_end < lidx.len()
                        && l_b.cmp_keys(lidx[i_end], &lcols, &l_b, lidx[i], &lcols)
                            == std::cmp::Ordering::Equal
                    {
                        i_end += 1;
                    }
                    let mut j_end = j + 1;
                    while j_end < ridx.len()
                        && r_b.cmp_keys(ridx[j_end], &rcols, &r_b, ridx[j], &rcols)
                            == std::cmp::Ordering::Equal
                    {
                        j_end += 1;
                    }
                    // NULL sorts equal to NULL but a NULL key matches
                    // nothing in SQL semantics (the hash join and the
                    // reference evaluator agree); skip the run.
                    if l_b.any_null(lidx[i], &lcols) {
                        i = i_end;
                        j = j_end;
                        continue;
                    }
                    for &lp in &lidx[i..i_end] {
                        for &rp in &ridx[j..j_end] {
                            if !residual.is_true() {
                                concat_row(&l_b, lp, &r_b, rp, &mut joined);
                                if !residual.matches(&joined, &combined) {
                                    continue;
                                }
                            }
                            pairs.push((lp, rp));
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        meter.charge_cpu(self.model, pairs.len());
        Ok(Batch::gather_pairs(
            &l_b,
            &r_b,
            &pairs,
            plan.schema.clone(),
            &out_positions,
        ))
    }

    fn eval_nl_join(
        &self,
        plan: &PhysPlan,
        left: &PhysPlan,
        right: &PhysPlan,
        pred: &Predicate,
        meter: &mut Meter,
    ) -> Result<Batch, ExecError> {
        let l_b = self.eval(left, meter)?;
        let r_b = self.eval(right, meter)?;
        let combined = left.schema.concat(&right.schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut joined = Vec::new();
        for i in 0..l_b.num_rows() {
            let lp = l_b.physical(i);
            for j in 0..r_b.num_rows() {
                let rp = r_b.physical(j);
                if !pred.is_true() {
                    concat_row(&l_b, lp, &r_b, rp, &mut joined);
                    if !pred.matches(&joined, &combined) {
                        continue;
                    }
                }
                pairs.push((lp, rp));
            }
        }
        meter.charge_cpu(
            self.model,
            l_b.num_rows() * r_b.num_rows().max(1) / 10 + pairs.len(),
        );
        Ok(Batch::gather_pairs(
            &l_b,
            &r_b,
            &pairs,
            plan.schema.clone(),
            &out_positions,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_index_nl_join(
        &self,
        plan: &PhysPlan,
        outer: &PhysPlan,
        inner: StoredRef,
        keys: (AttrId, AttrId),
        inner_filter: &Predicate,
        residual: &Predicate,
        meter: &mut Meter,
    ) -> Result<Batch, ExecError> {
        let outer_b = self.eval(outer, meter)?;
        let okey_col = outer
            .schema
            .position_of(keys.0)
            .ok_or_else(|| ExecError::missing_attr(keys.0, "index-nl-join"))?;
        // The inner is probed *in place* through its index, against its
        // columnar image — no snapshot and no row materialization.
        // `Runtime::prepare` already created the index the optimizer
        // assumed.
        let inner_table = self.stored(inner)?;
        let inner_schema = inner_table.schema();
        let inner_b = inner_table.batch();
        let idx = inner_table
            .index_on(keys.1)
            .ok_or_else(|| ExecError::MissingIndex {
                target: format!("{inner:?}"),
            })?;
        let inner_compiled = (!inner_filter.is_true())
            .then(|| CompiledPredicate::compile(inner_filter, inner_schema));
        let combined = outer.schema.concat(inner_schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut pages = 0usize;
        let mut joined = Vec::new();
        let mut scratch = Vec::new();
        let key_column = outer_b.column(okey_col);
        for i in 0..outer_b.num_rows() {
            let op = outer_b.physical(i) as usize;
            if key_column.is_null(op) {
                continue;
            }
            let key = key_column.value(op);
            for &pos in idx.lookup_eq(&key) {
                if let Some(compiled) = &inner_compiled {
                    if !compiled.matches_at(inner_b, pos, &mut scratch) {
                        continue;
                    }
                }
                pages += 1;
                if !residual.is_true() {
                    outer_b.write_row(op as u32, &mut joined);
                    for c in 0..inner_schema.len() {
                        joined.push(inner_b.column(c).value(pos as usize));
                    }
                    if !residual.matches(&joined, &combined) {
                        continue;
                    }
                }
                pairs.push((op as u32, pos));
            }
        }
        meter.charge_probes(
            self.model,
            outer_b.num_rows(),
            pages,
            inner_table.len(),
            inner_schema.row_width(),
        );
        // Output: outer and inner columns both gather by pair positions.
        let outer_width = outer.schema.len();
        let mut outer_idx: Option<Vec<u32>> = None;
        let mut inner_idx: Option<Vec<u32>> = None;
        let columns: Vec<Column> = out_positions
            .iter()
            .map(|&p| {
                if p < outer_width {
                    let idx =
                        outer_idx.get_or_insert_with(|| pairs.iter().map(|&(o, _)| o).collect());
                    outer_b.column(p).gather(idx)
                } else {
                    let idx =
                        inner_idx.get_or_insert_with(|| pairs.iter().map(|&(_, i)| i).collect());
                    inner_b.column(p - outer_width).gather(idx)
                }
            })
            .collect();
        Ok(Batch::from_columns(plan.schema.clone(), columns))
    }

    /// Columnar grouped aggregation. Two column-at-a-time passes replace
    /// the per-row `Accumulator` loop:
    ///
    /// 1. *group-id assignment* — key columns are hashed by position into a
    ///    `hash → group` table (collisions resolved by column comparison),
    ///    producing one `u32` group id per input row;
    /// 2. *per-aggregate kernels* — each aggregate walks its input column
    ///    once, updating a typed state vector (`f64` sums, `i64` counts,
    ///    typed min/max) indexed by group id. Only `Mixed` columns and
    ///    general expressions fall back to per-group [`Accumulator`]s.
    ///
    /// Output columns are emitted directly from the kernel states, in key
    /// order — semantics (NULL handling, Int/Float promotion, empty-group
    /// results) replicate [`Accumulator`] exactly.
    fn eval_hash_aggregate(
        &self,
        plan: &PhysPlan,
        input: &PhysPlan,
        group_by: &[AttrId],
        aggs: &[AggSpec],
        meter: &mut Meter,
    ) -> Result<Batch, ExecError> {
        let in_b = self.eval(input, meter)?;
        meter.charge_cpu(self.model, in_b.num_rows());
        let key_cols: Vec<usize> = group_by
            .iter()
            .map(|g| {
                input
                    .schema
                    .position_of(*g)
                    .ok_or_else(|| ExecError::missing_attr(*g, "hash-aggregate"))
            })
            .collect::<Result<_, _>>()?;
        let n = in_b.num_rows();
        if self.threads > 1 && n > MORSEL_ROWS {
            return hash_aggregate_parallel(
                plan,
                &input.schema,
                &in_b,
                &key_cols,
                aggs,
                self.threads,
            );
        }
        let rows: Vec<u32> = (0..n).map(|i| in_b.physical(i)).collect();
        // Pass 1: group ids, assigned in first-occurrence order.
        let (reps, gids) = group_ids(&in_b, &key_cols, &rows);
        let ngroups = reps.len();
        // Pass 2: one typed kernel per aggregate.
        let agg_columns: Vec<Column> = aggs
            .iter()
            .map(|spec| agg_kernel(&in_b, &input.schema, spec, &rows, &gids, ngroups))
            .collect();
        // Deterministic output order: groups sorted by key (keys are unique
        // per group, so this matches the old full-row sort).
        let mut order: Vec<u32> = (0..ngroups as u32).collect();
        order.sort_by(|&a, &b| {
            in_b.cmp_keys(
                reps[a as usize],
                &key_cols,
                &in_b,
                reps[b as usize],
                &key_cols,
            )
        });
        let rep_order: Vec<u32> = order.iter().map(|&g| reps[g as usize]).collect();
        let nkeys = key_cols.len();
        debug_assert_eq!(plan.schema.len(), nkeys + aggs.len());
        let columns: Vec<Column> = key_cols
            .iter()
            .map(|&c| in_b.column(c).gather(&rep_order))
            .chain(agg_columns.iter().map(|c| c.gather(&order)))
            .collect();
        Ok(Batch::from_columns(plan.schema.clone(), columns))
    }

    fn eval_distinct(
        &self,
        plan: &PhysPlan,
        input: &PhysPlan,
        meter: &mut Meter,
    ) -> Result<Batch, ExecError> {
        let in_b = self.eval(input, meter)?;
        meter.charge_cpu(self.model, in_b.num_rows());
        let all_cols: Vec<usize> = (0..in_b.schema().len()).collect();
        let mut buckets: U64Map<Vec<u32>> = u64_map_with_capacity(in_b.num_rows().min(1 << 16));
        let mut reps: Vec<u32> = Vec::new();
        for i in 0..in_b.num_rows() {
            let phys = in_b.physical(i);
            let h = in_b.hash_keys(phys, &all_cols);
            let ids = buckets.entry(h).or_default();
            if !ids
                .iter()
                .any(|&r| in_b.keys_eq(r, &all_cols, &in_b, phys, &all_cols))
            {
                ids.push(phys);
                reps.push(phys);
            }
        }
        // Sorted output, as the support-counting distinct produced —
        // realized as a position sort + column gather, not a row sort.
        reps.sort_by(|&a, &b| in_b.cmp_keys(a, &all_cols, &in_b, b, &all_cols));
        let columns: Vec<Column> = (0..in_b.schema().len())
            .map(|c| in_b.column(c).gather(&reps))
            .collect();
        Ok(Batch::from_columns(plan.schema.clone(), columns))
    }
}

/// Serial hash-join pair computation: hash table over the build side keyed
/// by the *hash* of the key columns at each position — hash once per row,
/// no per-row key vector is ever allocated; candidate collisions are
/// resolved by comparing key columns position-to-position.
fn hash_join_pairs(
    build_b: &Batch,
    bcols: &[usize],
    probe_b: &Batch,
    pcols: &[usize],
    residual: &Predicate,
    combined: &Schema,
) -> Vec<(u32, u32)> {
    let mut table: U64Map<Vec<u32>> = u64_map_with_capacity(build_b.num_rows());
    for i in 0..build_b.num_rows() {
        let phys = build_b.physical(i);
        if build_b.any_null(phys, bcols) {
            continue; // NULL keys can never match a probe
        }
        table
            .entry(build_b.hash_keys(phys, bcols))
            .or_default()
            .push(phys);
    }
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for i in 0..probe_b.num_rows() {
        let pphys = probe_b.physical(i);
        if probe_b.any_null(pphys, pcols) {
            continue;
        }
        if let Some(cands) = table.get(&probe_b.hash_keys(pphys, pcols)) {
            for &bphys in cands {
                if build_b.keys_eq(bphys, bcols, probe_b, pphys, pcols) {
                    pairs.push((bphys, pphys));
                }
            }
        }
    }
    if !residual.is_true() {
        let mut joined = Vec::with_capacity(combined.len());
        pairs.retain(|&(b, p)| {
            concat_row(build_b, b, probe_b, p, &mut joined);
            residual.matches(&joined, combined)
        });
    }
    pairs
}

/// Morsel-parallel hash-join pair computation, identical output to
/// [`hash_join_pairs`]:
///
/// 1. build-side key hashes are computed in parallel by morsel;
/// 2. the build table is hash-partitioned — one worker per partition
///    inserts its rows in global scan order, so per-bucket candidate order
///    matches the serial build (equal keys share a hash, hence a partition);
/// 3. probe morsels run in parallel, each probing the partition its row's
///    hash selects; concatenating emitted pairs in morsel order reproduces
///    the serial probe order exactly.
fn hash_join_pairs_parallel(
    build_b: &Batch,
    bcols: &[usize],
    probe_b: &Batch,
    pcols: &[usize],
    residual: &Predicate,
    combined: &Schema,
    threads: usize,
) -> Result<Vec<(u32, u32)>, ExecError> {
    let nb = build_b.num_rows();
    // Phase 1: per-row build hashes (NULL keys flagged; they match nothing).
    let branges = morsel_ranges(nb);
    let bh_chunks = run_indexed(branges.len(), threads, |m| {
        branges[m]
            .clone()
            .map(|i| {
                let phys = build_b.physical(i);
                if build_b.any_null(phys, bcols) {
                    (phys, 0u64, true)
                } else {
                    (phys, build_b.hash_keys(phys, bcols), false)
                }
            })
            .collect::<Vec<_>>()
    })?;
    let bh: Vec<(u32, u64, bool)> = bh_chunks.into_iter().flatten().flatten().collect();
    // Phase 2: hash-partitioned build, one worker per partition. Each
    // partition walks the precomputed hashes in scan order, so within any
    // bucket the candidate order equals the serial build's.
    let nparts = threads.max(1);
    let tables = run_indexed(nparts, threads, |p| {
        let mut t: U64Map<Vec<u32>> = u64_map_with_capacity(nb / nparts + 1);
        for &(phys, h, null) in &bh {
            if !null && (h % nparts as u64) as usize == p {
                t.entry(h).or_default().push(phys);
            }
        }
        t
    })?;
    let tables: Vec<U64Map<Vec<u32>>> = tables.into_iter().flatten().collect();
    // Phase 3: parallel probe by morsel; morsel-order concatenation.
    let pranges = morsel_ranges(probe_b.num_rows());
    let residual_live = !residual.is_true();
    let chunks = run_indexed(pranges.len(), threads, |m| {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut joined = Vec::with_capacity(combined.len());
        for i in pranges[m].clone() {
            let pphys = probe_b.physical(i);
            if probe_b.any_null(pphys, pcols) {
                continue;
            }
            let h = probe_b.hash_keys(pphys, pcols);
            if let Some(cands) = tables[(h % nparts as u64) as usize].get(&h) {
                for &bphys in cands {
                    if build_b.keys_eq(bphys, bcols, probe_b, pphys, pcols) {
                        if residual_live {
                            concat_row(build_b, bphys, probe_b, pphys, &mut joined);
                            if !residual.matches(&joined, combined) {
                                continue;
                            }
                        }
                        pairs.push((bphys, pphys));
                    }
                }
            }
        }
        pairs
    })?;
    Ok(chunks.into_iter().flatten().flatten().collect())
}

/// Group-id assignment over an explicit physical row list: one id per row,
/// ids issued in first-occurrence order; returns `(reps, gids)` with one
/// representative physical position per group.
///
/// A single dict-encoded key column short-circuits the hash table entirely:
/// dictionary entries are unique, so code equality *is* key equality and a
/// flat `code → gid` array replaces hashing and collision probing (NULLs —
/// masked rows — form their own group, exactly as `keys_eq` groups them).
fn group_ids(in_b: &Batch, key_cols: &[usize], rows: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut reps: Vec<u32> = Vec::new();
    let mut gids: Vec<u32> = Vec::with_capacity(rows.len());
    if let [kc] = key_cols {
        let col = in_b.column(*kc);
        if let Some((codes, dict)) = col.dict() {
            let mut code_gid: Vec<u32> = vec![u32::MAX; dict.len()];
            let mut null_gid = u32::MAX;
            for &phys in rows {
                let p = phys as usize;
                let slot = if col.is_null(p) {
                    &mut null_gid
                } else {
                    &mut code_gid[codes[p] as usize]
                };
                if *slot == u32::MAX {
                    *slot = reps.len() as u32;
                    reps.push(phys);
                }
                gids.push(*slot);
            }
            return (reps, gids);
        }
    }
    let mut buckets: U64Map<Vec<u32>> = u64_map_with_capacity(rows.len().min(1 << 16));
    for &phys in rows {
        let h = in_b.hash_keys(phys, key_cols);
        let ids = buckets.entry(h).or_default();
        let gid = match ids
            .iter()
            .copied()
            .find(|&g| in_b.keys_eq(reps[g as usize], key_cols, in_b, phys, key_cols))
        {
            Some(g) => g,
            None => {
                let g = reps.len() as u32;
                reps.push(phys);
                ids.push(g);
                g
            }
        };
        gids.push(gid);
    }
    (reps, gids)
}

/// Partition-parallel grouped aggregation, output identical to the serial
/// path: rows are hash-partitioned by group key (equal keys land in one
/// partition, so groups never straddle workers), each partition groups and
/// runs the typed kernels over its rows in global scan order, and the final
/// merge sorts all groups by key — the same unique-key sort the serial path
/// emits.
fn hash_aggregate_parallel(
    plan: &PhysPlan,
    input_schema: &Schema,
    in_b: &Batch,
    key_cols: &[usize],
    aggs: &[AggSpec],
    threads: usize,
) -> Result<Batch, ExecError> {
    let n = in_b.num_rows();
    // Phase 1: per-row key hashes, parallel by morsel.
    let ranges = morsel_ranges(n);
    let hashed = run_indexed(ranges.len(), threads, |m| {
        ranges[m]
            .clone()
            .map(|i| {
                let phys = in_b.physical(i);
                (phys, in_b.hash_keys(phys, key_cols))
            })
            .collect::<Vec<_>>()
    })?;
    let hashed: Vec<(u32, u64)> = hashed.into_iter().flatten().flatten().collect();
    // Phase 2: one worker per hash partition — group assignment plus every
    // aggregate kernel over that partition's rows (in global scan order, so
    // per-group accumulation order matches serial exactly).
    let nparts = threads.max(1);
    let parts = run_indexed(nparts, threads, |p| {
        let rows: Vec<u32> = hashed
            .iter()
            .filter(|&&(_, h)| (h % nparts as u64) as usize == p)
            .map(|&(phys, _)| phys)
            .collect();
        let (reps, gids) = group_ids(in_b, key_cols, &rows);
        let ngroups = reps.len();
        let cols: Vec<Column> = aggs
            .iter()
            .map(|spec| agg_kernel(in_b, input_schema, spec, &rows, &gids, ngroups))
            .collect();
        (reps, cols)
    })?;
    let parts: Vec<(Vec<u32>, Vec<Column>)> = parts.into_iter().flatten().collect();
    // Merge: groups are disjoint across partitions; sort them all by key.
    let mut order: Vec<(usize, u32)> = parts
        .iter()
        .enumerate()
        .flat_map(|(p, (reps, _))| (0..reps.len() as u32).map(move |g| (p, g)))
        .collect();
    order.sort_by(|&(pa, ga), &(pb, gb)| {
        in_b.cmp_keys(
            parts[pa].0[ga as usize],
            key_cols,
            in_b,
            parts[pb].0[gb as usize],
            key_cols,
        )
    });
    let rep_order: Vec<u32> = order.iter().map(|&(p, g)| parts[p].0[g as usize]).collect();
    let nkeys = key_cols.len();
    debug_assert_eq!(plan.schema.len(), nkeys + aggs.len());
    let mut columns: Vec<Column> = key_cols
        .iter()
        .map(|&c| in_b.column(c).gather(&rep_order))
        .collect();
    for (k, attr) in plan.schema.attrs().iter().enumerate().skip(nkeys) {
        let mut out = Column::with_capacity(attr.data_type, order.len());
        for &(p, g) in &order {
            out.push(&parts[p].1[k - nkeys].value(g as usize));
        }
        columns.push(out);
    }
    Ok(Batch::from_columns(plan.schema.clone(), columns))
}

/// One aggregate's columnar update kernel: walk the input column once,
/// updating typed per-group state vectors, and emit the result column.
/// Falls back to per-group [`Accumulator`]s for `Mixed` columns, general
/// expressions, and type/function combinations with value-level semantics
/// (e.g. SUM over strings), so results are bit-identical to the row path.
fn agg_kernel(
    in_b: &Batch,
    schema: &Schema,
    spec: &AggSpec,
    rows: &[u32],
    gids: &[u32],
    ngroups: usize,
) -> Column {
    use mvmqo_relalg::agg::AggFunc;
    debug_assert_eq!(rows.len(), gids.len());
    let col_pos = match &spec.input {
        ScalarExpr::Col(id) => schema.position_of(*id),
        _ => None,
    };
    let Some(pos) = col_pos else {
        return agg_fallback(in_b, schema, spec, rows, gids, ngroups);
    };
    let col = in_b.column(pos);
    match (spec.func, col.data()) {
        (AggFunc::Count, _) => {
            // COUNT is nullness-only: typed for every physical layout.
            let mut counts = vec![0i64; ngroups];
            for (i, &g) in gids.iter().enumerate() {
                let phys = rows[i] as usize;
                if !col.is_null(phys) {
                    counts[g as usize] += 1;
                }
            }
            let mut out = Column::with_capacity(DataType::Int, ngroups);
            for c in counts {
                out.push(&Value::Int(c));
            }
            out
        }
        (
            AggFunc::Sum | AggFunc::Avg,
            ColumnData::Int(_) | ColumnData::Float(_) | ColumnData::Date(_),
        ) => {
            // Accumulate in f64 exactly as `Accumulator` does (so Int sums
            // agree bit-for-bit, including the > 2^53 regime).
            let mut sums = vec![0f64; ngroups];
            let mut counts = vec![0i64; ngroups];
            match col.data() {
                ColumnData::Int(v) => {
                    for (i, &g) in gids.iter().enumerate() {
                        let phys = rows[i] as usize;
                        if !col.is_null(phys) {
                            sums[g as usize] += v[phys] as f64;
                            counts[g as usize] += 1;
                        }
                    }
                }
                ColumnData::Float(v) => {
                    for (i, &g) in gids.iter().enumerate() {
                        let phys = rows[i] as usize;
                        if !col.is_null(phys) {
                            sums[g as usize] += v[phys];
                            counts[g as usize] += 1;
                        }
                    }
                }
                ColumnData::Date(v) => {
                    for (i, &g) in gids.iter().enumerate() {
                        let phys = rows[i] as usize;
                        if !col.is_null(phys) {
                            sums[g as usize] += v[phys] as f64;
                            counts[g as usize] += 1;
                        }
                    }
                }
                _ => unreachable!("guarded by the match arm"),
            }
            let avg = spec.func == AggFunc::Avg;
            let int_sum = !avg && matches!(col.data(), ColumnData::Int(_));
            let dt = if int_sum {
                DataType::Int
            } else {
                DataType::Float
            };
            let mut out = Column::with_capacity(dt, ngroups);
            for g in 0..ngroups {
                let v = if counts[g] == 0 {
                    Value::Null
                } else if avg {
                    Value::Float(sums[g] / counts[g] as f64)
                } else if int_sum {
                    Value::Int(sums[g] as i64)
                } else {
                    Value::Float(sums[g])
                };
                out.push(&v);
            }
            out
        }
        (AggFunc::Min | AggFunc::Max, ColumnData::Int(_)) => min_max_prim::<i64>(
            col,
            rows,
            gids,
            ngroups,
            spec.func == AggFunc::Min,
            |d, p| match d {
                ColumnData::Int(v) => v[p],
                _ => unreachable!(),
            },
            |a, b| a < b,
            DataType::Int,
            Value::Int,
        ),
        (AggFunc::Min | AggFunc::Max, ColumnData::Date(_)) => min_max_prim::<i32>(
            col,
            rows,
            gids,
            ngroups,
            spec.func == AggFunc::Min,
            |d, p| match d {
                ColumnData::Date(v) => v[p],
                _ => unreachable!(),
            },
            |a, b| a < b,
            DataType::Date,
            Value::Date,
        ),
        (AggFunc::Min | AggFunc::Max, ColumnData::Bool(_)) => min_max_prim::<bool>(
            col,
            rows,
            gids,
            ngroups,
            spec.func == AggFunc::Min,
            |d, p| match d {
                ColumnData::Bool(v) => v[p],
                _ => unreachable!(),
            },
            |a, b| !a & b,
            DataType::Bool,
            Value::Bool,
        ),
        (AggFunc::Min | AggFunc::Max, ColumnData::Float(_)) => min_max_prim::<f64>(
            col,
            rows,
            gids,
            ngroups,
            spec.func == AggFunc::Min,
            |d, p| match d {
                ColumnData::Float(v) => v[p],
                _ => unreachable!(),
            },
            |a, b| a.total_cmp(&b) == std::cmp::Ordering::Less,
            DataType::Float,
            Value::Float,
        ),
        (AggFunc::Min | AggFunc::Max, ColumnData::Str(_) | ColumnData::Dict { .. }) => {
            let is_min = spec.func == AggFunc::Min;
            let mut best: Vec<Option<std::sync::Arc<str>>> = vec![None; ngroups];
            let at = |p: usize| -> &std::sync::Arc<str> {
                match col.data() {
                    ColumnData::Str(v) => &v[p],
                    ColumnData::Dict { codes, dict } => dict.value(codes[p]),
                    _ => unreachable!(),
                }
            };
            for (i, &g) in gids.iter().enumerate() {
                let phys = rows[i] as usize;
                if col.is_null(phys) {
                    continue;
                }
                let v = at(phys);
                let slot = &mut best[g as usize];
                let better = match slot {
                    None => true,
                    Some(b) => {
                        if is_min {
                            *v < *b
                        } else {
                            *v > *b
                        }
                    }
                };
                if better {
                    *slot = Some(v.clone());
                }
            }
            let mut out = Column::with_capacity(DataType::Str, ngroups);
            for b in best {
                out.push(&b.map_or(Value::Null, Value::Str));
            }
            out
        }
        _ => agg_fallback(in_b, schema, spec, rows, gids, ngroups),
    }
}

/// Shared typed MIN/MAX loop over a primitive payload.
#[allow(clippy::too_many_arguments)]
fn min_max_prim<T: Copy + Default>(
    col: &Column,
    rows: &[u32],
    gids: &[u32],
    ngroups: usize,
    is_min: bool,
    get: impl Fn(&ColumnData, usize) -> T,
    less: impl Fn(T, T) -> bool,
    dt: DataType,
    wrap: impl Fn(T) -> Value,
) -> Column {
    let mut best = vec![T::default(); ngroups];
    let mut has = vec![false; ngroups];
    for (i, &g) in gids.iter().enumerate() {
        let phys = rows[i] as usize;
        if col.is_null(phys) {
            continue;
        }
        let g = g as usize;
        let x = get(col.data(), phys);
        // Strict improvement only, as `Accumulator` replaces on `v < m`.
        let better = !has[g]
            || if is_min {
                less(x, best[g])
            } else {
                less(best[g], x)
            };
        if better {
            best[g] = x;
            has[g] = true;
        }
    }
    let mut out = Column::with_capacity(dt, ngroups);
    for g in 0..ngroups {
        out.push(&if has[g] { wrap(best[g]) } else { Value::Null });
    }
    out
}

/// Per-group [`Accumulator`] fallback for aggregate inputs outside the
/// typed kernels (general expressions, `Mixed` columns, value-level
/// type-promotion cases).
fn agg_fallback(
    in_b: &Batch,
    schema: &Schema,
    spec: &AggSpec,
    rows: &[u32],
    gids: &[u32],
    ngroups: usize,
) -> Column {
    let col_pos = match &spec.input {
        ScalarExpr::Col(id) => schema.position_of(*id),
        _ => None,
    };
    let mut accs: Vec<Accumulator> = (0..ngroups).map(|_| Accumulator::new(spec.func)).collect();
    let mut scratch = Vec::new();
    for (i, &g) in gids.iter().enumerate() {
        let phys = rows[i];
        let v = match col_pos {
            Some(c) => in_b.column(c).value(phys as usize),
            None => {
                in_b.write_row(phys, &mut scratch);
                spec.input.eval(&scratch, schema)
            }
        };
        accs[g as usize].add(&v);
    }
    let dt = col_pos
        .map(|c| spec.func.result_type(schema.attrs()[c].data_type))
        .unwrap_or(DataType::Float);
    let mut out = Column::with_capacity(dt, ngroups);
    for acc in &accs {
        out.push(&acc.finish());
    }
    out
}

/// Fill `buf` with the concatenation of one physical row from each batch
/// (residual-predicate evaluation during joins).
fn concat_row(left: &Batch, l: u32, right: &Batch, r: u32, buf: &mut Vec<Value>) {
    buf.clear();
    for c in 0..left.schema().len() {
        buf.push(left.column(c).value(l as usize));
    }
    for c in 0..right.schema().len() {
        buf.push(right.column(c).value(r as usize));
    }
}

// ======================================================================
// Parallel scheduling support
// ======================================================================

/// Evaluate several plans concurrently against one prepared runtime state.
/// The worker count comes from the runtime's configured thread budget
/// ([`Runtime::set_threads`], surfaced as `ExecOptions::threads`), not from
/// a hard-coded cap: a single plan gets the whole budget for morsel-level
/// parallelism inside its operators, while multiple independent roots split
/// the budget between root workers and intra-operator morsels. Results come
/// back in plan order, each with its own meter so charges can be absorbed
/// deterministically by the caller.
pub(crate) fn eval_parallel(
    rt: &Runtime<'_>,
    plans: &[&PhysPlan],
) -> Result<Vec<(Batch, Meter)>, ExecError> {
    if plans.is_empty() {
        return Ok(Vec::new());
    }
    if plans.len() == 1 {
        let mut m = Meter::new();
        let b = rt.eval_ctx().eval(plans[0], &mut m)?;
        return Ok(vec![(b, m)]);
    }
    let threads = rt.threads().max(1);
    let workers = plans.len().min(threads);
    // Whatever budget is not consumed by root-level workers flows down into
    // each plan's operators as morsel parallelism.
    let ctx = EvalCtx {
        threads: (threads / workers).max(1),
        ..rt.eval_ctx()
    };
    let mut slots: Vec<Option<(Batch, Meter)>> = (0..plans.len()).map(|_| None).collect();
    let cancel = &AtomicBool::new(false);
    let mut first_err: Option<ExecError> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || -> Result<Vec<(usize, Batch, Meter)>, ExecError> {
                    let mut out = Vec::new();
                    let mut i = w;
                    while i < plans.len() {
                        if cancel.load(AtomicOrder::Relaxed) {
                            break;
                        }
                        let mut m = Meter::new();
                        // A panicking operator (or an armed panic-mode
                        // fault) must not tear the scope down: forward it
                        // as an error and cancel the remaining roots.
                        match catch_unwind(AssertUnwindSafe(|| ctx.eval(plans[i], &mut m))) {
                            Ok(Ok(b)) => out.push((i, b, m)),
                            Ok(Err(e)) => {
                                cancel.store(true, AtomicOrder::Relaxed);
                                return Err(e);
                            }
                            Err(payload) => {
                                cancel.store(true, AtomicOrder::Relaxed);
                                return Err(ExecError::WorkerPanic {
                                    message: panic_message(payload.as_ref()),
                                });
                            }
                        }
                        i += workers;
                    }
                    Ok(out)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Ok(chunk)) => {
                    for (i, b, m) in chunk {
                        slots[i] = Some((b, m));
                    }
                }
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Err(payload) => {
                    first_err.get_or_insert(ExecError::WorkerPanic {
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.ok_or_else(|| ExecError::invariant(format!("plan {i} was not evaluated"))))
        .collect()
}

/// Stored materialized results a plan reads ([`PlanNode::ReadMat`], index
/// scans over materializations, index-NL inners) — the dependency edges
/// the parallel scheduler levels by.
pub(crate) fn mat_refs(plan: &PhysPlan) -> Vec<EqId> {
    fn walk(plan: &PhysPlan, out: &mut Vec<EqId>) {
        match &plan.node {
            PlanNode::ReadMat(e) => out.push(*e),
            PlanNode::IndexScan { target, .. } => {
                if let StoredRef::Mat(e) = target {
                    out.push(*e);
                }
            }
            PlanNode::IndexNlJoin { outer, inner, .. } => {
                if let StoredRef::Mat(e) = inner {
                    out.push(*e);
                }
                walk(outer, out);
            }
            PlanNode::ScanBase(_) | PlanNode::ScanDelta { .. } | PlanNode::ReadDelta(..) => {}
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::HashAggregate { input, .. }
            | PlanNode::Distinct { input } => walk(input, out),
            PlanNode::HashJoin { build, probe, .. } => {
                walk(build, out);
                walk(probe, out);
            }
            PlanNode::MergeJoin { left, right, .. }
            | PlanNode::NlJoin { left, right, .. }
            | PlanNode::Minus { left, right } => {
                walk(left, out);
                walk(right, out);
            }
            PlanNode::UnionAll(inputs) => {
                for i in inputs {
                    walk(i, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

/// Temporarily stored differentials of update `u` a plan reads
/// ([`PlanNode::ReadDelta`]) — intra-step dependency edges.
pub(crate) fn delta_refs(plan: &PhysPlan, u: UpdateId) -> Vec<EqId> {
    fn walk(plan: &PhysPlan, u: UpdateId, out: &mut Vec<EqId>) {
        match &plan.node {
            PlanNode::ReadDelta(e, du) => {
                if *du == u {
                    out.push(*e);
                }
            }
            PlanNode::ScanBase(_)
            | PlanNode::ScanDelta { .. }
            | PlanNode::ReadMat(_)
            | PlanNode::IndexScan { .. } => {}
            PlanNode::IndexNlJoin { outer, .. } => walk(outer, u, out),
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::HashAggregate { input, .. }
            | PlanNode::Distinct { input } => walk(input, u, out),
            PlanNode::HashJoin { build, probe, .. } => {
                walk(build, u, out);
                walk(probe, u, out);
            }
            PlanNode::MergeJoin { left, right, .. }
            | PlanNode::NlJoin { left, right, .. }
            | PlanNode::Minus { left, right } => {
                walk(left, u, out);
                walk(right, u, out);
            }
            PlanNode::UnionAll(inputs) => {
                for i in inputs {
                    walk(i, u, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(plan, u, &mut out);
    out
}

/// Topologically level `items` by `deps_of` (edges must point at other
/// items in the slice): every item lands in the first level after all of
/// its dependencies. Falls back to one final level for any remainder (a
/// cycle would be a planner bug; executing the remainder serially in one
/// level keeps behaviour defined).
pub(crate) fn level_items<F>(items: &[EqId], deps_of: F) -> Vec<Vec<EqId>>
where
    F: Fn(EqId) -> Vec<EqId>,
{
    let mut placed: HashSet<EqId> = HashSet::new();
    let mut remaining: Vec<EqId> = items.to_vec();
    let mut levels = Vec::new();
    while !remaining.is_empty() {
        let in_remaining: HashSet<EqId> = remaining.iter().copied().collect();
        let (ready, rest): (Vec<EqId>, Vec<EqId>) = remaining.iter().copied().partition(|&e| {
            deps_of(e)
                .into_iter()
                .all(|d| placed.contains(&d) || !in_remaining.contains(&d))
        });
        if ready.is_empty() {
            levels.push(rest);
            break;
        }
        placed.extend(ready.iter().copied());
        levels.push(ready);
        remaining = rest;
    }
    levels
}

/// Reorder rows from one schema layout to another (same attribute set).
pub fn align_rows(rows: Vec<Tuple>, from: &Schema, to: &Schema) -> Vec<Tuple> {
    if from.ids() == to.ids() {
        return rows;
    }
    let positions = positions_for(from, to);
    rows.into_iter()
        .map(|r| project_positions(&r, &positions))
        .collect()
}

fn positions_for(from: &Schema, to: &Schema) -> Vec<usize> {
    to.ids()
        .iter()
        .map(|a| {
            from.position_of(*a)
                .unwrap_or_else(|| panic!("attribute {a} missing during alignment"))
        })
        .collect()
}

fn project_positions(row: &[Value], positions: &[usize]) -> Tuple {
    positions.iter().map(|&i| row[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::schema::Attribute;
    use mvmqo_relalg::types::DataType;

    fn schema(ids: &[u32]) -> Schema {
        Schema::new(
            ids.iter()
                .map(|&i| Attribute {
                    id: AttrId(i),
                    name: format!("a{i}"),
                    data_type: DataType::Int,
                })
                .collect(),
        )
    }

    #[test]
    fn align_rows_reorders_columns() {
        let from = schema(&[1, 2]);
        let to = schema(&[2, 1]);
        let rows = vec![vec![Value::Int(10), Value::Int(20)]];
        let out = align_rows(rows, &from, &to);
        assert_eq!(out[0], vec![Value::Int(20), Value::Int(10)]);
    }

    #[test]
    fn align_rows_identical_schema_is_identity() {
        let from = schema(&[3, 4, 5]);
        let to = schema(&[3, 4, 5]);
        let rows = vec![vec![Value::Int(1), Value::Int(2), Value::Int(3)]];
        assert_eq!(align_rows(rows.clone(), &from, &to), rows);
    }

    #[test]
    fn align_rows_fully_permuted_schema() {
        let from = schema(&[1, 2, 3, 4]);
        let to = schema(&[4, 2, 1, 3]);
        let rows = vec![
            vec![
                Value::Int(10),
                Value::Int(20),
                Value::Int(30),
                Value::Int(40),
            ],
            vec![
                Value::Int(11),
                Value::Int(21),
                Value::Int(31),
                Value::Int(41),
            ],
        ];
        let out = align_rows(rows, &from, &to);
        assert_eq!(
            out[0],
            vec![
                Value::Int(40),
                Value::Int(20),
                Value::Int(10),
                Value::Int(30)
            ]
        );
        assert_eq!(
            out[1],
            vec![
                Value::Int(41),
                Value::Int(21),
                Value::Int(11),
                Value::Int(31)
            ]
        );
    }

    #[test]
    fn align_rows_projects_to_narrower_schema() {
        // A target schema that keeps a subset of the source attributes
        // (UnionAll arms project shared attributes this way).
        let from = schema(&[1, 2, 3]);
        let to = schema(&[3, 1]);
        let rows = vec![vec![Value::Int(10), Value::Int(20), Value::Int(30)]];
        let out = align_rows(rows, &from, &to);
        assert_eq!(out[0], vec![Value::Int(30), Value::Int(10)]);
    }

    #[test]
    fn align_rows_empty_input_stays_empty() {
        let from = schema(&[1, 2]);
        let to = schema(&[2, 1]);
        assert!(align_rows(Vec::new(), &from, &to).is_empty());
    }

    #[test]
    #[should_panic(expected = "missing during alignment")]
    fn align_rows_missing_attribute_panics() {
        // The target wants an attribute the source never produced — a
        // planner bug, which must fail loudly rather than mis-align.
        let from = schema(&[1, 2]);
        let to = schema(&[1, 7]);
        align_rows(vec![vec![Value::Int(1), Value::Int(2)]], &from, &to);
    }

    #[test]
    fn runtime_state_reports_contents() {
        let mut state = RuntimeState::new();
        assert_eq!(state.mat_count(), 0);
        assert_eq!(state.total_tuples(), 0);
        let e = EqId(0);
        assert!(!state.is_fresh(e));
        assert!(state.mat_rows(e).is_none());
        state.mats.insert(
            e,
            StoredTable::with_rows(schema(&[1]), vec![vec![Value::Int(5)]]),
        );
        state.fresh.insert(e);
        assert_eq!(state.mat_count(), 1);
        assert_eq!(state.total_tuples(), 1);
        assert!(state.is_fresh(e));
        assert_eq!(state.mat_rows(e).unwrap().len(), 1);
    }

    #[test]
    fn agg_state_fold_and_unfold() {
        let s = schema(&[0, 1]);
        let mut state = AggState::new(
            vec![AttrId(0)],
            vec![AggSpec::new(
                mvmqo_relalg::agg::AggFunc::Sum,
                ScalarExpr::Col(AttrId(1)),
                AttrId(5),
            )],
            s,
        );
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(5)],
            vec![Value::Int(2), Value::Int(7)],
        ];
        assert!(!state.fold(&rows, DeltaKind::Insert));
        assert_eq!(state.rows().len(), 2);
        // Delete one row of group 1.
        assert!(!state.fold(&[vec![Value::Int(1), Value::Int(10)]], DeltaKind::Delete));
        let out = state.rows();
        assert!(out.contains(&vec![Value::Int(1), Value::Int(5)]));
        // Delete the rest of group 1 → group disappears.
        state.fold(&[vec![Value::Int(1), Value::Int(5)]], DeltaKind::Delete);
        assert_eq!(state.rows().len(), 1);
    }

    #[test]
    fn min_delete_requests_recompute() {
        let s = schema(&[0, 1]);
        let mut state = AggState::new(
            vec![AttrId(0)],
            vec![AggSpec::new(
                mvmqo_relalg::agg::AggFunc::Min,
                ScalarExpr::Col(AttrId(1)),
                AttrId(5),
            )],
            s,
        );
        state.fold(&[vec![Value::Int(1), Value::Int(10)]], DeltaKind::Insert);
        assert!(state.fold(&[vec![Value::Int(1), Value::Int(10)]], DeltaKind::Delete));
    }

    #[test]
    fn distinct_state_counts_support() {
        let mut d = DistinctState::default();
        d.fold(
            &[
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
            DeltaKind::Insert,
        );
        assert_eq!(d.rows().len(), 2);
        d.fold(&[vec![Value::Int(1)]], DeltaKind::Delete);
        assert_eq!(d.rows().len(), 2); // support 1 left
        d.fold(&[vec![Value::Int(1)]], DeltaKind::Delete);
        assert_eq!(d.rows().len(), 1);
    }
}
