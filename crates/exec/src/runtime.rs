//! Execution runtime: stored materializations, plan evaluation, and delta
//! merging.
//!
//! The runtime owns the materialized results (user views, permanent extras,
//! and on-demand temporaries), evaluates [`PhysPlan`]s against the *current*
//! database state, and applies computed differentials. Temporarily
//! materialized results are recomputed on demand and invalidated whenever a
//! base relation they depend on is updated, which keeps every full input a
//! delta plan reads in exactly the state updates `1..u−1` applied — the
//! semantics §5.2's per-node state entries describe.

use crate::meter::Meter;
use mvmqo_core::cost::CostModel;
use mvmqo_core::dag::{Dag, EqId};
use mvmqo_core::opt::StoredRef;
use mvmqo_core::plan::{PhysPlan, PlanNode};
use mvmqo_core::update::UpdateId;
use mvmqo_relalg::agg::{Accumulator, AggSpec};
use mvmqo_relalg::catalog::Catalog;
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::schema::{AttrId, Schema};
use mvmqo_relalg::tuple::{bag_minus, Tuple};
use mvmqo_relalg::types::Value;
use mvmqo_storage::database::Database;
use mvmqo_storage::delta::{DeltaKind, DeltaSet};
use mvmqo_storage::index::IndexKind;
use mvmqo_storage::table::StoredTable;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Hidden per-group accumulator state for a maintained aggregate view
/// (footnote 1 of the paper: counts must be kept to apply deletions).
#[derive(Debug, Clone)]
pub struct AggState {
    pub group_by: Vec<AttrId>,
    pub specs: Vec<AggSpec>,
    pub input_schema: Schema,
    groups: HashMap<Vec<Value>, Vec<Accumulator>>,
}

impl AggState {
    fn new(group_by: Vec<AttrId>, specs: Vec<AggSpec>, input_schema: Schema) -> Self {
        AggState {
            group_by,
            specs,
            input_schema,
            groups: HashMap::new(),
        }
    }

    fn key_positions(&self) -> Vec<usize> {
        self.group_by
            .iter()
            .map(|g| self.input_schema.position_of(*g).expect("group attr"))
            .collect()
    }

    /// Fold raw input rows in (inserts) or out (deletes). Returns `true` if
    /// a non-removable aggregate (MIN/MAX) saw a deletion and the state can
    /// no longer answer exactly — the caller must recompute.
    fn fold(&mut self, rows: &[Tuple], kind: DeltaKind) -> bool {
        let key_pos = self.key_positions();
        let mut needs_recompute = false;
        for row in rows {
            let key: Vec<Value> = key_pos.iter().map(|&i| row[i].clone()).collect();
            let specs = &self.specs;
            let entry = self
                .groups
                .entry(key)
                .or_insert_with(|| specs.iter().map(|s| Accumulator::new(s.func)).collect());
            for (acc, spec) in entry.iter_mut().zip(specs) {
                let v = spec.input.eval(row, &self.input_schema);
                match kind {
                    DeltaKind::Insert => acc.add(&v),
                    DeltaKind::Delete => {
                        if spec.func.removable() {
                            acc.remove(&v);
                        } else {
                            needs_recompute = true;
                        }
                    }
                }
            }
        }
        // Drop extinct groups.
        self.groups.retain(|_, accs| !accs[0].is_empty());
        needs_recompute
    }

    /// Current view rows: group key columns followed by aggregate values.
    fn rows(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self
            .groups
            .iter()
            .map(|(key, accs)| {
                let mut row = key.clone();
                row.extend(accs.iter().map(Accumulator::finish));
                row
            })
            .collect();
        out.sort();
        out
    }
}

/// Hidden support counts for a maintained DISTINCT view.
#[derive(Debug, Clone, Default)]
pub struct DistinctState {
    counts: HashMap<Tuple, i64>,
}

impl DistinctState {
    fn fold(&mut self, rows: &[Tuple], kind: DeltaKind) {
        for row in rows {
            let c = self.counts.entry(row.clone()).or_insert(0);
            match kind {
                DeltaKind::Insert => *c += 1,
                DeltaKind::Delete => *c -= 1,
            }
        }
        self.counts.retain(|_, c| *c > 0);
    }

    fn rows(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.counts.keys().cloned().collect();
        out.sort();
        out
    }
}

/// The materialized state a refresh cycle leaves behind: stored results,
/// their freshness marks, and the hidden aggregate/distinct support state.
///
/// For the one-shot pipeline this is created and dropped inside
/// [`crate::run::execute_program`]; a long-lived warehouse engine instead
/// keeps it across epochs (via [`crate::run::execute_epoch`]) so permanent
/// materializations and their indices are *reused*, not rebuilt. Node ids
/// are only meaningful for the DAG/program the state was built under — drop
/// the state whenever the engine re-optimizes.
#[derive(Debug, Default)]
pub struct RuntimeState {
    pub(crate) mats: HashMap<EqId, StoredTable>,
    pub(crate) fresh: HashSet<EqId>,
    pub(crate) agg_states: HashMap<EqId, AggState>,
    pub(crate) distinct_states: HashMap<EqId, DistinctState>,
}

impl RuntimeState {
    pub fn new() -> Self {
        RuntimeState::default()
    }

    /// Rows of a stored result, if present (warehouse `query` reads served
    /// from the maintained materializations).
    pub fn mat_rows(&self, e: EqId) -> Option<&[Tuple]> {
        self.mats.get(&e).map(|t| t.rows())
    }

    /// Number of stored results.
    pub fn mat_count(&self) -> usize {
        self.mats.len()
    }

    /// Total tuples held by stored results.
    pub fn total_tuples(&self) -> usize {
        self.mats.values().map(StoredTable::len).sum()
    }

    /// True if `e` is stored and fresh.
    pub fn is_fresh(&self, e: EqId) -> bool {
        self.fresh.contains(&e)
    }
}

/// The execution runtime for one maintenance cycle.
pub struct Runtime<'a> {
    pub dag: &'a Dag,
    pub catalog: &'a Catalog,
    pub model: CostModel,
    pub db: &'a mut Database,
    pub deltas: &'a DeltaSet,
    full_plans: BTreeMap<EqId, PhysPlan>,
    /// Indices to maintain on materialized nodes (chosen by the optimizer).
    mat_indices: HashMap<EqId, Vec<AttrId>>,
    state: RuntimeState,
    delta_store: HashMap<(EqId, UpdateId), Vec<Tuple>>,
    /// Full results actually (re)computed this cycle — stays at zero for
    /// results served from a persisted [`RuntimeState`].
    pub full_builds: usize,
    pub meter: Meter,
}

impl<'a> Runtime<'a> {
    pub fn new(
        dag: &'a Dag,
        catalog: &'a Catalog,
        model: CostModel,
        db: &'a mut Database,
        deltas: &'a DeltaSet,
        full_plans: BTreeMap<EqId, PhysPlan>,
        mat_indices: HashMap<EqId, Vec<AttrId>>,
    ) -> Self {
        Runtime::with_state(
            dag,
            catalog,
            model,
            db,
            deltas,
            full_plans,
            mat_indices,
            RuntimeState::new(),
        )
    }

    /// Like [`Runtime::new`], but resuming from a persisted [`RuntimeState`]
    /// (the warehouse epoch path): stored results that are still fresh are
    /// served as-is instead of being rebuilt.
    #[allow(clippy::too_many_arguments)]
    pub fn with_state(
        dag: &'a Dag,
        catalog: &'a Catalog,
        model: CostModel,
        db: &'a mut Database,
        deltas: &'a DeltaSet,
        full_plans: BTreeMap<EqId, PhysPlan>,
        mat_indices: HashMap<EqId, Vec<AttrId>>,
        state: RuntimeState,
    ) -> Self {
        Runtime {
            dag,
            catalog,
            model,
            db,
            deltas,
            full_plans,
            mat_indices,
            state,
            delta_store: HashMap::new(),
            full_builds: 0,
            meter: Meter::new(),
        }
    }

    /// Hand the materialized state back to the caller (end of an epoch).
    pub fn take_state(&mut self) -> RuntimeState {
        std::mem::take(&mut self.state)
    }

    /// Rows of a materialized result (test/report access; does not compute).
    pub fn mat_rows(&self, e: EqId) -> Option<&[Tuple]> {
        self.state.mats.get(&e).map(|t| t.rows())
    }

    /// Ensure a materialized result exists and is fresh; returns its rows.
    pub fn materialize(&mut self, e: EqId) -> &StoredTable {
        if !self.state.fresh.contains(&e) {
            self.full_builds += 1;
            let plan = self
                .full_plans
                .get(&e)
                .unwrap_or_else(|| panic!("no full plan for materialized node {e}"))
                .clone();
            let schema = plan.schema.clone();
            let rows = match &plan.node {
                PlanNode::HashAggregate {
                    input,
                    group_by,
                    aggs,
                } => {
                    // Build hidden accumulator state so later deletions can
                    // be applied (footnote 1).
                    let input_rows = self.eval(input);
                    let mut state =
                        AggState::new(group_by.clone(), aggs.clone(), input.schema.clone());
                    state.fold(&input_rows, DeltaKind::Insert);
                    let rows = state.rows();
                    self.state.agg_states.insert(e, state);
                    rows
                }
                PlanNode::Distinct { input } => {
                    let input_rows = self.eval(input);
                    let mut state = DistinctState::default();
                    state.fold(&input_rows, DeltaKind::Insert);
                    let rows = state.rows();
                    self.state.distinct_states.insert(e, state);
                    rows
                }
                _ => self.eval(&plan),
            };
            self.meter
                .charge_seq(&self.model, rows.len(), schema.row_width());
            let mut table = StoredTable::with_rows(schema, rows);
            for attr in self.mat_indices.get(&e).cloned().unwrap_or_default() {
                table.create_index(attr, IndexKind::Hash);
            }
            self.state.mats.insert(e, table);
            self.state.fresh.insert(e);
        }
        self.state.mats.get(&e).expect("just materialized")
    }

    /// Drop a temporary materialization.
    pub fn drop_mat(&mut self, e: EqId) {
        self.state.mats.remove(&e);
        self.state.fresh.remove(&e);
        self.state.agg_states.remove(&e);
        self.state.distinct_states.remove(&e);
    }

    /// Mark every materialization depending on `table` stale, except the
    /// maintained ones listed in `keep` (they were just merged).
    pub fn invalidate_depending(
        &mut self,
        table: mvmqo_relalg::catalog::TableId,
        keep: &HashSet<EqId>,
    ) {
        let stale: Vec<EqId> = self
            .state
            .fresh
            .iter()
            .copied()
            .filter(|e| self.dag.eq(*e).depends_on(table) && !keep.contains(e))
            .collect();
        for e in stale {
            self.state.fresh.remove(&e);
        }
    }

    /// Store a temporarily materialized differential.
    pub fn store_delta(&mut self, e: EqId, u: UpdateId, rows: Vec<Tuple>) {
        self.meter
            .charge_seq(&self.model, rows.len(), self.dag.eq(e).schema.row_width());
        self.delta_store.insert((e, u), rows);
    }

    /// Clear stored differentials of one update step.
    pub fn clear_deltas(&mut self, u: UpdateId) {
        self.delta_store.retain(|(_, du), _| *du != u);
    }

    // ==================================================================
    // Merging (§6.1: how maintained results absorb differentials)
    // ==================================================================

    /// Merge plain delta rows into a maintained result.
    pub fn merge_plain(&mut self, e: EqId, rows: Vec<Tuple>, kind: DeltaKind) {
        let width = self.dag.eq(e).schema.row_width();
        self.meter.charge_seq(&self.model, rows.len(), width);
        let table = self
            .state
            .mats
            .get_mut(&e)
            .expect("maintained result stored");
        match kind {
            DeltaKind::Insert => {
                table.apply_delta(&mvmqo_storage::delta::DeltaBatch::new(rows, vec![]))
            }
            DeltaKind::Delete => {
                table.apply_delta(&mvmqo_storage::delta::DeltaBatch::new(vec![], rows))
            }
        }
        self.state.fresh.insert(e);
    }

    /// Merge raw input delta rows into a maintained aggregate. Returns
    /// `true` if the view had to fall back to recomputation (MIN/MAX
    /// deletion).
    pub fn merge_aggregate(&mut self, e: EqId, input_rows: Vec<Tuple>, kind: DeltaKind) -> bool {
        self.meter.charge_cpu(&self.model, input_rows.len());
        let state = self.state.agg_states.get_mut(&e).expect("aggregate state");
        let needs_recompute = state.fold(&input_rows, kind);
        if needs_recompute {
            // Affected-group recompute, realized as a full refresh (§3.1.2's
            // "significant extra work"; the cost model charges the same).
            self.state.fresh.remove(&e);
            self.materialize(e);
            return true;
        }
        let rows = state.rows();
        let schema = self.state.mats.get(&e).expect("stored").schema().clone();
        let mut table = StoredTable::with_rows(schema, rows);
        for attr in self.mat_indices.get(&e).cloned().unwrap_or_default() {
            table.create_index(attr, IndexKind::Hash);
        }
        self.state.mats.insert(e, table);
        self.state.fresh.insert(e);
        false
    }

    /// Merge raw input delta rows into a maintained DISTINCT view.
    pub fn merge_distinct(&mut self, e: EqId, input_rows: Vec<Tuple>, kind: DeltaKind) {
        self.meter.charge_cpu(&self.model, input_rows.len());
        let state = self
            .state
            .distinct_states
            .get_mut(&e)
            .expect("distinct state");
        state.fold(&input_rows, kind);
        let rows = state.rows();
        let schema = self.state.mats.get(&e).expect("stored").schema().clone();
        self.state
            .mats
            .insert(e, StoredTable::with_rows(schema, rows));
        self.state.fresh.insert(e);
    }

    // ==================================================================
    // Plan evaluation
    // ==================================================================

    /// Evaluate a physical plan against the current state.
    pub fn eval(&mut self, plan: &PhysPlan) -> Vec<Tuple> {
        match &plan.node {
            PlanNode::ScanBase(t) => {
                let rows = self.db.base(*t).expect("base table loaded").rows().to_vec();
                self.meter
                    .charge_seq(&self.model, rows.len(), plan.schema.row_width());
                rows
            }
            PlanNode::ScanDelta { table, kind } => {
                let rows = self.deltas.side(*table, *kind).to_vec();
                self.meter
                    .charge_seq(&self.model, rows.len(), plan.schema.row_width());
                rows
            }
            PlanNode::ReadMat(e) => {
                self.materialize(*e);
                let table = self.state.mats.get(e).expect("materialized");
                let rows = align_rows(table.rows().to_vec(), table.schema(), &plan.schema);
                self.meter
                    .charge_seq(&self.model, rows.len(), plan.schema.row_width());
                rows
            }
            PlanNode::ReadDelta(e, u) => {
                let rows = self
                    .delta_store
                    .get(&(*e, *u))
                    .cloned()
                    .unwrap_or_else(|| panic!("δ({e},{u}) not stored"));
                self.meter
                    .charge_seq(&self.model, rows.len(), plan.schema.row_width());
                rows
            }
            PlanNode::IndexScan { target, attr, pred } => {
                self.eval_index_scan(plan, *target, *attr, pred)
            }
            PlanNode::Filter { input, pred } => {
                let rows = self.eval(input);
                self.meter.charge_cpu(&self.model, rows.len());
                rows.into_iter()
                    .filter(|r| pred.matches(r, &input.schema))
                    .collect()
            }
            PlanNode::Project { input, attrs } => {
                let rows = self.eval(input);
                self.meter.charge_cpu(&self.model, rows.len());
                let positions: Vec<usize> = attrs
                    .iter()
                    .map(|a| input.schema.position_of(*a).expect("project attr"))
                    .collect();
                rows.into_iter()
                    .map(|r| positions.iter().map(|&i| r[i].clone()).collect())
                    .collect()
            }
            PlanNode::HashJoin {
                build,
                probe,
                keys,
                residual,
            } => self.eval_hash_join(plan, build, probe, keys, residual),
            PlanNode::MergeJoin {
                left,
                right,
                keys,
                residual,
            } => self.eval_merge_join(plan, left, right, keys, residual),
            PlanNode::NlJoin { left, right, pred } => self.eval_nl_join(plan, left, right, pred),
            PlanNode::IndexNlJoin {
                outer,
                inner,
                keys,
                inner_filter,
                residual,
            } => self.eval_index_nl_join(plan, outer, *inner, *keys, inner_filter, residual),
            PlanNode::HashAggregate {
                input,
                group_by,
                aggs,
            } => {
                let input_rows = self.eval(input);
                self.meter.charge_cpu(&self.model, input_rows.len());
                let mut state = AggState::new(group_by.clone(), aggs.clone(), input.schema.clone());
                state.fold(&input_rows, DeltaKind::Insert);
                state.rows()
            }
            PlanNode::UnionAll(inputs) => {
                let mut out = Vec::new();
                for i in inputs {
                    let rows = self.eval(i);
                    out.extend(align_rows(rows, &i.schema, &plan.schema));
                }
                self.meter.charge_cpu(&self.model, out.len());
                out
            }
            PlanNode::Minus { left, right } => {
                let l = self.eval(left);
                let r = align_rows(self.eval(right), &right.schema, &left.schema);
                self.meter.charge_cpu(&self.model, l.len() + r.len());
                bag_minus(&l, &r)
            }
            PlanNode::Distinct { input } => {
                let rows = self.eval(input);
                self.meter.charge_cpu(&self.model, rows.len());
                let mut state = DistinctState::default();
                state.fold(&rows, DeltaKind::Insert);
                state.rows()
            }
        }
    }

    fn eval_index_scan(
        &mut self,
        plan: &PhysPlan,
        target: StoredRef,
        attr: AttrId,
        pred: &Predicate,
    ) -> Vec<Tuple> {
        // Equality probe when possible, else a filtered scan.
        let eq_value = pred.conjuncts().iter().find_map(|c| {
            if let ScalarExpr::Cmp {
                op: CmpOp::Eq,
                lhs,
                rhs,
            } = c
            {
                match (lhs.as_ref(), rhs.as_ref()) {
                    (ScalarExpr::Col(a), ScalarExpr::Lit(v)) if *a == attr => Some(v.clone()),
                    (ScalarExpr::Lit(v), ScalarExpr::Col(a)) if *a == attr => Some(v.clone()),
                    _ => None,
                }
            } else {
                None
            }
        });
        let (rows, schema, total) = {
            let table = self.stored_table(target);
            let schema = table.schema().clone();
            let total = table.len();
            let rows: Vec<Tuple> = match (&eq_value, table.index_on(attr)) {
                (Some(v), Some(idx)) => idx
                    .lookup_eq(v)
                    .iter()
                    .map(|&pos| table.row(pos).clone())
                    .collect(),
                _ => table.rows().to_vec(),
            };
            (rows, schema, total)
        };
        let filtered: Vec<Tuple> = rows
            .into_iter()
            .filter(|r| pred.matches(r, &schema))
            .collect();
        self.meter.charge_probes(
            &self.model,
            1,
            filtered.len().max(1),
            total,
            schema.row_width(),
        );
        align_rows(filtered, &schema, &plan.schema)
    }

    fn eval_hash_join(
        &mut self,
        plan: &PhysPlan,
        build: &PhysPlan,
        probe: &PhysPlan,
        keys: &[(AttrId, AttrId)],
        residual: &Predicate,
    ) -> Vec<Tuple> {
        let build_rows = self.eval(build);
        let probe_rows = self.eval(probe);
        let bpos: Vec<usize> = keys
            .iter()
            .map(|(b, _)| build.schema.position_of(*b).expect("build key"))
            .collect();
        let ppos: Vec<usize> = keys
            .iter()
            .map(|(_, p)| probe.schema.position_of(*p).expect("probe key"))
            .collect();
        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(build_rows.len());
        for row in &build_rows {
            let key: Vec<Value> = bpos.iter().map(|&i| row[i].clone()).collect();
            table.entry(key).or_default().push(row);
        }
        let combined = build.schema.concat(&probe.schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let mut out = Vec::new();
        for prow in &probe_rows {
            let key: Vec<Value> = ppos.iter().map(|&i| prow[i].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for brow in matches {
                    let joined = mvmqo_relalg::tuple::concat_tuples(brow, prow);
                    if residual.is_true() || residual.matches(&joined, &combined) {
                        out.push(project_positions(&joined, &out_positions));
                    }
                }
            }
        }
        self.meter
            .charge_cpu(&self.model, build_rows.len() + probe_rows.len() + out.len());
        out
    }

    fn eval_merge_join(
        &mut self,
        plan: &PhysPlan,
        left: &PhysPlan,
        right: &PhysPlan,
        keys: &[(AttrId, AttrId)],
        residual: &Predicate,
    ) -> Vec<Tuple> {
        let mut lrows = self.eval(left);
        let mut rrows = self.eval(right);
        let lpos: Vec<usize> = keys
            .iter()
            .map(|(l, _)| left.schema.position_of(*l).expect("left key"))
            .collect();
        let rpos: Vec<usize> = keys
            .iter()
            .map(|(_, r)| right.schema.position_of(*r).expect("right key"))
            .collect();
        let key_of = |row: &Tuple, pos: &[usize]| -> Vec<Value> {
            pos.iter().map(|&i| row[i].clone()).collect()
        };
        lrows.sort_by_key(|a| key_of(a, &lpos));
        rrows.sort_by_key(|a| key_of(a, &rpos));
        // Charge the sorts.
        self.meter
            .charge_cpu(&self.model, lrows.len() + rrows.len());
        let combined = left.schema.concat(&right.schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < lrows.len() && j < rrows.len() {
            let lk = key_of(&lrows[i], &lpos);
            let rk = key_of(&rrows[j], &rpos);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Cross product of the equal-key groups.
                    let i_end = (i..lrows.len())
                        .take_while(|&x| key_of(&lrows[x], &lpos) == lk)
                        .last()
                        .unwrap()
                        + 1;
                    let j_end = (j..rrows.len())
                        .take_while(|&x| key_of(&rrows[x], &rpos) == rk)
                        .last()
                        .unwrap()
                        + 1;
                    for lrow in &lrows[i..i_end] {
                        for rrow in &rrows[j..j_end] {
                            let joined = mvmqo_relalg::tuple::concat_tuples(lrow, rrow);
                            if residual.is_true() || residual.matches(&joined, &combined) {
                                out.push(project_positions(&joined, &out_positions));
                            }
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        self.meter.charge_cpu(&self.model, out.len());
        out
    }

    fn eval_nl_join(
        &mut self,
        plan: &PhysPlan,
        left: &PhysPlan,
        right: &PhysPlan,
        pred: &Predicate,
    ) -> Vec<Tuple> {
        let lrows = self.eval(left);
        let rrows = self.eval(right);
        let combined = left.schema.concat(&right.schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let mut out = Vec::new();
        for l in &lrows {
            for r in &rrows {
                let joined = mvmqo_relalg::tuple::concat_tuples(l, r);
                if pred.is_true() || pred.matches(&joined, &combined) {
                    out.push(project_positions(&joined, &out_positions));
                }
            }
        }
        self.meter.charge_cpu(
            &self.model,
            lrows.len() * rrows.len().max(1) / 10 + out.len(),
        );
        out
    }

    fn eval_index_nl_join(
        &mut self,
        plan: &PhysPlan,
        outer: &PhysPlan,
        inner: StoredRef,
        keys: (AttrId, AttrId),
        inner_filter: &Predicate,
        residual: &Predicate,
    ) -> Vec<Tuple> {
        let outer_rows = self.eval(outer);
        let okey_pos = outer.schema.position_of(keys.0).expect("outer key");
        // Snapshot the inner; probing goes through its index, created on
        // demand if the optimizer assumed one. (The clone keeps the borrow
        // checker happy across the recursive evaluator; at the simulation
        // scales this executor targets it is not a bottleneck.)
        let inner_table = {
            let t = self.stored_table_mut(inner);
            if t.index_on(keys.1).is_none() {
                t.create_index(keys.1, IndexKind::Hash);
            }
            t.clone()
        };
        let inner_schema = inner_table.schema().clone();
        let combined = outer.schema.concat(&inner_schema);
        let out_positions = positions_for(&combined, &plan.schema);
        let idx = inner_table.index_on(keys.1).expect("inner index");
        let mut out = Vec::new();
        let mut pages = 0usize;
        for orow in &outer_rows {
            let key = &orow[okey_pos];
            if key.is_null() {
                continue;
            }
            for &pos in idx.lookup_eq(key) {
                let irow = inner_table.row(pos);
                if !inner_filter.is_true() && !inner_filter.matches(irow, &inner_schema) {
                    continue;
                }
                pages += 1;
                let joined = mvmqo_relalg::tuple::concat_tuples(orow, irow);
                if residual.is_true() || residual.matches(&joined, &combined) {
                    out.push(project_positions(&joined, &out_positions));
                }
            }
        }
        self.meter.charge_probes(
            &self.model,
            outer_rows.len(),
            pages,
            inner_table.len(),
            inner_schema.row_width(),
        );
        out
    }

    /// Resolve a stored relation reference (immutable).
    fn stored_table(&mut self, target: StoredRef) -> &StoredTable {
        match target {
            StoredRef::Base(t) => self.db.base(t).expect("base table loaded"),
            StoredRef::Mat(e) => self.materialize(e),
        }
    }

    /// Resolve a stored relation reference (mutable, for on-demand index
    /// creation).
    fn stored_table_mut(&mut self, target: StoredRef) -> &mut StoredTable {
        match target {
            StoredRef::Base(t) => self.db.base_mut(t).expect("base table loaded"),
            StoredRef::Mat(e) => {
                self.materialize(e);
                self.state.mats.get_mut(&e).expect("materialized")
            }
        }
    }
}

/// Reorder rows from one schema layout to another (same attribute set).
pub fn align_rows(rows: Vec<Tuple>, from: &Schema, to: &Schema) -> Vec<Tuple> {
    if from.ids() == to.ids() {
        return rows;
    }
    let positions = positions_for(from, to);
    rows.into_iter()
        .map(|r| project_positions(&r, &positions))
        .collect()
}

fn positions_for(from: &Schema, to: &Schema) -> Vec<usize> {
    to.ids()
        .iter()
        .map(|a| {
            from.position_of(*a)
                .unwrap_or_else(|| panic!("attribute {a} missing during alignment"))
        })
        .collect()
}

fn project_positions(row: &[Value], positions: &[usize]) -> Tuple {
    positions.iter().map(|&i| row[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::schema::Attribute;
    use mvmqo_relalg::types::DataType;

    fn schema(ids: &[u32]) -> Schema {
        Schema::new(
            ids.iter()
                .map(|&i| Attribute {
                    id: AttrId(i),
                    name: format!("a{i}"),
                    data_type: DataType::Int,
                })
                .collect(),
        )
    }

    #[test]
    fn align_rows_reorders_columns() {
        let from = schema(&[1, 2]);
        let to = schema(&[2, 1]);
        let rows = vec![vec![Value::Int(10), Value::Int(20)]];
        let out = align_rows(rows, &from, &to);
        assert_eq!(out[0], vec![Value::Int(20), Value::Int(10)]);
    }

    #[test]
    fn align_rows_identical_schema_is_identity() {
        let from = schema(&[3, 4, 5]);
        let to = schema(&[3, 4, 5]);
        let rows = vec![vec![Value::Int(1), Value::Int(2), Value::Int(3)]];
        assert_eq!(align_rows(rows.clone(), &from, &to), rows);
    }

    #[test]
    fn align_rows_fully_permuted_schema() {
        let from = schema(&[1, 2, 3, 4]);
        let to = schema(&[4, 2, 1, 3]);
        let rows = vec![
            vec![
                Value::Int(10),
                Value::Int(20),
                Value::Int(30),
                Value::Int(40),
            ],
            vec![
                Value::Int(11),
                Value::Int(21),
                Value::Int(31),
                Value::Int(41),
            ],
        ];
        let out = align_rows(rows, &from, &to);
        assert_eq!(
            out[0],
            vec![
                Value::Int(40),
                Value::Int(20),
                Value::Int(10),
                Value::Int(30)
            ]
        );
        assert_eq!(
            out[1],
            vec![
                Value::Int(41),
                Value::Int(21),
                Value::Int(11),
                Value::Int(31)
            ]
        );
    }

    #[test]
    fn align_rows_projects_to_narrower_schema() {
        // A target schema that keeps a subset of the source attributes
        // (UnionAll arms project shared attributes this way).
        let from = schema(&[1, 2, 3]);
        let to = schema(&[3, 1]);
        let rows = vec![vec![Value::Int(10), Value::Int(20), Value::Int(30)]];
        let out = align_rows(rows, &from, &to);
        assert_eq!(out[0], vec![Value::Int(30), Value::Int(10)]);
    }

    #[test]
    fn align_rows_empty_input_stays_empty() {
        let from = schema(&[1, 2]);
        let to = schema(&[2, 1]);
        assert!(align_rows(Vec::new(), &from, &to).is_empty());
    }

    #[test]
    #[should_panic(expected = "missing during alignment")]
    fn align_rows_missing_attribute_panics() {
        // The target wants an attribute the source never produced — a
        // planner bug, which must fail loudly rather than mis-align.
        let from = schema(&[1, 2]);
        let to = schema(&[1, 7]);
        align_rows(vec![vec![Value::Int(1), Value::Int(2)]], &from, &to);
    }

    #[test]
    fn runtime_state_reports_contents() {
        let mut state = RuntimeState::new();
        assert_eq!(state.mat_count(), 0);
        assert_eq!(state.total_tuples(), 0);
        let e = EqId(0);
        assert!(!state.is_fresh(e));
        assert!(state.mat_rows(e).is_none());
        state.mats.insert(
            e,
            StoredTable::with_rows(schema(&[1]), vec![vec![Value::Int(5)]]),
        );
        state.fresh.insert(e);
        assert_eq!(state.mat_count(), 1);
        assert_eq!(state.total_tuples(), 1);
        assert!(state.is_fresh(e));
        assert_eq!(state.mat_rows(e).unwrap().len(), 1);
    }

    #[test]
    fn agg_state_fold_and_unfold() {
        let s = schema(&[0, 1]);
        let mut state = AggState::new(
            vec![AttrId(0)],
            vec![AggSpec::new(
                mvmqo_relalg::agg::AggFunc::Sum,
                ScalarExpr::Col(AttrId(1)),
                AttrId(5),
            )],
            s,
        );
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(5)],
            vec![Value::Int(2), Value::Int(7)],
        ];
        assert!(!state.fold(&rows, DeltaKind::Insert));
        assert_eq!(state.rows().len(), 2);
        // Delete one row of group 1.
        assert!(!state.fold(&[vec![Value::Int(1), Value::Int(10)]], DeltaKind::Delete));
        let out = state.rows();
        assert!(out.contains(&vec![Value::Int(1), Value::Int(5)]));
        // Delete the rest of group 1 → group disappears.
        state.fold(&[vec![Value::Int(1), Value::Int(5)]], DeltaKind::Delete);
        assert_eq!(state.rows().len(), 1);
    }

    #[test]
    fn min_delete_requests_recompute() {
        let s = schema(&[0, 1]);
        let mut state = AggState::new(
            vec![AttrId(0)],
            vec![AggSpec::new(
                mvmqo_relalg::agg::AggFunc::Min,
                ScalarExpr::Col(AttrId(1)),
                AttrId(5),
            )],
            s,
        );
        state.fold(&[vec![Value::Int(1), Value::Int(10)]], DeltaKind::Insert);
        assert!(state.fold(&[vec![Value::Int(1), Value::Int(10)]], DeltaKind::Delete));
    }

    #[test]
    fn distinct_state_counts_support() {
        let mut d = DistinctState::default();
        d.fold(
            &[
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
            DeltaKind::Insert,
        );
        assert_eq!(d.rows().len(), 2);
        d.fold(&[vec![Value::Int(1)]], DeltaKind::Delete);
        assert_eq!(d.rows().len(), 2); // support 1 left
        d.fold(&[vec![Value::Int(1)]], DeltaKind::Delete);
        assert_eq!(d.rows().len(), 1);
    }
}
