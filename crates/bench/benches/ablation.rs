//! Ablation bench: the two §6.2 optimizations (incremental cost update,
//! monotonicity) toggled independently, plus differential candidates
//! enabled (the completed version of the paper's "restriction" in §7).
//! Wall-time deltas here quantify what each optimization buys.

use criterion::{criterion_group, criterion_main, Criterion};
use mvmqo_bench::{run_point, ExperimentConfig, Workload};
use mvmqo_core::opt::GreedyOptions;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(15);
    let configs: [(&str, GreedyOptions); 4] = [
        ("paper_config", GreedyOptions::default()),
        (
            "no_monotonicity",
            GreedyOptions {
                monotonicity: false,
                ..Default::default()
            },
        ),
        (
            "no_incremental_cost_update",
            GreedyOptions {
                incremental_cost_update: false,
                ..Default::default()
            },
        ),
        (
            "diff_candidates",
            GreedyOptions {
                diff_candidates: true,
                ..Default::default()
            },
        ),
    ];
    for (name, options) in configs {
        let cfg = ExperimentConfig {
            options,
            ..Default::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_point(Workload::Ten, 5.0, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
