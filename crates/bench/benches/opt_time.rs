//! §7.2 "Cost of Optimization": wall time of Greedy optimization for the
//! ten-view set (the paper reports 31 s on an UltraSparc 10 and argues the
//! one-time cost is small against per-refresh savings). This bench measures
//! the same quantity on modern hardware, end to end (DAG build +
//! differential properties + greedy + plan extraction) — plus the
//! re-entrant session's incremental replans (add one view / delta-drift
//! restat) against the cold rebuild on the `many_views` scaling workload.

use criterion::{criterion_group, criterion_main, Criterion};
use mvmqo_bench::{referenced_tables, ExperimentConfig, Workload};
use mvmqo_core::api::{optimize, MaintenanceProblem};
use mvmqo_core::cost::CostModel;
use mvmqo_core::opt::GreedyOptions;
use mvmqo_core::session::Optimizer;
use mvmqo_core::update::UpdateModel;
use mvmqo_relalg::catalog::{Catalog, TableId};
use mvmqo_relalg::logical::ViewDef;
use mvmqo_tpcd::many_views;
use mvmqo_tpcd::schema::tpcd_catalog;
use std::hint::black_box;

fn bench_opt_time(c: &mut Criterion) {
    let cfg = ExperimentConfig::default();
    let mut g = c.benchmark_group("opt_time");
    g.sample_size(20);
    for pct in [1.0, 10.0, 80.0] {
        g.bench_function(format!("greedy_ten_views_{pct}pct"), |b| {
            b.iter(|| {
                let mut t = tpcd_catalog(cfg.sf);
                let views = Workload::Ten.build(&mut t);
                let tables = referenced_tables(&views);
                let updates =
                    UpdateModel::percentage(tables, pct, |id| t.catalog.table(id).stats.rows);
                let problem = MaintenanceProblem::new(views, updates).with_pk_indices(&t.catalog);
                black_box(optimize(&mut t.catalog, &problem))
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("opt_time_session");
    g.sample_size(10);
    let t = tpcd_catalog(cfg.sf);
    let views = many_views(&t, 26);
    g.bench_function("cold_rebuild_25_views", |b| {
        b.iter(|| black_box(warm_session(&views[..25])))
    });
    // Forking the warmed session per iteration (Optimizer is Clone) keeps
    // the measured work to the incremental replan itself plus a cheap
    // state copy; the authoritative numbers live in `figures opt-bench`.
    let (warm, warm_catalog) = warm_session(&views[..25]);
    g.bench_function("incremental_add_view_to_25", |b| {
        b.iter(|| {
            let (mut s, mut catalog) = (warm.clone(), warm_catalog.clone());
            s.add_view(&mut catalog, &views[25]);
            black_box(s.plan(&mut catalog))
        })
    });
    g.bench_function("incremental_drift_restat_25", |b| {
        b.iter(|| {
            let (mut s, mut catalog) = (warm.clone(), warm_catalog.clone());
            s.set_update_model(model_for(&catalog, &views[..25], 8.0));
            black_box(s.plan(&mut catalog))
        })
    });
    g.finish();
}

fn model_for(catalog: &Catalog, views: &[ViewDef], pct: f64) -> UpdateModel {
    let mut tables: Vec<TableId> = views.iter().flat_map(|v| v.expr.base_tables()).collect();
    tables.sort_unstable();
    tables.dedup();
    UpdateModel::percentage(tables, pct, |id| catalog.table(id).stats.rows)
}

/// A cold-planned session over `views` (with PK indices), plus its catalog.
fn warm_session(views: &[ViewDef]) -> (Optimizer, Catalog) {
    let catalog = tpcd_catalog(ExperimentConfig::default().sf).catalog;
    let mut catalog = catalog;
    let mut s = Optimizer::new(CostModel::default(), GreedyOptions::default());
    s.set_initial_indices(mvmqo_core::api::pk_indices_for(&catalog, views));
    s.set_update_model(model_for(&catalog, views, 5.0));
    for v in views {
        s.add_view(&mut catalog, v);
    }
    let _ = s.plan(&mut catalog);
    (s, catalog)
}

criterion_group!(benches, bench_opt_time);
criterion_main!(benches);
