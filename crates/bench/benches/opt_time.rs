//! §7.2 "Cost of Optimization": wall time of Greedy optimization for the
//! ten-view set (the paper reports 31 s on an UltraSparc 10 and argues the
//! one-time cost is small against per-refresh savings). This bench measures
//! the same quantity on modern hardware, end to end (DAG build +
//! differential properties + greedy + plan extraction).

use criterion::{criterion_group, criterion_main, Criterion};
use mvmqo_bench::{referenced_tables, ExperimentConfig, Workload};
use mvmqo_core::api::{optimize, MaintenanceProblem};
use mvmqo_core::update::UpdateModel;
use mvmqo_tpcd::schema::tpcd_catalog;
use std::hint::black_box;

fn bench_opt_time(c: &mut Criterion) {
    let cfg = ExperimentConfig::default();
    let mut g = c.benchmark_group("opt_time");
    g.sample_size(20);
    for pct in [1.0, 10.0, 80.0] {
        g.bench_function(format!("greedy_ten_views_{pct}pct"), |b| {
            b.iter(|| {
                let mut t = tpcd_catalog(cfg.sf);
                let views = Workload::Ten.build(&mut t);
                let tables = referenced_tables(&views);
                let updates =
                    UpdateModel::percentage(tables, pct, |id| t.catalog.table(id).stats.rows);
                let problem = MaintenanceProblem::new(views, updates).with_pk_indices(&t.catalog);
                black_box(optimize(&mut t.catalog, &problem))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_opt_time);
criterion_main!(benches);
