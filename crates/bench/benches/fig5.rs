//! Figure 5 bench: optimization of the ten-view workload with (a) and
//! without (b) predefined PK indices. Series data:
//! `cargo run --bin figures fig5a|fig5b`.

use criterion::{criterion_group, criterion_main, Criterion};
use mvmqo_bench::{run_point, ExperimentConfig, Workload};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let with_idx = ExperimentConfig::default();
    let no_idx = ExperimentConfig {
        pk_indices: false,
        ..Default::default()
    };
    let mut g = c.benchmark_group("fig5");
    g.sample_size(20);
    g.bench_function("fig5a_ten_views_opt_10pct", |b| {
        b.iter(|| black_box(run_point(Workload::Ten, 10.0, &with_idx)))
    });
    g.bench_function("fig5b_ten_views_noidx_opt_10pct", |b| {
        b.iter(|| black_box(run_point(Workload::Ten, 10.0, &no_idx)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
