//! Figure 4 bench: optimization of the five-view workloads (join-only and
//! aggregate), plus the small-buffer configuration of §7.2 "Effect of
//! Buffer Size". Series data: `cargo run --bin figures fig4a|fig4b|buffer`.

use criterion::{criterion_group, criterion_main, Criterion};
use mvmqo_bench::{run_point, ExperimentConfig, Workload};
use mvmqo_core::cost::CostModel;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let cfg = ExperimentConfig::default();
    let small = ExperimentConfig {
        cost_model: CostModel::small_buffer(),
        ..Default::default()
    };
    let mut g = c.benchmark_group("fig4");
    g.sample_size(20);
    g.bench_function("fig4a_five_join_opt_10pct", |b| {
        b.iter(|| black_box(run_point(Workload::FiveJoin, 10.0, &cfg)))
    });
    g.bench_function("fig4b_five_agg_opt_10pct", |b| {
        b.iter(|| black_box(run_point(Workload::FiveAgg, 10.0, &cfg)))
    });
    g.bench_function("fig4a_small_buffer_opt_10pct", |b| {
        b.iter(|| black_box(run_point(Workload::FiveJoin, 10.0, &small)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
