//! Executor benchmarks: hash join, aggregation, bag operations, and a full
//! maintenance epoch — the perf trajectory of the vectorized batch engine.
//!
//! Each operator benchmark has a `rows_*` companion that replicates the
//! pre-vectorization executor's row-at-a-time algorithm (clone every input
//! row, allocate a `Vec<Value>` key per probe, build each output row as a
//! fresh `Vec`), so the batch engine's speedup is measured in-tree.
//!
//! The epoch benchmark runs the five-join-view TPC-D workload at sf 0.1
//! (sf 0.01 in `--test` smoke mode so CI stays fast) through the real
//! warehouse epoch path, serially and under the parallel scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use mvmqo_bench::exec_workloads::{
    bag_fixture, exec_fixture, rows_agg, rows_join, run_agg, run_join, EpochFixture,
};
use mvmqo_relalg::tuple::{bag_counts, bag_minus};
use std::hint::black_box;

const DIM_ROWS: usize = 20_000;
const FACT_ROWS: usize = 200_000;
const EPOCH_PCT: f64 = 5.0;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn bench_operators(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec");
    g.sample_size(10);
    let mut fixture = exec_fixture(DIM_ROWS, FACT_ROWS);

    // Correctness pin before timing anything: the engine and the row
    // baseline must agree on output cardinality.
    let batch_out = run_join(&mut fixture);
    assert_eq!(batch_out, rows_join(&fixture), "join baselines disagree");
    let agg_out = run_agg(&mut fixture);
    assert_eq!(agg_out, rows_agg(&fixture), "agg baselines disagree");

    g.bench_function("hash_join_batch", |b| {
        b.iter(|| black_box(run_join(&mut fixture)))
    });
    g.bench_function("hash_join_rows_baseline", |b| {
        b.iter(|| black_box(rows_join(&fixture)))
    });
    g.bench_function("aggregation_batch", |b| {
        b.iter(|| black_box(run_agg(&mut fixture)))
    });
    g.bench_function("aggregation_rows_baseline", |b| {
        b.iter(|| black_box(rows_agg(&fixture)))
    });
    g.finish();
}

fn bench_bag_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("bag");
    g.sample_size(10);
    let (a, b_side) = bag_fixture(100_000);
    // Micro-asserts: the single-allocation rewrite must keep multiset
    // semantics (checked every sample, not just once).
    g.bench_function("bag_minus_100k", |bch| {
        bch.iter(|| {
            let d = bag_minus(&a, &b_side);
            assert_eq!(d.len(), a.len() - b_side.len());
            black_box(d.len())
        })
    });
    g.bench_function("bag_counts_100k", |bch| {
        bch.iter(|| {
            let counts = bag_counts(&a);
            assert_eq!(counts.values().sum::<i64>() as usize, a.len());
            black_box(counts.len())
        })
    });
    g.finish();
}

fn bench_epoch(c: &mut Criterion) {
    let sf = if smoke_mode() { 0.01 } else { 0.1 };
    let mut g = c.benchmark_group(format!("epoch_sf{sf}"));
    g.sample_size(10);
    let mut serial = EpochFixture::new(sf, false);
    g.bench_function("five_join_serial", |b| {
        b.iter(|| black_box(serial.step(EPOCH_PCT)))
    });
    let mut parallel = EpochFixture::new(sf, true);
    g.bench_function("five_join_parallel", |b| {
        b.iter(|| black_box(parallel.step(EPOCH_PCT)))
    });
    g.finish();
}

criterion_group!(benches, bench_operators, bench_bag_ops, bench_epoch);
criterion_main!(benches);
