//! Epoch-throughput benchmark: the warehouse engine's persistent epochs
//! against the one-shot optimize+execute path the seed pipeline used.
//!
//! The persistent engine plans once (re-planning only on drift) and reuses
//! materializations and indices across epochs; the one-shot baseline pays
//! optimization plus full setup every cycle. Wall-clock per epoch is the
//! metric — the warehouse's serving cadence.

use criterion::{criterion_group, criterion_main, Criterion};
use mvmqo_core::api::MaintenanceProblem;
use mvmqo_core::update::UpdateModel;
use mvmqo_exec::{execute_program, index_plan_from_report};
use mvmqo_tpcd::{epoch_updates, five_join_views, generate_database, tpcd_catalog, DriverProfile};
use mvmqo_warehouse::{ReoptPolicy, Warehouse};
use std::hint::black_box;

const SF: f64 = 0.001;
const PCT: f64 = 5.0;

fn bench_epochs(c: &mut Criterion) {
    let mut g = c.benchmark_group("epochs");
    g.sample_size(10);

    // Persistent warehouse: one long-lived engine, one epoch per iteration.
    g.bench_function("epoch_persistent_5pct", |b| {
        let tpcd = tpcd_catalog(SF);
        let db = generate_database(&tpcd, 5);
        let mut wh = Warehouse::new(tpcd_catalog(SF).catalog, db).with_policy(ReoptPolicy {
            delta_fraction: 0.5,
            cost_ratio: 1e12,
        });
        for v in five_join_views(&tpcd) {
            wh.register_view(v).unwrap();
        }
        let mut epoch = 0u64;
        b.iter(|| {
            let deltas = epoch_updates(
                &tpcd,
                wh.database(),
                DriverProfile::Steady { percent: PCT },
                epoch,
                9,
            )
            .unwrap();
            epoch += 1;
            let tables: Vec<_> = deltas.tables().collect();
            for t in tables {
                wh.ingest(t, deltas.get(t).unwrap().clone()).unwrap();
            }
            black_box(wh.run_epoch().unwrap())
        })
    });

    // One-shot baseline: the same evolving database, but re-optimizing and
    // rebuilding every materialization every epoch (what the pre-warehouse
    // pipeline had to do).
    g.bench_function("epoch_oneshot_5pct", |b| {
        let mut tpcd = tpcd_catalog(SF);
        let mut db = generate_database(&tpcd, 5);
        let views = five_join_views(&tpcd);
        let mut epoch = 0u64;
        b.iter(|| {
            let deltas =
                epoch_updates(&tpcd, &db, DriverProfile::Steady { percent: PCT }, epoch, 9)
                    .unwrap();
            epoch += 1;
            let updates = UpdateModel::new(deltas.tables().map(|t| {
                let bch = deltas.get(t).unwrap();
                (t, bch.inserts.len() as f64, bch.deletes.len() as f64)
            }));
            let problem =
                MaintenanceProblem::new(views.clone(), updates).with_pk_indices(&tpcd.catalog);
            let initial_indices = problem.initial_indices.clone();
            let planned = mvmqo_core::api::plan_maintenance(&mut tpcd.catalog, &problem);
            let (dag, report) = (planned.dag, planned.report);
            let index_plan = index_plan_from_report(&initial_indices, &report);
            black_box(
                execute_program(
                    &dag,
                    &tpcd.catalog,
                    problem.cost_model,
                    &mut db,
                    &deltas,
                    &report.program,
                    &index_plan,
                )
                .expect("epoch execution"),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_epochs);
criterion_main!(benches);
