//! Figure 3 bench: optimization of the stand-alone 4-relation view (with
//! and without aggregation). Criterion measures optimizer wall time; the
//! figure's data series (estimated plan costs) is printed by
//! `cargo run --bin figures fig3a` / `fig3b`.

use criterion::{criterion_group, criterion_main, Criterion};
use mvmqo_bench::{run_point, ExperimentConfig, Workload};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let cfg = ExperimentConfig::default();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(20);
    g.bench_function("fig3a_single_join_opt_10pct", |b| {
        b.iter(|| black_box(run_point(Workload::SingleJoin, 10.0, &cfg)))
    });
    g.bench_function("fig3b_single_agg_opt_10pct", |b| {
        b.iter(|| black_box(run_point(Workload::SingleAgg, 10.0, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
