//! Benchmark harness: regenerates every table and figure of §7 of the
//! paper.
//!
//! The performance measure is **estimated plan cost** ("Plan Cost (sec)"),
//! exactly as in the paper (§7.1: the authors had no execution engine and
//! report optimizer estimates; we report the same metric, and the
//! integration tests separately validate that executed plans are correct).
//!
//! Each experiment builds a fresh TPC-D catalog at scale 0.1, constructs a
//! workload, sweeps update percentages, and runs both optimizers.

pub mod exec_workloads;
pub mod opt_bench;

use mvmqo_core::api::{optimize, MaintenanceProblem, OptimizerReport};
use mvmqo_core::cost::CostModel;
use mvmqo_core::opt::{GreedyOptions, Mode, RefreshStrategy};
use mvmqo_core::update::UpdateModel;
use mvmqo_relalg::catalog::TableId;
use mvmqo_relalg::logical::ViewDef;
use mvmqo_tpcd::schema::{tpcd_catalog, Tpcd};

/// The update percentages the paper sweeps (1% … 80%).
pub const PAPER_PERCENTS: [f64; 7] = [1.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0];

/// The paper's scale factor.
pub const PAPER_SF: f64 = 0.1;

/// Which benchmark workload to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Fig 3(a): stand-alone 4-relation join view.
    SingleJoin,
    /// Fig 3(b): aggregation over the same join.
    SingleAgg,
    /// Fig 4(a): five join views with sharing.
    FiveJoin,
    /// Fig 4(b): five aggregate views.
    FiveAgg,
    /// Fig 5: ten views of 3–4 relations.
    Ten,
}

impl Workload {
    pub fn build(self, t: &mut Tpcd) -> Vec<ViewDef> {
        match self {
            Workload::SingleJoin => mvmqo_tpcd::single_join_view(t),
            Workload::SingleAgg => mvmqo_tpcd::single_agg_view(t),
            Workload::FiveJoin => mvmqo_tpcd::five_join_views(t),
            Workload::FiveAgg => mvmqo_tpcd::five_agg_views(t),
            Workload::Ten => mvmqo_tpcd::ten_views(t),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Workload::SingleJoin => "fig3a_single_join",
            Workload::SingleAgg => "fig3b_single_agg",
            Workload::FiveJoin => "fig4a_five_join",
            Workload::FiveAgg => "fig4b_five_agg",
            Workload::Ten => "fig5_ten_views",
        }
    }
}

/// Configuration of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    pub sf: f64,
    /// Primary-key indices assumed present (§7.1 default true; Fig 5(b)
    /// runs with false).
    pub pk_indices: bool,
    pub cost_model: CostModel,
    pub options: GreedyOptions,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            sf: PAPER_SF,
            pk_indices: true,
            cost_model: CostModel::default(),
            options: GreedyOptions::default(),
        }
    }
}

/// One point of a figure: estimated maintenance plan cost at one update
/// percentage under both optimizers.
#[derive(Debug, Clone)]
pub struct FigurePoint {
    pub percent: f64,
    pub greedy: f64,
    pub nogreedy: f64,
    pub greedy_report: OptimizerReport,
}

impl FigurePoint {
    pub fn ratio(&self) -> f64 {
        if self.greedy > 0.0 {
            self.nogreedy / self.greedy
        } else {
            f64::INFINITY
        }
    }
}

/// Tables referenced by a view set (the relations the update workload
/// touches — "we assume that all relations are updated by the same
/// percentage", §7.1, restricted to the relations the views mention).
pub fn referenced_tables(views: &[ViewDef]) -> Vec<TableId> {
    let mut out: Vec<TableId> = views.iter().flat_map(|v| v.expr.base_tables()).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Run one (workload, percent) cell and return both optimizers' costs.
pub fn run_point(workload: Workload, percent: f64, config: &ExperimentConfig) -> FigurePoint {
    let mut t = tpcd_catalog(config.sf);
    let views = workload.build(&mut t);
    let tables = referenced_tables(&views);
    let updates = UpdateModel::percentage(tables, percent, |id| t.catalog.table(id).stats.rows);
    let mut problem = MaintenanceProblem::new(views, updates);
    problem.cost_model = config.cost_model;
    problem.options = config.options;
    if config.pk_indices {
        problem = problem.with_pk_indices(&t.catalog);
    }
    let greedy_report = optimize(&mut t.catalog, &problem);
    let mut nogreedy_problem = problem.clone();
    nogreedy_problem.options.mode = Mode::NoGreedy;
    let mut t2 = tpcd_catalog(config.sf);
    let views2 = workload.build(&mut t2);
    nogreedy_problem.views = views2;
    let nogreedy_report = optimize(&mut t2.catalog, &nogreedy_problem);
    FigurePoint {
        percent,
        greedy: greedy_report.total_cost,
        nogreedy: nogreedy_report.total_cost,
        greedy_report,
    }
}

/// Sweep the paper's update percentages for one workload.
pub fn run_series(workload: Workload, config: &ExperimentConfig) -> Vec<FigurePoint> {
    PAPER_PERCENTS
        .iter()
        .map(|p| run_point(workload, *p, config))
        .collect()
}

/// §7.2 "Temporary vs. Permanent Materialization" tallies.
#[derive(Debug, Clone, Copy, Default)]
pub struct TempPermStats {
    pub temporary: usize,
    pub permanent: usize,
    pub indices_permanent: usize,
    pub indices_temporary: usize,
}

impl TempPermStats {
    pub fn absorb_report(&mut self, report: &OptimizerReport) {
        for m in &report.chosen_mats {
            match m.strategy {
                RefreshStrategy::Recompute => self.temporary += 1,
                RefreshStrategy::Incremental => self.permanent += 1,
            }
        }
        // Materialized differentials are temporary by definition (§6.1).
        self.temporary += report.chosen_diffs.len();
        for i in &report.chosen_indices {
            if i.permanent {
                self.indices_permanent += 1;
            } else {
                self.indices_temporary += 1;
            }
        }
    }
}

/// Aggregate temp-vs-perm statistics across all workloads at the given
/// update percentages (the paper buckets 1–5% and 50–90%).
pub fn temp_vs_perm(percents: &[f64], config: &ExperimentConfig) -> TempPermStats {
    let mut stats = TempPermStats::default();
    for w in [
        Workload::SingleJoin,
        Workload::SingleAgg,
        Workload::FiveJoin,
        Workload::FiveAgg,
        Workload::Ten,
    ] {
        for p in percents {
            let point = run_point(w, *p, config);
            stats.absorb_report(&point.greedy_report);
        }
    }
    stats
}

/// Format a figure's series as the table the paper plots.
pub fn format_series(title: &str, series: &[FigurePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title}\n"));
    out.push_str("update%   NoGreedy(s)     Greedy(s)   ratio\n");
    for p in series {
        out.push_str(&format!(
            "{:>6.0}  {:>12.1}  {:>12.1}  {:>6.2}\n",
            p.percent,
            p.nogreedy,
            p.greedy,
            p.ratio()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> ExperimentConfig {
        // Smaller scale keeps unit tests quick; shapes are scale-free.
        ExperimentConfig {
            sf: 0.01,
            ..Default::default()
        }
    }

    #[test]
    fn greedy_dominates_nogreedy_on_every_workload() {
        for w in [Workload::SingleJoin, Workload::FiveJoin, Workload::Ten] {
            let p = run_point(w, 10.0, &fast_config());
            assert!(
                p.greedy <= p.nogreedy + 1e-6,
                "{}: greedy {} > nogreedy {}",
                w.name(),
                p.greedy,
                p.nogreedy
            );
        }
    }

    #[test]
    fn benefit_ratio_shrinks_with_update_rate() {
        let cfg = fast_config();
        let low = run_point(Workload::FiveJoin, 1.0, &cfg);
        let high = run_point(Workload::FiveJoin, 80.0, &cfg);
        assert!(
            low.ratio() >= high.ratio() * 0.8,
            "low {} high {}",
            low.ratio(),
            high.ratio()
        );
    }

    #[test]
    fn costs_increase_with_update_rate() {
        let cfg = fast_config();
        let low = run_point(Workload::SingleJoin, 1.0, &cfg);
        let high = run_point(Workload::SingleJoin, 80.0, &cfg);
        assert!(high.nogreedy > low.nogreedy);
        assert!(high.greedy >= low.greedy * 0.9);
    }

    #[test]
    fn fig5b_without_indices_selects_indices() {
        let cfg = ExperimentConfig {
            pk_indices: false,
            ..fast_config()
        };
        let p = run_point(Workload::Ten, 1.0, &cfg);
        assert!(
            !p.greedy_report.chosen_indices.is_empty(),
            "greedy should select indices when none exist"
        );
    }

    #[test]
    fn temp_perm_shift_toward_recompute_at_high_rates() {
        let cfg = fast_config();
        let low = temp_vs_perm(&[1.0], &cfg);
        let high = temp_vs_perm(&[80.0], &cfg);
        let frac = |s: &TempPermStats| {
            if s.temporary + s.permanent == 0 {
                0.0
            } else {
                s.temporary as f64 / (s.temporary + s.permanent) as f64
            }
        };
        assert!(
            frac(&high) >= frac(&low) - 0.25,
            "temporary share should not collapse at high rates: low {:?} high {:?}",
            low,
            high
        );
    }

    #[test]
    fn formatting_contains_all_points() {
        let cfg = fast_config();
        let series = vec![run_point(Workload::SingleJoin, 1.0, &cfg)];
        let s = format_series("t", &series);
        assert!(s.contains("NoGreedy"));
        assert!(s.contains("ratio"));
    }
}
