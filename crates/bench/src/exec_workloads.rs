//! Executor benchmark workloads, shared by `benches/exec.rs` and the
//! `figures` binary's `exec-bench` section (which emits `BENCH_exec.json`).
//!
//! Two kinds of measurement live here:
//!
//! * **operator microbenchmarks** — a synthetic dim/fact pair sized so the
//!   hash-join and aggregation hot loops dominate, evaluated both through
//!   the engine's executor ([`run_join`]/[`run_agg`]) and through
//!   *row-at-a-time baseline* implementations ([`rows_join`]/[`rows_agg`])
//!   that replicate the pre-vectorization executor's algorithms (clone
//!   every input row, allocate a `Vec<Value>` key per probe, build each
//!   output row as a fresh `Vec`). The baseline is kept so the speedup of
//!   the batch engine stays measurable in-tree, not just in history;
//! * **epoch throughput** — a TPC-D warehouse driving full maintenance
//!   epochs through the real `execute_epoch` path.

use mvmqo_core::cost::CostModel;
use mvmqo_core::dag::Dag;
use mvmqo_core::plan::{PhysPlan, PlanNode};
use mvmqo_exec::Runtime;
use mvmqo_relalg::agg::{Accumulator, AggFunc, AggSpec};
use mvmqo_relalg::batch::Batch;
use mvmqo_relalg::catalog::{Catalog, ColumnSpec, TableId};
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::hash::{u64_map_with_capacity, U64Map};
use mvmqo_relalg::tuple::{concat_tuples, Tuple};
use mvmqo_relalg::types::{DataType, Value};
use mvmqo_storage::database::Database;
use mvmqo_storage::delta::DeltaSet;
use mvmqo_storage::table::StoredTable;
use mvmqo_tpcd::{epoch_updates, five_join_views, generate_database, tpcd_catalog, DriverProfile};
use mvmqo_warehouse::{ReoptPolicy, Warehouse};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Synthetic dim/fact fixture for operator microbenchmarks.
pub struct ExecFixture {
    pub catalog: Catalog,
    pub db: Database,
    pub dim: TableId,
    pub fact: TableId,
    pub join_plan: PhysPlan,
    pub agg_plan: PhysPlan,
    /// Hash join keyed on the *string* columns (`dim.name = fact.dname`) —
    /// the workload the dictionary encoding targets.
    pub join_str_plan: PhysPlan,
    /// Grouped aggregation keyed on the *string* column (`fact.pad`).
    pub agg_str_plan: PhysPlan,
}

/// Tiny deterministic LCG so fixtures need no RNG dependency.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Build the fixture: `dim_rows` dimension rows, `fact_rows` fact rows,
/// a filtered build-side hash join plan and a grouped aggregation plan.
pub fn exec_fixture(dim_rows: usize, fact_rows: usize) -> ExecFixture {
    let mut catalog = Catalog::new();
    let dim = catalog.add_table(
        "dim",
        vec![
            ColumnSpec::key("id", DataType::Int),
            ColumnSpec::with_distinct("grp", DataType::Int, 64.0),
            ColumnSpec::with_distinct("name", DataType::Str, dim_rows as f64),
        ],
        dim_rows as f64,
        &["id"],
    );
    let fact = catalog.add_table(
        "fact",
        vec![
            ColumnSpec::with_distinct("fk", DataType::Int, dim_rows as f64),
            ColumnSpec::with_range("val", DataType::Float, fact_rows as f64, (0.0, 1.0)),
            ColumnSpec::with_distinct("pad", DataType::Str, 997.0),
            ColumnSpec::with_distinct("dname", DataType::Str, dim_rows as f64),
        ],
        fact_rows as f64,
        &["fk"],
    );

    let mut seed = 0x5eed_cafe_u64;
    let dim_schema = catalog.table(dim).schema.clone();
    let fact_schema = catalog.table(fact).schema.clone();
    let dim_data: Vec<Tuple> = (0..dim_rows)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int((lcg(&mut seed) % 64) as i64),
                Value::str(format!("d{i}")),
            ]
        })
        .collect();
    let fact_data: Vec<Tuple> = (0..fact_rows)
        .map(|_| {
            let fk = lcg(&mut seed) % dim_rows as u64;
            vec![
                Value::Int(fk as i64),
                Value::Float((lcg(&mut seed) % 10_000) as f64 / 10_000.0),
                Value::str(format!("p{}", lcg(&mut seed) % 997)),
                // The string image of the foreign key, so the Str-keyed
                // join produces exactly the Int-keyed join's matches.
                Value::str(format!("d{fk}")),
            ]
        })
        .collect();
    let mut db = Database::new();
    db.put_base(dim, StoredTable::with_rows(dim_schema.clone(), dim_data));
    db.put_base(fact, StoredTable::with_rows(fact_schema.clone(), fact_data));

    let dim_id = catalog.table(dim).attr("id");
    let fact_fk = catalog.table(fact).attr("fk");
    let fact_val = catalog.table(fact).attr("val");
    let combined = dim_schema.concat(&fact_schema);
    let join_plan = PhysPlan {
        schema: combined.clone(),
        node: PlanNode::HashJoin {
            build: Box::new(PhysPlan {
                schema: dim_schema.clone(),
                node: PlanNode::ScanBase(dim),
            }),
            probe: Box::new(PhysPlan {
                schema: fact_schema.clone(),
                node: PlanNode::Filter {
                    input: Box::new(PhysPlan {
                        schema: fact_schema.clone(),
                        node: PlanNode::ScanBase(fact),
                    }),
                    pred: Predicate::from_expr(ScalarExpr::col_cmp_lit(
                        fact_val,
                        CmpOp::Lt,
                        0.5f64,
                    )),
                },
            }),
            keys: vec![(dim_id, fact_fk)],
            residual: Predicate::true_(),
        },
    };

    let sum_out = catalog.fresh_attr();
    let cnt_out = catalog.fresh_attr();
    let agg_schema = mvmqo_relalg::schema::Schema::new(vec![
        fact_schema.attr(fact_fk).unwrap().clone(),
        mvmqo_relalg::schema::Attribute {
            id: sum_out,
            name: "sum_val".into(),
            data_type: DataType::Float,
        },
        mvmqo_relalg::schema::Attribute {
            id: cnt_out,
            name: "cnt".into(),
            data_type: DataType::Int,
        },
    ]);
    let agg_plan = PhysPlan {
        schema: agg_schema,
        node: PlanNode::HashAggregate {
            input: Box::new(PhysPlan {
                schema: fact_schema.clone(),
                node: PlanNode::ScanBase(fact),
            }),
            group_by: vec![fact_fk],
            aggs: vec![
                AggSpec::new(AggFunc::Sum, ScalarExpr::Col(fact_val), sum_out),
                AggSpec::new(AggFunc::Count, ScalarExpr::Col(fact_val), cnt_out),
            ],
        },
    };

    let dim_name = catalog.table(dim).attr("name");
    let fact_dname = catalog.table(fact).attr("dname");
    let fact_pad = catalog.table(fact).attr("pad");
    let join_str_plan = PhysPlan {
        schema: combined,
        node: PlanNode::HashJoin {
            build: Box::new(PhysPlan {
                schema: dim_schema,
                node: PlanNode::ScanBase(dim),
            }),
            probe: Box::new(PhysPlan {
                schema: fact_schema.clone(),
                node: PlanNode::ScanBase(fact),
            }),
            keys: vec![(dim_name, fact_dname)],
            residual: Predicate::true_(),
        },
    };

    let sum_out2 = catalog.fresh_attr();
    let cnt_out2 = catalog.fresh_attr();
    let agg_str_schema = mvmqo_relalg::schema::Schema::new(vec![
        fact_schema.attr(fact_pad).unwrap().clone(),
        mvmqo_relalg::schema::Attribute {
            id: sum_out2,
            name: "sum_val".into(),
            data_type: DataType::Float,
        },
        mvmqo_relalg::schema::Attribute {
            id: cnt_out2,
            name: "cnt".into(),
            data_type: DataType::Int,
        },
    ]);
    let agg_str_plan = PhysPlan {
        schema: agg_str_schema,
        node: PlanNode::HashAggregate {
            input: Box::new(PhysPlan {
                schema: fact_schema,
                node: PlanNode::ScanBase(fact),
            }),
            group_by: vec![fact_pad],
            aggs: vec![
                AggSpec::new(AggFunc::Sum, ScalarExpr::Col(fact_val), sum_out2),
                AggSpec::new(AggFunc::Count, ScalarExpr::Col(fact_val), cnt_out2),
            ],
        },
    };

    ExecFixture {
        catalog,
        db,
        dim,
        fact,
        join_plan,
        agg_plan,
        join_str_plan,
        agg_str_plan,
    }
}

/// Evaluate a plan through the engine's executor; returns output rows.
pub fn run_plan(fixture: &mut ExecFixture, plan: &PhysPlan) -> usize {
    run_plan_threads(fixture, plan, 1)
}

/// Evaluate a plan with an explicit morsel-parallel worker budget
/// (`1` = the serial reference path).
pub fn run_plan_threads(fixture: &mut ExecFixture, plan: &PhysPlan, threads: usize) -> usize {
    let dag = Dag::new();
    let deltas = DeltaSet::new();
    let mut rt = Runtime::new(
        &dag,
        &fixture.catalog,
        CostModel::default(),
        &mut fixture.db,
        &deltas,
        BTreeMap::new(),
        HashMap::new(),
    );
    rt.set_threads(threads);
    rt.eval(plan).expect("benchmark plan evaluation").len()
}

/// The filtered hash join through the engine executor.
pub fn run_join(fixture: &mut ExecFixture) -> usize {
    let plan = fixture.join_plan.clone();
    run_plan(fixture, &plan)
}

/// The grouped aggregation through the engine executor.
pub fn run_agg(fixture: &mut ExecFixture) -> usize {
    let plan = fixture.agg_plan.clone();
    run_plan(fixture, &plan)
}

/// Row-at-a-time baseline of the same filtered hash join: exactly the
/// pre-vectorization executor's algorithm (input clones, per-row key
/// `Vec<Value>` allocations, per-output-row `Vec` construction).
pub fn rows_join(fixture: &ExecFixture) -> usize {
    let dim_t = fixture.db.base(fixture.dim).expect("dim");
    let fact_t = fixture.db.base(fixture.fact).expect("fact");
    let build_rows = dim_t.rows().to_vec();
    let fact_rows = fact_t.rows().to_vec();
    let fact_schema = fact_t.schema().clone();
    let fact_val = fixture.catalog.table(fixture.fact).attr("val");
    let pred = Predicate::from_expr(ScalarExpr::col_cmp_lit(fact_val, CmpOp::Lt, 0.5f64));
    let probe_rows: Vec<Tuple> = fact_rows
        .into_iter()
        .filter(|r| pred.matches(r, &fact_schema))
        .collect();
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(build_rows.len());
    for row in &build_rows {
        let key: Vec<Value> = vec![row[0].clone()];
        table.entry(key).or_default().push(row);
    }
    let mut out: Vec<Tuple> = Vec::new();
    for prow in &probe_rows {
        let key: Vec<Value> = vec![prow[0].clone()];
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for brow in matches {
                out.push(concat_tuples(brow, prow));
            }
        }
    }
    out.len()
}

/// Row-at-a-time baseline of the grouped aggregation (per-row key allocs).
pub fn rows_agg(fixture: &ExecFixture) -> usize {
    let fact_t = fixture.db.base(fixture.fact).expect("fact");
    let rows = fact_t.rows().to_vec();
    let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    for row in &rows {
        let key: Vec<Value> = vec![row[0].clone()];
        let accs = groups.entry(key).or_insert_with(|| {
            vec![
                Accumulator::new(AggFunc::Sum),
                Accumulator::new(AggFunc::Count),
            ]
        });
        accs[0].add(&row[1]);
        accs[1].add(&row[1]);
    }
    let mut out: Vec<Tuple> = groups
        .into_iter()
        .map(|(key, accs)| {
            let mut row = key;
            row.extend(accs.iter().map(Accumulator::finish));
            row
        })
        .collect();
    out.sort();
    out.len()
}

/// The string-keyed hash join through the engine executor.
pub fn run_join_str(fixture: &mut ExecFixture) -> usize {
    let plan = fixture.join_str_plan.clone();
    run_plan(fixture, &plan)
}

/// The string-grouped aggregation through the engine executor.
pub fn run_agg_str(fixture: &mut ExecFixture) -> usize {
    let plan = fixture.agg_str_plan.clone();
    run_plan(fixture, &plan)
}

/// Row-at-a-time baseline of the string-keyed join (`dim.name = fact.dname`).
pub fn rows_join_str(fixture: &ExecFixture) -> usize {
    let dim_t = fixture.db.base(fixture.dim).expect("dim");
    let fact_t = fixture.db.base(fixture.fact).expect("fact");
    let mut table: HashMap<Value, Vec<&Tuple>> = HashMap::with_capacity(dim_t.len());
    for row in dim_t.rows() {
        table.entry(row[2].clone()).or_default().push(row);
    }
    let mut out: Vec<Tuple> = Vec::new();
    for prow in fact_t.rows() {
        if prow[3].is_null() {
            continue;
        }
        if let Some(matches) = table.get(&prow[3]) {
            for brow in matches {
                out.push(concat_tuples(brow, prow));
            }
        }
    }
    out.len()
}

/// Row-at-a-time baseline of the string-grouped aggregation (group `pad`).
pub fn rows_agg_str(fixture: &ExecFixture) -> usize {
    let fact_t = fixture.db.base(fixture.fact).expect("fact");
    let mut groups: HashMap<Value, (f64, i64)> = HashMap::new();
    for row in fact_t.rows() {
        let acc = groups.entry(row[2].clone()).or_insert((0.0, 0));
        if let Some(v) = row[1].as_f64() {
            acc.0 += v;
            acc.1 += 1;
        }
    }
    groups.len()
}

/// The stored dim/fact images with their string columns either as the
/// engine stores them (dictionary-encoded) or decoded back to plain `Str`
/// vectors — the before/after axis of the dictionary-encoding benchmark.
pub fn str_batches(fixture: &ExecFixture, dict: bool) -> (Batch, Batch) {
    let dim_b = fixture.db.base(fixture.dim).expect("dim").batch().clone();
    let fact_b = fixture.db.base(fixture.fact).expect("fact").batch().clone();
    if dict {
        (dim_b, fact_b)
    } else {
        (decode_batch(&dim_b), decode_batch(&fact_b))
    }
}

fn decode_batch(b: &Batch) -> Batch {
    let cols = (0..b.schema().len())
        .map(|c| b.column(c).decode_dict())
        .collect();
    Batch::from_columns(b.schema().clone(), cols)
}

/// Serial columnar hash join on one key column — the engine's serial
/// algorithm spelled out over the public batch API, so the *same code*
/// can be timed against dictionary-encoded and plain string inputs.
/// Returns the output row count (the full output batch is built).
pub fn columnar_join_str(build: &Batch, probe: &Batch, bkey: usize, pkey: usize) -> usize {
    let mut table: U64Map<Vec<u32>> = u64_map_with_capacity(build.num_rows());
    for i in 0..build.num_rows() {
        let phys = build.physical(i);
        if build.any_null(phys, &[bkey]) {
            continue;
        }
        table
            .entry(build.hash_keys(phys, &[bkey]))
            .or_default()
            .push(phys);
    }
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for i in 0..probe.num_rows() {
        let phys = probe.physical(i);
        if probe.any_null(phys, &[pkey]) {
            continue;
        }
        if let Some(cands) = table.get(&probe.hash_keys(phys, &[pkey])) {
            for &b in cands {
                if build.keys_eq(b, &[bkey], probe, phys, &[pkey]) {
                    pairs.push((b, phys));
                }
            }
        }
    }
    let combined = build.schema().concat(probe.schema());
    let positions: Vec<usize> = (0..combined.len()).collect();
    Batch::gather_pairs(build, probe, &pairs, combined, &positions).num_rows()
}

/// Serial columnar hash group-by on one key column with SUM + COUNT —
/// the generic hash-grouping algorithm over the public batch API, timed
/// against dictionary-encoded and plain string inputs. Returns the group
/// count.
pub fn columnar_agg_str(batch: &Batch, key: usize, val: usize) -> usize {
    let mut buckets: U64Map<Vec<(u32, usize)>> = u64_map_with_capacity(1024);
    let mut reps: Vec<u32> = Vec::new();
    let mut sums: Vec<f64> = Vec::new();
    let mut counts: Vec<i64> = Vec::new();
    for i in 0..batch.num_rows() {
        let phys = batch.physical(i);
        let bucket = buckets.entry(batch.hash_keys(phys, &[key])).or_default();
        let gid = bucket
            .iter()
            .find(|&&(rep, _)| batch.keys_eq(rep, &[key], batch, phys, &[key]))
            .map(|&(_, g)| g);
        let g = match gid {
            Some(g) => g,
            None => {
                let g = reps.len();
                bucket.push((phys, g));
                reps.push(phys);
                sums.push(0.0);
                counts.push(0);
                g
            }
        };
        if let Some(v) = batch.column(val).value(phys as usize).as_f64() {
            sums[g] += v;
            counts[g] += 1;
        }
    }
    std::hint::black_box((&sums, &counts));
    reps.len()
}

/// Multiset fixtures for the bag-operation microbenchmark.
pub fn bag_fixture(n: usize) -> (Vec<Tuple>, Vec<Tuple>) {
    let mut seed = 17u64;
    let a: Vec<Tuple> = (0..n)
        .map(|_| {
            vec![
                Value::Int((lcg(&mut seed) % (n as u64 / 2 + 1)) as i64),
                Value::Int((lcg(&mut seed) % 7) as i64),
            ]
        })
        .collect();
    let b: Vec<Tuple> = a.iter().step_by(3).cloned().collect();
    (a, b)
}

/// A TPC-D warehouse ready to drive maintenance epochs.
pub struct EpochFixture {
    tpcd: mvmqo_tpcd::Tpcd,
    pub warehouse: Warehouse,
    epoch: u64,
}

impl EpochFixture {
    /// Scale-factor `sf` database with the five-join-view workload
    /// registered; `parallel` selects the epoch scheduler.
    pub fn new(sf: f64, parallel: bool) -> EpochFixture {
        EpochFixture::with_threads(sf, parallel, 0)
    }

    /// [`EpochFixture::new`] with the worker budget pinned to `threads`
    /// (`0` = auto). A non-zero count forces the parallel scheduler on so
    /// the threads axis measures the parallel code path even on a 1-core
    /// host.
    pub fn with_threads(sf: f64, parallel: bool, threads: usize) -> EpochFixture {
        let tpcd = tpcd_catalog(sf);
        let db = generate_database(&tpcd, 5);
        let mut warehouse = Warehouse::new(tpcd.catalog.clone(), db)
            .with_policy(ReoptPolicy {
                delta_fraction: 0.5,
                cost_ratio: 1e12,
            })
            .with_parallel(parallel);
        warehouse.set_threads(threads);
        if parallel && threads > 0 {
            warehouse.set_force_parallel(true);
        }
        for v in five_join_views(&tpcd) {
            warehouse.register_view(v).unwrap();
        }
        EpochFixture {
            tpcd,
            warehouse,
            epoch: 0,
        }
    }

    /// Ingest a steady `percent` batch on every relation and run one epoch.
    /// Returns the number of tuples applied.
    pub fn step(&mut self, percent: f64) -> usize {
        let deltas = epoch_updates(
            &self.tpcd,
            self.warehouse.database(),
            DriverProfile::Steady { percent },
            self.epoch,
            9,
        )
        .unwrap();
        self.epoch += 1;
        let tables: Vec<_> = deltas.tables().collect();
        for t in tables {
            self.warehouse
                .ingest(t, deltas.get(t).unwrap().clone())
                .unwrap();
        }
        self.warehouse.run_epoch().unwrap().ingested_tuples
    }
}
