//! Regenerates every table and figure of the paper's evaluation (§7).
//!
//! ```text
//! figures [section] [--test]
//!   fig3a | fig3b | fig4a | fig4b | fig5a | fig5b
//!   opt-time | opt-bench | temp-vs-perm | buffer | ablation | exec-bench
//!   all (default)
//! ```
//!
//! `exec-bench` measures the vectorized executor (hash join, aggregation,
//! full maintenance epochs at TPC-D sf 0.1 — override with
//! `MVMQO_EXEC_BENCH_SF`) against the row-at-a-time baselines and writes
//! `BENCH_exec.json`, the perf-trajectory record for this repository.
//!
//! `opt-bench` measures *optimization time* — cold pipeline rebuild vs the
//! re-entrant optimizer session (incremental add-view and delta-drift
//! replans) on the `many_views` scaling workload — and writes
//! `BENCH_opt.json`. With `--test` it runs small view counts and fails on
//! regression (the CI smoke job).
//!
//! Output is the series the paper plots: estimated maintenance plan cost
//! ("Plan Cost (sec)") for NoGreedy vs Greedy across update percentages.

use mvmqo_bench::exec_workloads::{
    bag_fixture, columnar_agg_str, columnar_join_str, exec_fixture, rows_agg, rows_agg_str,
    rows_join, rows_join_str, run_agg, run_agg_str, run_join, run_join_str, run_plan_threads,
    str_batches, EpochFixture,
};
use mvmqo_bench::{
    format_series, run_point, run_series, temp_vs_perm, ExperimentConfig, Workload, PAPER_PERCENTS,
};
use mvmqo_core::cost::CostModel;
use mvmqo_core::opt::GreedyOptions;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let section = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let all = section == "all";
    if all || section == "fig3a" {
        let s = run_series(Workload::SingleJoin, &ExperimentConfig::default());
        print!(
            "{}",
            format_series("Figure 3(a): stand-alone view, join of 4 relations", &s)
        );
    }
    if all || section == "fig3b" {
        let s = run_series(Workload::SingleAgg, &ExperimentConfig::default());
        print!(
            "{}",
            format_series("Figure 3(b): stand-alone view with aggregation", &s)
        );
    }
    if all || section == "fig4a" {
        let s = run_series(Workload::FiveJoin, &ExperimentConfig::default());
        print!(
            "{}",
            format_series("Figure 4(a): five views, no aggregation", &s)
        );
    }
    if all || section == "fig4b" {
        let s = run_series(Workload::FiveAgg, &ExperimentConfig::default());
        print!(
            "{}",
            format_series("Figure 4(b): five views with aggregation", &s)
        );
    }
    if all || section == "fig5a" {
        let s = run_series(Workload::Ten, &ExperimentConfig::default());
        print!(
            "{}",
            format_series("Figure 5(a): ten views, predefined PK indices", &s)
        );
    }
    if all || section == "fig5b" {
        let cfg = ExperimentConfig {
            pk_indices: false,
            ..Default::default()
        };
        let s = run_series(Workload::Ten, &cfg);
        print!(
            "{}",
            format_series("Figure 5(b): ten views, no initial indices", &s)
        );
        let total_indices: usize = s.iter().map(|p| p.greedy_report.chosen_indices.len()).sum();
        println!("   (indices selected by Greedy across the sweep: {total_indices})");
    }
    if all || section == "opt-time" {
        // §7.2 "Cost of Optimization": the 10-view set (paper: 31 s on an
        // UltraSparc 10; one-time cost vs daily maintenance savings).
        let start = Instant::now();
        let p = run_point(Workload::Ten, 10.0, &ExperimentConfig::default());
        let elapsed = start.elapsed();
        println!("== Cost of Optimization (10 views, 10% updates)");
        println!(
            "greedy optimization time: {:?} (both optimizers incl. DAG build: {:?})",
            p.greedy_report.optimization_time, elapsed
        );
        println!(
            "DAG: {} equivalence nodes, {} operation nodes; benefit evaluations: {}",
            p.greedy_report.dag_eq_nodes,
            p.greedy_report.dag_op_nodes,
            p.greedy_report.benefit_evaluations
        );
        println!(
            "maintenance savings per refresh at 10%: {:.1}s (NoGreedy {:.1} − Greedy {:.1})",
            p.nogreedy - p.greedy,
            p.nogreedy,
            p.greedy
        );
    }
    if all || section == "temp-vs-perm" {
        // §7.2 "Temporary vs. Permanent Materialization".
        println!("== Temporary vs Permanent Materialization (all workloads)");
        let overall = temp_vs_perm(&PAPER_PERCENTS, &ExperimentConfig::default());
        let low = temp_vs_perm(&[1.0, 5.0], &ExperimentConfig::default());
        let high = temp_vs_perm(&[60.0, 80.0], &ExperimentConfig::default());
        println!(
            "overall : temporary (recompute cheaper) {} vs permanent (maintenance cheaper) {}",
            overall.temporary, overall.permanent
        );
        println!(
            "1–5%    : temporary {} vs permanent {}",
            low.temporary, low.permanent
        );
        println!(
            "60–80%  : temporary {} vs permanent {}",
            high.temporary, high.permanent
        );
        println!(
            "indices : permanent {} / rebuilt-per-refresh {}",
            overall.indices_permanent, overall.indices_temporary
        );
    }
    if all || section == "buffer" {
        // §7.2 "Effect of Buffer Size": 1000 blocks instead of 8000.
        let big = ExperimentConfig::default();
        let small = ExperimentConfig {
            cost_model: CostModel::small_buffer(),
            ..Default::default()
        };
        for (w, label) in [
            (Workload::FiveJoin, "five join views"),
            (Workload::Ten, "ten views"),
        ] {
            let sb = run_series(w, &big);
            let ss = run_series(w, &small);
            println!("== Effect of Buffer Size ({label}: 8000 vs 1000 blocks)");
            println!("update%   NG@8000   G@8000   ratio | NG@1000   G@1000   ratio");
            for (b, s) in sb.iter().zip(&ss) {
                println!(
                    "{:>6.0}  {:>8.1} {:>8.1}  {:>5.2} | {:>7.1} {:>8.1}  {:>5.2}",
                    b.percent,
                    b.nogreedy,
                    b.greedy,
                    b.ratio(),
                    s.nogreedy,
                    s.greedy,
                    s.ratio()
                );
            }
        }
    }
    if all || section == "opt-bench" {
        mvmqo_bench::opt_bench::run(test_mode);
    }
    if all || section == "exec-bench" {
        exec_bench(test_mode);
    }
    if all || section == "ablation" {
        println!("== Ablation: optimizer configuration (ten views, 5% updates)");
        let configs: [(&str, GreedyOptions); 4] = [
            ("full (paper config)", GreedyOptions::default()),
            (
                "no monotonicity",
                GreedyOptions {
                    monotonicity: false,
                    ..Default::default()
                },
            ),
            (
                "no incremental cost update",
                GreedyOptions {
                    incremental_cost_update: false,
                    ..Default::default()
                },
            ),
            (
                "with differential candidates",
                GreedyOptions {
                    diff_candidates: true,
                    ..Default::default()
                },
            ),
        ];
        println!(
            "{:<30} {:>10} {:>14} {:>16} {:>12}",
            "configuration", "cost(s)", "benefit-evals", "slot-recomputes", "time"
        );
        for (label, options) in configs {
            let cfg = ExperimentConfig {
                options,
                ..Default::default()
            };
            let p = run_point(Workload::Ten, 5.0, &cfg);
            let r = &p.greedy_report;
            println!(
                "{:<30} {:>10.1} {:>14} {:>16} {:>12?}",
                label,
                p.greedy,
                r.benefit_evaluations,
                r.full_slot_recomputes + r.diff_slot_recomputes,
                r.optimization_time
            );
        }
    }
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Paired medians: the two workloads (`run(true)` / `run(false)`) are
/// timed alternately within one loop, so both medians sample the same
/// wall-clock window and drifting background load cannot skew the
/// before/after ratio toward either side. One closure, so both workloads
/// may borrow the same fixture.
fn median_pair_ms(reps: usize, mut run: impl FnMut(bool)) -> (f64, f64) {
    let mut fs: Vec<f64> = Vec::with_capacity(reps);
    let mut gs: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        run(true);
        fs.push(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        run(false);
        gs.push(start.elapsed().as_secs_f64() * 1e3);
    }
    fs.sort_by(f64::total_cmp);
    gs.sort_by(f64::total_cmp);
    (fs[fs.len() / 2], gs[gs.len() / 2])
}

/// Medians recorded in `BENCH_exec.json` before this PR (the PR 4 state:
/// vectorized executor over row-primary storage, same container) — the
/// "before" of the current before/after record. The row bridges these
/// numbers paid (columnar image rebuilt from rows after every mutation,
/// `bag_minus` + index rebuild on every delete, per-row `Accumulator`
/// aggregation) are what the batch-native storage PR removed.
const PRE_PR_HASH_JOIN_MS: f64 = 29.57;
const PRE_PR_AGGREGATION_MS: f64 = 42.49;
const PRE_PR_BAG_MINUS_MS: f64 = 11.04;
const PRE_PR_EPOCH_SF01_MS: f64 = 2345.91;

/// Pre-vectorization (PR 2, commit f3d04d1) executor medians, kept so the
/// full perf trajectory stays in one file. The in-tree `rows_*` baselines
/// replicate that executor's algorithms so the comparison stays
/// reproducible as hardware changes.
const PRE_VEC_HASH_JOIN_MS: f64 = 88.4;
const PRE_VEC_AGGREGATION_MS: f64 = 50.1;
const PRE_VEC_EPOCH_SF01_MS: f64 = 6954.0;

/// Perf-guard thresholds for the CI smoke job (`exec-bench --test`),
/// checked into the repo next to this crate. Medians are from the
/// reference container; the tolerance factor absorbs slower CI hardware
/// while still catching order-of-magnitude regressions (a lost columnar
/// fast path, an accidental row bridge).
const EXEC_THRESHOLDS: &str = include_str!("../../exec_thresholds.json");

/// Minimal `"key": number` extraction so the thresholds file needs no
/// JSON dependency (the workspace builds offline).
fn threshold(key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let rest = EXEC_THRESHOLDS
        .split(&pat)
        .nth(1)
        .unwrap_or_else(|| panic!("exec_thresholds.json missing {key}"));
    rest.trim_start()
        .split([',', '}', '\n'])
        .next()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("exec_thresholds.json: bad number for {key}"))
}

/// Measure the executor and write `BENCH_exec.json`. With `test_mode`
/// (CI smoke): a smaller fixture and epoch scale, no JSON overwrite, and
/// a hard failure when the epoch or hash-join medians regress more than
/// the checked-in tolerance over `exec_thresholds.json`.
fn exec_bench(test_mode: bool) {
    println!("== Executor benchmarks (vectorized batch engine)");
    // In test mode the scale factor is pinned: the perf-guard thresholds
    // are calibrated for sf 0.01, so honoring the env override there
    // would compare an arbitrary-scale epoch against them.
    let sf: f64 = if test_mode {
        0.01
    } else {
        std::env::var("MVMQO_EXEC_BENCH_SF")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.1)
    };
    let (dim_rows, fact_rows) = if test_mode {
        (5_000, 50_000)
    } else {
        (20_000, 200_000)
    };
    let mut fixture = exec_fixture(dim_rows, fact_rows);

    // Pin correctness before timing.
    assert_eq!(run_join(&mut fixture), rows_join(&fixture));
    assert_eq!(run_agg(&mut fixture), rows_agg(&fixture));
    assert_eq!(run_join_str(&mut fixture), rows_join_str(&fixture));
    assert_eq!(run_agg_str(&mut fixture), rows_agg_str(&fixture));
    // The morsel-parallel operator paths must agree with the serial
    // reference exactly (here: output cardinality; the property suite
    // pins full batch equality).
    for threads in [2, 4] {
        let join_plan = fixture.join_plan.clone();
        let agg_plan = fixture.agg_plan.clone();
        let join_str_plan = fixture.join_str_plan.clone();
        assert_eq!(
            run_plan_threads(&mut fixture, &join_plan, threads),
            rows_join(&fixture)
        );
        assert_eq!(
            run_plan_threads(&mut fixture, &agg_plan, threads),
            rows_agg(&fixture)
        );
        assert_eq!(
            run_plan_threads(&mut fixture, &join_str_plan, threads),
            rows_join_str(&fixture)
        );
    }
    // Dict-encoded and decoded plain-string inputs produce identical
    // results through the same columnar kernels.
    let (dim_dict, fact_dict) = str_batches(&fixture, true);
    let (dim_plain, fact_plain) = str_batches(&fixture, false);
    assert_eq!(
        columnar_join_str(&dim_dict, &fact_dict, 2, 3),
        columnar_join_str(&dim_plain, &fact_plain, 2, 3)
    );
    assert_eq!(
        columnar_agg_str(&fact_dict, 2, 1),
        columnar_agg_str(&fact_plain, 2, 1)
    );

    // 15 reps for the operator micro-benches: 1-core container noise at
    // 5 reps swings medians by ±20%, which is larger than the effects the
    // before/after record tracks. The epoch bench stays at 3 reps (its
    // runtime is long enough to be stable).
    // Test mode still takes several reps: the CI guard asserts on these
    // medians, and a single sample on a shared runner is all noise.
    let micro_reps = if test_mode { 7 } else { 15 };
    let (join_batch, join_rows) = median_pair_ms(micro_reps, |batch| {
        if batch {
            run_join(&mut fixture);
        } else {
            rows_join(&fixture);
        }
    });
    let (agg_batch, agg_rows) = median_pair_ms(micro_reps, |batch| {
        if batch {
            run_agg(&mut fixture);
        } else {
            rows_agg(&fixture);
        }
    });
    let (a, b) = bag_fixture(100_000);
    let bag_schema = mvmqo_relalg::schema::Schema::new(
        (0..2)
            .map(|i| mvmqo_relalg::schema::Attribute {
                id: mvmqo_relalg::schema::AttrId(i),
                name: format!("bag.c{i}"),
                data_type: mvmqo_relalg::types::DataType::Int,
            })
            .collect(),
    );
    let a_batch = mvmqo_relalg::batch::Batch::from_rows(bag_schema.clone(), &a);
    let b_batch = mvmqo_relalg::batch::Batch::from_rows(bag_schema, &b);
    // Paired: the engine's columnar Batch::minus (the shipped delete-path
    // kernel) against the row-path reference it replaced.
    let (batch_minus_ms, bag_ms) = median_pair_ms(micro_reps, |batch| {
        if batch {
            let d = a_batch.minus(&b_batch);
            assert_eq!(d.num_rows(), a.len() - b.len());
        } else {
            let d = mvmqo_relalg::tuple::bag_minus(&a, &b);
            assert_eq!(d.len(), a.len() - b.len());
        }
    });

    // Dictionary-encoding axis: the same serial columnar kernels timed on
    // dict-encoded vs decoded plain-string inputs (string join key /
    // string group-by key) — the speedup the encoding buys on one thread.
    let (dict_join_ms, plain_join_ms) = median_pair_ms(micro_reps, |dict| {
        if dict {
            columnar_join_str(&dim_dict, &fact_dict, 2, 3);
        } else {
            columnar_join_str(&dim_plain, &fact_plain, 2, 3);
        }
    });
    let (dict_agg_ms, plain_agg_ms) = median_pair_ms(micro_reps, |dict| {
        if dict {
            columnar_agg_str(&fact_dict, 2, 1);
        } else {
            columnar_agg_str(&fact_plain, 2, 1);
        }
    });
    // End-to-end engine runs of the string-keyed plans (dict-encoded
    // storage) against their row-at-a-time baselines.
    let (join_str_batch, join_str_rows) = median_pair_ms(micro_reps, |batch| {
        if batch {
            run_join_str(&mut fixture);
        } else {
            rows_join_str(&fixture);
        }
    });
    let (agg_str_batch, agg_str_rows) = median_pair_ms(micro_reps, |batch| {
        if batch {
            run_agg_str(&mut fixture);
        } else {
            rows_agg_str(&fixture);
        }
    });

    let mut serial = EpochFixture::new(sf, false);
    serial.step(5.0); // setup epoch, untimed
    let epoch_serial = median_ms(3, || {
        serial.step(5.0);
    });
    let mut parallel = EpochFixture::new(sf, true);
    parallel.step(5.0);
    let epoch_parallel = median_ms(3, || {
        parallel.step(5.0);
    });
    // Threads axis: full epochs with the parallel scheduler's worker
    // budget pinned at 1, 2, and 4 (forced on, so the morsel code path is
    // measured even when the host has one hardware thread — the recorded
    // numbers are only meaningful relative to `hardware_threads`).
    let mut epoch_threads: Vec<(usize, f64)> = Vec::new();
    if !test_mode {
        for t in [1usize, 2, 4] {
            let mut fx = EpochFixture::with_threads(sf, true, t);
            fx.step(5.0);
            let ms = median_ms(3, || {
                fx.step(5.0);
            });
            epoch_threads.push((t, ms));
        }
    }

    println!(
        "hash join    : batch {join_batch:.1} ms vs rows {join_rows:.1} ms ({:.2}x)",
        join_rows / join_batch
    );
    println!(
        "aggregation  : batch {agg_batch:.1} ms vs rows {agg_rows:.1} ms ({:.2}x)",
        agg_rows / agg_batch
    );
    println!("bag_minus    : batch {batch_minus_ms:.1} ms vs rows {bag_ms:.1} ms (100k tuples)");
    println!(
        "str join     : dict {dict_join_ms:.1} ms vs plain {plain_join_ms:.1} ms ({:.2}x); \
         engine {join_str_batch:.1} ms vs rows {join_str_rows:.1} ms",
        plain_join_ms / dict_join_ms
    );
    println!(
        "str group-by : dict {dict_agg_ms:.1} ms vs plain {plain_agg_ms:.1} ms ({:.2}x); \
         engine {agg_str_batch:.1} ms vs rows {agg_str_rows:.1} ms",
        plain_agg_ms / dict_agg_ms
    );
    for (t, ms) in &epoch_threads {
        println!("epoch sf{sf}  : {t} thread(s) {ms:.0} ms (forced parallel scheduler)");
    }
    println!(
        "epoch sf{sf}  : serial {epoch_serial:.0} ms, parallel {epoch_parallel:.0} ms \
         ({:.2}x vs pre-PR {PRE_PR_EPOCH_SF01_MS:.0} ms, {:.2}x vs pre-vectorization \
         {PRE_VEC_EPOCH_SF01_MS:.0} ms)",
        PRE_PR_EPOCH_SF01_MS / epoch_serial,
        PRE_VEC_EPOCH_SF01_MS / epoch_serial
    );

    if test_mode {
        // CI regression guard: fail when the medians regress beyond the
        // checked-in thresholds × tolerance. The smoke job must not
        // overwrite the recorded trajectory, so return before the write.
        let tol = threshold("tolerance_factor");
        let join_limit = threshold("hash_join_batch_ms") * tol;
        let epoch_limit = threshold("epoch_sf001_serial_ms") * tol;
        assert!(
            join_batch <= join_limit,
            "hash join regressed: {join_batch:.1} ms > {join_limit:.1} ms \
             (threshold × tolerance, see crates/bench/exec_thresholds.json)"
        );
        assert!(
            epoch_serial <= epoch_limit,
            "maintenance epoch regressed: {epoch_serial:.1} ms > {epoch_limit:.1} ms \
             (threshold × tolerance, see crates/bench/exec_thresholds.json)"
        );
        println!(
            "perf guard: hash join {join_batch:.1} <= {join_limit:.1} ms, \
             epoch {epoch_serial:.1} <= {epoch_limit:.1} ms — ok"
        );
        return;
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads_json = epoch_threads
        .iter()
        .map(|(t, ms)| format!("\"{t}\": {ms:.2}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"generated_by\": \"figures exec-bench\",\n  \"units\": \"milliseconds, median\",\n  \"hardware_threads\": {threads},\n  \"hash_join\": {{\n    \"rows_baseline_ms\": {join_rows:.2},\n    \"batch_ms\": {join_batch:.2},\n    \"speedup_vs_rows\": {:.2},\n    \"pre_pr_ms\": {PRE_PR_HASH_JOIN_MS},\n    \"speedup_vs_pre_pr\": {:.2},\n    \"pre_vectorization_ms\": {PRE_VEC_HASH_JOIN_MS},\n    \"fixture_note\": \"fact table gained a fourth (string) column for the dict benches; pre_pr_ms measured the narrower 3-column fixture\"\n  }},\n  \"aggregation\": {{\n    \"rows_baseline_ms\": {agg_rows:.2},\n    \"batch_ms\": {agg_batch:.2},\n    \"speedup_vs_rows\": {:.2},\n    \"pre_pr_ms\": {PRE_PR_AGGREGATION_MS},\n    \"speedup_vs_pre_pr\": {:.2},\n    \"pre_vectorization_ms\": {PRE_VEC_AGGREGATION_MS}\n  }},\n  \"bag_minus_100k\": {{\n    \"rows_ms\": {bag_ms:.2},\n    \"batch_minus_ms\": {batch_minus_ms:.2},\n    \"pre_pr_ms\": {PRE_PR_BAG_MINUS_MS}\n  }},\n  \"string_join\": {{\n    \"plain_ms\": {plain_join_ms:.2},\n    \"dict_ms\": {dict_join_ms:.2},\n    \"dict_speedup\": {:.2},\n    \"engine_ms\": {join_str_batch:.2},\n    \"rows_baseline_ms\": {join_str_rows:.2}\n  }},\n  \"string_aggregation\": {{\n    \"plain_ms\": {plain_agg_ms:.2},\n    \"dict_ms\": {dict_agg_ms:.2},\n    \"dict_speedup\": {:.2},\n    \"engine_ms\": {agg_str_batch:.2},\n    \"rows_baseline_ms\": {agg_str_rows:.2}\n  }},\n  \"epoch\": {{\n    \"sf\": {sf},\n    \"update_percent\": 5.0,\n    \"workload\": \"five_join_views\",\n    \"serial_ms\": {epoch_serial:.2},\n    \"parallel_ms\": {epoch_parallel:.2},\n    \"forced_parallel_threads_ms\": {{ {threads_json} }},\n    \"pre_pr_ms\": {PRE_PR_EPOCH_SF01_MS},\n    \"speedup_vs_pre_pr\": {:.2},\n    \"pre_vectorization_ms\": {PRE_VEC_EPOCH_SF01_MS}\n  }}\n}}\n",
        join_rows / join_batch,
        PRE_PR_HASH_JOIN_MS / join_batch,
        agg_rows / agg_batch,
        PRE_PR_AGGREGATION_MS / agg_batch,
        plain_join_ms / dict_join_ms,
        plain_agg_ms / dict_agg_ms,
        PRE_PR_EPOCH_SF01_MS / epoch_serial,
    );
    match std::fs::write("BENCH_exec.json", &json) {
        Ok(()) => println!("wrote BENCH_exec.json"),
        Err(e) => eprintln!("cannot write BENCH_exec.json: {e}"),
    }
}
