//! Optimization-time benchmark: cold rebuild vs the re-entrant session.
//!
//! The paper reports optimization time once, for ten views (§7.2, 31 s on
//! an UltraSparc 10), and notes it becomes the bottleneck as view sets
//! grow. This harness measures that axis directly on the `many_views`
//! scaling workload: for each view-set size it times
//!
//! * a **cold** plan (fresh DAG + properties + memo + every benefit),
//! * an **incremental add** — one view added to an already-planned
//!   session of the same size, then replanned warm,
//! * an **incremental restat** — the same session replanned after a
//!   delta-drift statistics change (same 2n numbering, shifted batch
//!   sizes),
//!
//! and cross-checks plan quality: the warm plan's total maintenance cost
//! must match the cold plan of the identical problem (divergence is
//! reported per point in `BENCH_opt.json`).

use mvmqo_core::cost::CostModel;
use mvmqo_core::opt::GreedyOptions;
use mvmqo_core::session::{Optimizer, PlanMode};
use mvmqo_core::update::UpdateModel;
use mvmqo_relalg::catalog::{Catalog, TableId};
use mvmqo_relalg::logical::ViewDef;
use mvmqo_relalg::schema::AttrId;
use mvmqo_tpcd::{many_views, tpcd_catalog};
use std::time::Instant;

/// Update percentage of the base problem.
const BASE_PCT: f64 = 5.0;
/// Update percentage of the burst tables after the simulated delta drift.
/// The drift is *localized* — a batch burst lands on the part/partsupp
/// dimension while the other relations keep their observed rates — which
/// is the shape a warehouse `DeltaDrift` trigger produces (ingested
/// batches name specific relations). The incremental optimizer exploits
/// that locality; a cold rebuild cannot.
const DRIFT_PCT: f64 = 15.0;

/// One view-set size's measurements (milliseconds, medians).
#[derive(Debug, Clone)]
pub struct OptBenchPoint {
    pub n_views: usize,
    pub dag_eq_nodes: usize,
    pub dag_op_nodes: usize,
    pub cold_ms: f64,
    /// Add one view to an n-view session and replan warm, vs cold-planning
    /// the (n+1)-view problem.
    pub add_incremental_ms: f64,
    pub add_cold_ms: f64,
    pub add_cost_divergence: f64,
    /// Delta-drift restat replanned warm, vs cold-planning at the drifted
    /// statistics.
    pub restat_incremental_ms: f64,
    pub restat_cold_ms: f64,
    pub restat_cost_divergence: f64,
}

impl OptBenchPoint {
    pub fn add_speedup(&self) -> f64 {
        self.add_cold_ms / self.add_incremental_ms.max(1e-6)
    }

    pub fn restat_speedup(&self) -> f64 {
        self.restat_cold_ms / self.restat_incremental_ms.max(1e-6)
    }
}

fn pk_indices(catalog: &Catalog, views: &[ViewDef]) -> Vec<(TableId, AttrId)> {
    mvmqo_core::api::pk_indices_for(catalog, views)
}

fn update_model(catalog: &Catalog, views: &[ViewDef], pct: f64) -> UpdateModel {
    let mut tables: Vec<TableId> = views.iter().flat_map(|v| v.expr.base_tables()).collect();
    tables.sort_unstable();
    tables.dedup();
    UpdateModel::percentage(tables, pct, |t| catalog.table(t).stats.rows)
}

/// The base model with a batch burst on the part/partsupp dimension.
fn drifted_model(catalog: &Catalog, views: &[ViewDef]) -> UpdateModel {
    let mut tables: Vec<TableId> = views.iter().flat_map(|v| v.expr.base_tables()).collect();
    tables.sort_unstable();
    tables.dedup();
    let burst: Vec<TableId> = ["part", "partsupp"]
        .iter()
        .filter_map(|n| catalog.table_by_name(n).map(|d| d.id))
        .collect();
    UpdateModel::new(tables.into_iter().map(|t| {
        let pct = if burst.contains(&t) {
            DRIFT_PCT
        } else {
            BASE_PCT
        };
        let rows = catalog.table(t).stats.rows;
        (
            t,
            (rows * pct / 100.0).round(),
            (rows * pct / 200.0).round(),
        )
    }))
}

/// Open a session over `views` and cold-plan it (`drifted` selects the
/// burst update model); returns (session, catalog, elapsed ms, total cost,
/// dag sizes).
fn cold_session(views: &[ViewDef], drifted: bool) -> (Optimizer, Catalog, f64, f64, usize, usize) {
    let mut catalog = tpcd_catalog(0.1).catalog;
    let start = Instant::now();
    let mut s = Optimizer::new(CostModel::default(), GreedyOptions::default());
    s.set_initial_indices(pk_indices(&catalog, views));
    let model = if drifted {
        drifted_model(&catalog, views)
    } else {
        update_model(&catalog, views, BASE_PCT)
    };
    s.set_update_model(model);
    for v in views {
        s.add_view(&mut catalog, v);
    }
    let outcome = s.plan(&mut catalog);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(outcome.mode, PlanMode::Cold);
    let (eqs, ops) = (outcome.report.dag_eq_nodes, outcome.report.dag_op_nodes);
    (s, catalog, ms, outcome.report.total_cost, eqs, ops)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// How much *worse* than the cold plan the incremental plan is. Warm
/// starts regularly land in a *better* local optimum than cold greedy
/// (the prior selection survives jointly where myopic re-selection would
/// not); an improvement is not a quality defect, so it clamps to zero.
fn divergence(incremental: f64, cold: f64) -> f64 {
    ((incremental - cold) / cold.abs().max(1e-12)).max(0.0)
}

/// Measure one view-set size with `reps` repetitions (median taken).
pub fn run_point(n: usize, reps: usize) -> OptBenchPoint {
    let t = tpcd_catalog(0.1);
    let views = many_views(&t, n + 1);
    let (base, extra) = (&views[..n], &views[n]);

    let mut cold_ms = Vec::new();
    let mut add_incr_ms = Vec::new();
    let mut add_cold_ms = Vec::new();
    let mut restat_incr_ms = Vec::new();
    let mut restat_cold_ms = Vec::new();
    let mut add_div: f64 = 0.0;
    let mut restat_div: f64 = 0.0;
    let mut eqs = 0;
    let mut ops = 0;

    for _ in 0..reps.max(1) {
        // Cold baseline at size n.
        let (mut session, mut catalog, base_ms, _, e, o) = cold_session(base, false);
        cold_ms.push(base_ms);
        (eqs, ops) = (e, o);

        // Scenario A: add one view, replan warm.
        let start = Instant::now();
        session.add_view(&mut catalog, extra);
        session.set_initial_indices(pk_indices(&catalog, &views[..n + 1]));
        session.set_update_model(update_model(&catalog, &views[..n + 1], BASE_PCT));
        let warm_add = session.plan(&mut catalog);
        add_incr_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(warm_add.mode, PlanMode::Incremental);

        let (_, _, cold_add, cold_add_cost, _, _) = cold_session(&views[..n + 1], false);
        add_cold_ms.push(cold_add);
        // Worst rep counts: the record must not understate a quality
        // regression that only some repetitions hit.
        add_div = add_div.max(divergence(warm_add.report.total_cost, cold_add_cost));

        // Scenario B: localized delta-drift restat on a fresh n-view
        // session (batch burst on part/partsupp, other rates unchanged).
        let (mut session, mut catalog, _, _, _, _) = cold_session(base, false);
        let start = Instant::now();
        session.set_update_model(drifted_model(&catalog, base));
        let warm_restat = session.plan(&mut catalog);
        restat_incr_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(warm_restat.mode, PlanMode::Incremental);

        let (_, _, cold_restat, cold_restat_cost, _, _) = cold_session(base, true);
        restat_cold_ms.push(cold_restat);
        restat_div = restat_div.max(divergence(warm_restat.report.total_cost, cold_restat_cost));
    }

    OptBenchPoint {
        n_views: n,
        dag_eq_nodes: eqs,
        dag_op_nodes: ops,
        cold_ms: median(cold_ms),
        add_incremental_ms: median(add_incr_ms),
        add_cold_ms: median(add_cold_ms),
        add_cost_divergence: add_div,
        restat_incremental_ms: median(restat_incr_ms),
        restat_cold_ms: median(restat_cold_ms),
        restat_cost_divergence: restat_div,
    }
}

/// Run the full sweep and write `BENCH_opt.json`. `test_mode` shrinks the
/// sizes for the CI smoke job and asserts the incremental path is no
/// slower than the cold rebuild (plus plan-quality agreement), so an
/// optimization-time regression fails the build.
pub fn run(test_mode: bool) -> Vec<OptBenchPoint> {
    let sizes: &[usize] = if test_mode {
        &[6, 12]
    } else {
        &[10, 25, 50, 100]
    };
    let reps = if test_mode { 1 } else { 3 };
    println!("== Optimization time: cold rebuild vs re-entrant session");
    println!(
        "{:>6} {:>8} {:>8} | {:>9} {:>9} {:>7} {:>8} | {:>9} {:>9} {:>7} {:>8}",
        "views",
        "eq",
        "cold ms",
        "add-cold",
        "add-incr",
        "speedup",
        "cost-div",
        "rst-cold",
        "rst-incr",
        "speedup",
        "cost-div"
    );
    let mut points = Vec::new();
    for &n in sizes {
        let p = run_point(n, reps);
        println!(
            "{:>6} {:>8} {:>8.1} | {:>9.1} {:>9.1} {:>6.1}x {:>7.2}% | {:>9.1} {:>9.1} {:>6.1}x {:>7.2}%",
            p.n_views,
            p.dag_eq_nodes,
            p.cold_ms,
            p.add_cold_ms,
            p.add_incremental_ms,
            p.add_speedup(),
            p.add_cost_divergence * 100.0,
            p.restat_cold_ms,
            p.restat_incremental_ms,
            p.restat_speedup(),
            p.restat_cost_divergence * 100.0,
        );
        if test_mode {
            assert!(
                p.add_speedup() >= 1.0,
                "incremental add-view replan slower than cold rebuild \
                 ({:.1} ms vs {:.1} ms at {} views)",
                p.add_incremental_ms,
                p.add_cold_ms,
                p.n_views
            );
            assert!(
                p.restat_speedup() >= 1.0,
                "incremental restat replan slower than cold rebuild \
                 ({:.1} ms vs {:.1} ms at {} views)",
                p.restat_incremental_ms,
                p.restat_cold_ms,
                p.n_views
            );
            assert!(
                p.add_cost_divergence <= 0.01 && p.restat_cost_divergence <= 0.01,
                "incremental plan quality diverged beyond 1% at {} views \
                 (add {:.3}%, restat {:.3}%)",
                p.n_views,
                p.add_cost_divergence * 100.0,
                p.restat_cost_divergence * 100.0
            );
        }
        points.push(p);
    }
    write_json(&points, test_mode);
    points
}

fn write_json(points: &[OptBenchPoint], test_mode: bool) {
    if test_mode {
        return; // the smoke job must not overwrite the recorded trajectory
    }
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\n      \"views\": {},\n      \"dag_eq_nodes\": {},\n      \
             \"dag_op_nodes\": {},\n      \"cold_plan_ms\": {:.2},\n      \
             \"add_view\": {{\n        \"cold_ms\": {:.2},\n        \
             \"incremental_ms\": {:.2},\n        \"speedup\": {:.2},\n        \
             \"cost_divergence\": {:.5}\n      }},\n      \
             \"delta_drift_restat\": {{\n        \"cold_ms\": {:.2},\n        \
             \"incremental_ms\": {:.2},\n        \"speedup\": {:.2},\n        \
             \"cost_divergence\": {:.5}\n      }}\n    }}",
            p.n_views,
            p.dag_eq_nodes,
            p.dag_op_nodes,
            p.cold_ms,
            p.add_cold_ms,
            p.add_incremental_ms,
            p.add_speedup(),
            p.add_cost_divergence,
            p.restat_cold_ms,
            p.restat_incremental_ms,
            p.restat_speedup(),
            p.restat_cost_divergence,
        ));
    }
    let json = format!(
        "{{\n  \"generated_by\": \"figures opt-bench\",\n  \"units\": \"milliseconds, median\",\n  \
         \"workload\": \"many_views (tpcd, sf 0.1 statistics)\",\n  \
         \"base_update_percent\": {BASE_PCT},\n  \"drift_update_percent\": {DRIFT_PCT},\n  \
         \"points\": [\n{rows}\n  ]\n}}\n"
    );
    match std::fs::write("BENCH_opt.json", &json) {
        Ok(()) => println!("wrote BENCH_opt.json"),
        Err(e) => eprintln!("cannot write BENCH_opt.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore]
    fn dbg_point50() {
        let p = run_point(50, 1);
        println!(
            "{p:#?} add {:.1}x restat {:.1}x",
            p.add_speedup(),
            p.restat_speedup()
        );
    }

    #[test]
    fn tiny_point_runs_and_agrees() {
        let p = run_point(4, 1);
        assert_eq!(p.n_views, 4);
        assert!(p.cold_ms > 0.0);
        assert!(p.add_cost_divergence <= 0.01, "{p:?}");
        assert!(p.restat_cost_divergence <= 0.01, "{p:?}");
    }
}
