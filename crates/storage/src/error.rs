//! Typed storage errors.
//!
//! The storage layer used to panic on bad lookups, which was fine for the
//! one-shot batch pipeline but unacceptable for a long-lived warehouse
//! engine: ingesting a malformed batch must surface an error, not abort the
//! process. All fallible [`crate::database::Database`] entry points return
//! [`StorageError`].

use mvmqo_relalg::catalog::TableId;
use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A base table referenced by id has no stored contents.
    TableNotLoaded(TableId),
    /// A delta tuple's arity does not match the table schema.
    ArityMismatch {
        table: TableId,
        expected: usize,
        got: usize,
    },
    /// A delete batch removes a tuple more times than it will occur
    /// (stored occurrences plus queued inserts). Applying it would
    /// saturate on the base multiset while incremental maintenance
    /// subtracts unconditionally — so it must be rejected up front.
    PhantomDelete { table: TableId },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableNotLoaded(t) => write!(f, "base table {t} not loaded"),
            StorageError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "delta tuple for table {table} has {got} values, schema expects {expected}"
            ),
            StorageError::PhantomDelete { table } => write!(
                f,
                "delete batch for table {table} removes a tuple more times than it occurs"
            ),
        }
    }
}

impl std::error::Error for StorageError {}
