//! Typed storage errors.
//!
//! The storage layer used to panic on bad lookups, which was fine for the
//! one-shot batch pipeline but unacceptable for a long-lived warehouse
//! engine: ingesting a malformed batch must surface an error, not abort the
//! process. All fallible [`crate::database::Database`] entry points return
//! [`StorageError`].

use mvmqo_relalg::catalog::TableId;
use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A base table referenced by id has no stored contents.
    TableNotLoaded(TableId),
    /// A delta tuple's arity does not match the table schema.
    ArityMismatch {
        table: TableId,
        expected: usize,
        got: usize,
    },
    /// A delete batch removes a tuple more times than it will occur
    /// (stored occurrences plus queued inserts). Applying it would
    /// saturate on the base multiset while incremental maintenance
    /// subtracts unconditionally — so it must be rejected up front.
    PhantomDelete { table: TableId },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableNotLoaded(t) => write!(f, "base table {t} not loaded"),
            StorageError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "delta tuple for table {table} has {got} values, schema expects {expected}"
            ),
            StorageError::PhantomDelete { table } => write!(
                f,
                "delete batch for table {table} removes a tuple more times than it occurs"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

/// Errors raised while loading durable state. A torn WAL tail is *not* an
/// error (prefix recovery handles it, see [`crate::wal::scan_wal`]); these
/// are the failures recovery cannot proceed past — a missing manifest, an
/// unreadable file, or a snapshot whose framing or contents fail
/// verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// Filesystem failure while reading durable state.
    Io(String),
    /// A durable file failed its CRC, magic, or structural checks.
    Corrupt { file: String, why: String },
    /// The durability directory has no manifest — nothing to recover.
    MissingManifest(String),
    /// Snapshot contents are internally inconsistent (e.g. a table
    /// references a catalog entry that does not exist).
    Inconsistent(String),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(why) => write!(f, "recovery I/O error: {why}"),
            RecoveryError::Corrupt { file, why } => {
                write!(f, "durable file {file} is corrupt: {why}")
            }
            RecoveryError::MissingManifest(dir) => {
                write!(f, "no manifest in durability directory {dir}")
            }
            RecoveryError::Inconsistent(why) => {
                write!(f, "snapshot is inconsistent: {why}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}
