//! Block and buffer accounting.
//!
//! The paper's cost model counts seeks, blocks read, blocks written, and CPU
//! time (§7.1), with a 4 KB block and an 8000-block buffer by default (and a
//! 1000-block variant for the buffer-size experiment). This module is the
//! single source of truth for translating row counts and widths into block
//! counts, shared by the optimizer's cost model and the executor's simulated
//! I/O meter.
//!
//! The accounting is deliberately **layout-agnostic**: `n` tuples of width
//! `w` occupy `⌈n·w/block⌉` blocks whether the bytes are stored row-major
//! or — as the batch-native [`crate::table::StoredTable`] actually keeps
//! them — column-major. §7.1 works from catalog-level row widths, not
//! physical payloads, so the columnar storage layout changes constant
//! factors the model never captured (cache behaviour, conversion costs)
//! while every modelled quantity (block counts, buffer-fit switch points)
//! is identical under both layouts. That is what keeps the optimizer's
//! estimates and the executor's simulated I/O meter comparable after the
//! columnar refactor without touching a single cost formula.

/// Block/buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockConfig {
    /// Bytes per block; the paper uses 4 KB.
    pub block_bytes: usize,
    /// Blocks available to operators; the paper uses 8000 (and 1000 for the
    /// small-buffer experiment).
    pub buffer_blocks: usize,
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig {
            block_bytes: 4096,
            buffer_blocks: 8000,
        }
    }
}

impl BlockConfig {
    /// The paper's small-buffer configuration (§7.2 "Effect of Buffer Size").
    pub fn small_buffer() -> Self {
        BlockConfig {
            buffer_blocks: 1000,
            ..Default::default()
        }
    }

    /// Tuples of `row_width` bytes that fit in one block (at least 1 so
    /// pathological widths still make progress).
    pub fn tuples_per_block(&self, row_width: usize) -> usize {
        (self.block_bytes / row_width.max(1)).max(1)
    }

    /// Estimated blocks occupied by `rows` tuples of `row_width` bytes
    /// (fractional row counts come from cardinality estimates).
    pub fn blocks_for(&self, rows: f64, row_width: usize) -> f64 {
        if rows <= 0.0 {
            return 0.0;
        }
        (rows / self.tuples_per_block(row_width) as f64)
            .ceil()
            .max(1.0)
    }

    /// Exact block count for a concrete stored row count.
    pub fn blocks_for_exact(&self, rows: usize, row_width: usize) -> usize {
        if rows == 0 {
            return 0;
        }
        rows.div_ceil(self.tuples_per_block(row_width))
    }

    /// Whether a result of the given size fits in the buffer — the switch
    /// point at which hash-based operators go out-of-core (the source of the
    /// cost "jump" the paper observes in Figure 4).
    pub fn fits_in_buffer(&self, rows: f64, row_width: usize) -> bool {
        self.blocks_for(rows, row_width) <= self.buffer_blocks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = BlockConfig::default();
        assert_eq!(c.block_bytes, 4096);
        assert_eq!(c.buffer_blocks, 8000);
        assert_eq!(BlockConfig::small_buffer().buffer_blocks, 1000);
    }

    #[test]
    fn tuples_per_block_floors() {
        let c = BlockConfig::default();
        assert_eq!(c.tuples_per_block(100), 40);
        assert_eq!(c.tuples_per_block(5000), 1); // jumbo rows still stored
    }

    #[test]
    fn blocks_for_rounds_up_and_saturates_at_zero() {
        let c = BlockConfig::default();
        assert_eq!(c.blocks_for(0.0, 100), 0.0);
        assert_eq!(c.blocks_for(1.0, 100), 1.0);
        assert_eq!(c.blocks_for(41.0, 100), 2.0);
        assert_eq!(c.blocks_for_exact(81, 100), 3);
    }

    #[test]
    fn buffer_fit_boundary() {
        let c = BlockConfig {
            block_bytes: 4096,
            buffer_blocks: 10,
        };
        // 40 tuples/block at width 100 → 400 tuples fill the buffer.
        assert!(c.fits_in_buffer(400.0, 100));
        assert!(!c.fits_in_buffer(401.0, 100));
    }
}
