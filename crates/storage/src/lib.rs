//! # mvmqo-storage
//!
//! In-memory storage substrate for the `mvmqo` reproduction of *Materialized
//! View Selection and Maintenance Using Multi-Query Optimization* (SIGMOD
//! 2001):
//!
//! * [`blocks`] — block/buffer accounting shared by the cost model and the
//!   executor's simulated I/O meter (4 KB blocks, 8000-block buffer as in
//!   §7.1 of the paper),
//! * [`table`] — stored multiset relations with secondary indices,
//! * [`delta`] — δ⁺/δ⁻ delta relations and per-refresh delta sets (§3),
//! * [`index`] — hash and B-tree secondary indices (§4.3 physical
//!   properties),
//! * [`database`] — the runtime database: base tables + materialized
//!   results + delta application,
//! * [`error`] — typed errors for bad lookups and malformed batches, so
//!   long-lived engines never abort on bad input,
//! * [`crc`], [`wal`], [`snapshot`], [`failpoint`] — the durability layer:
//!   CRC-framed write-ahead logging of delta batches, atomic columnar
//!   snapshots with a recovery manifest, and deterministic fault injection
//!   for crash-recovery tests,
//! * [`faults`] — live fault injection: an ordinal-addressed registry of
//!   named sites threaded through the executor and the warehouse, firing
//!   armed faults as typed errors or panics for the chaos tests.

pub mod blocks;
pub mod crc;
pub mod database;
pub mod delta;
pub mod error;
pub mod failpoint;
pub mod faults;
pub mod index;
pub mod snapshot;
pub mod table;
pub mod wal;

pub use blocks::BlockConfig;
pub use database::Database;
pub use delta::{DeltaBatch, DeltaKind, DeltaSet};
pub use error::{RecoveryError, StorageError};
pub use failpoint::FailpointFile;
pub use faults::{FaultError, FaultMode, FaultPlan, FaultRegistry, FaultTrigger, FiredFault};
pub use index::{Index, IndexKind};
pub use snapshot::Manifest;
pub use table::StoredTable;
pub use wal::{scan_wal, scan_wal_bytes, WalRecord, WalScan, WalStop, WalWriter};
