//! # mvmqo-storage
//!
//! In-memory storage substrate for the `mvmqo` reproduction of *Materialized
//! View Selection and Maintenance Using Multi-Query Optimization* (SIGMOD
//! 2001):
//!
//! * [`blocks`] — block/buffer accounting shared by the cost model and the
//!   executor's simulated I/O meter (4 KB blocks, 8000-block buffer as in
//!   §7.1 of the paper),
//! * [`table`] — stored multiset relations with secondary indices,
//! * [`delta`] — δ⁺/δ⁻ delta relations and per-refresh delta sets (§3),
//! * [`index`] — hash and B-tree secondary indices (§4.3 physical
//!   properties),
//! * [`database`] — the runtime database: base tables + materialized
//!   results + delta application,
//! * [`error`] — typed errors for bad lookups and malformed batches, so
//!   long-lived engines never abort on bad input.

pub mod blocks;
pub mod database;
pub mod delta;
pub mod error;
pub mod index;
pub mod table;

pub use blocks::BlockConfig;
pub use database::Database;
pub use delta::{DeltaBatch, DeltaKind, DeltaSet};
pub use error::StorageError;
pub use index::{Index, IndexKind};
pub use table::StoredTable;
