//! Delta relations: the δ⁺/δ⁻ inputs to view maintenance.
//!
//! §3 of the paper: "for each relation r, there are two relations δ⁺r and
//! δ⁻r denoting, respectively, the (multiset of) tuples inserted into and
//! deleted from the relation r". A [`DeltaBatch`] is that pair for one
//! relation; a [`DeltaSet`] collects the batches of one refresh cycle.

use mvmqo_relalg::catalog::TableId;
use mvmqo_relalg::tuple::Tuple;
use std::collections::BTreeMap;
use std::fmt;

/// Which side of the delta pair a plan reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeltaKind {
    /// δ⁺ — inserted tuples.
    Insert,
    /// δ⁻ — deleted tuples.
    Delete,
}

impl fmt::Display for DeltaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaKind::Insert => f.write_str("δ+"),
            DeltaKind::Delete => f.write_str("δ-"),
        }
    }
}

/// The pending inserts and deletes for one relation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch {
    pub inserts: Vec<Tuple>,
    pub deletes: Vec<Tuple>,
}

impl DeltaBatch {
    pub fn new(inserts: Vec<Tuple>, deletes: Vec<Tuple>) -> Self {
        DeltaBatch { inserts, deletes }
    }

    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// The tuples of one side.
    pub fn side(&self, kind: DeltaKind) -> &[Tuple] {
        match kind {
            DeltaKind::Insert => &self.inserts,
            DeltaKind::Delete => &self.deletes,
        }
    }
}

/// All deltas of one refresh cycle, keyed by relation.
///
/// Uses a `BTreeMap` so iteration order (and therefore update numbering,
/// §5.2) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaSet {
    batches: BTreeMap<TableId, DeltaBatch>,
}

impl DeltaSet {
    pub fn new() -> Self {
        DeltaSet::default()
    }

    pub fn insert(&mut self, table: TableId, batch: DeltaBatch) {
        if !batch.is_empty() {
            self.batches.insert(table, batch);
        }
    }

    pub fn get(&self, table: TableId) -> Option<&DeltaBatch> {
        self.batches.get(&table)
    }

    /// The delta tuples of one (relation, side) pair; empty if none.
    pub fn side(&self, table: TableId, kind: DeltaKind) -> &[Tuple] {
        self.batches
            .get(&table)
            .map(|b| b.side(kind))
            .unwrap_or(&[])
    }

    /// Relations with pending updates, in deterministic order.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.batches.keys().copied()
    }

    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Total tuples across all batches (both sides).
    pub fn total_tuples(&self) -> usize {
        self.batches
            .values()
            .map(|b| b.inserts.len() + b.deletes.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::types::Value;

    fn t(v: i64) -> Tuple {
        vec![Value::Int(v)]
    }

    #[test]
    fn empty_batches_are_dropped() {
        let mut ds = DeltaSet::new();
        ds.insert(TableId(0), DeltaBatch::default());
        assert!(ds.is_empty());
        ds.insert(TableId(1), DeltaBatch::new(vec![t(1)], vec![]));
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn side_returns_empty_for_missing_table() {
        let ds = DeltaSet::new();
        assert!(ds.side(TableId(7), DeltaKind::Insert).is_empty());
    }

    #[test]
    fn tables_iterate_in_id_order() {
        let mut ds = DeltaSet::new();
        ds.insert(TableId(3), DeltaBatch::new(vec![t(1)], vec![]));
        ds.insert(TableId(1), DeltaBatch::new(vec![t(2)], vec![]));
        let order: Vec<TableId> = ds.tables().collect();
        assert_eq!(order, vec![TableId(1), TableId(3)]);
    }

    #[test]
    fn total_tuples_counts_both_sides() {
        let mut ds = DeltaSet::new();
        ds.insert(TableId(0), DeltaBatch::new(vec![t(1), t(2)], vec![t(3)]));
        assert_eq!(ds.total_tuples(), 3);
    }

    #[test]
    fn batch_side_selection() {
        let b = DeltaBatch::new(vec![t(1)], vec![t(2), t(3)]);
        assert_eq!(b.side(DeltaKind::Insert).len(), 1);
        assert_eq!(b.side(DeltaKind::Delete).len(), 2);
    }
}
