//! Atomic snapshot files and the recovery manifest.
//!
//! A snapshot is a single CRC-framed file written atomically (temp file +
//! fsync + rename), so a crash during `save` leaves either the previous
//! snapshot or the new one — never a half-written image. The manifest is a
//! second tiny framed file naming the current snapshot, its epoch, and the
//! WAL segment whose tail must be replayed on top of it; writing the
//! manifest is the commit point of a snapshot.
//!
//! ```text
//! dir/
//! ├── MANIFEST            ← commit point: snapshot epoch + WAL truncation
//! ├── snapshot-<seq>.img  ← full engine image at one epoch
//! └── wal-<seq>.log       ← delta records since that snapshot
//! ```
//!
//! File framing (both snapshot and manifest):
//!
//! ```text
//! ┌──────────┬──────────┬───────────────┬──────────────┐
//! │ magic ×8 │ len: u32 │ crc32(body)   │ body (len B) │
//! └──────────┴──────────┴───────────────┴──────────────┘
//! ```

use crate::crc::crc32;
use crate::error::RecoveryError;
use crate::index::IndexKind;
use crate::table::StoredTable;
use mvmqo_relalg::codec::{self, CodecError, Dec, Enc};
use mvmqo_relalg::schema::AttrId;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic prefix of snapshot image files.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"MVMQOSN1";
/// Magic prefix of the manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"MVMQOMF1";
/// Manifest file name inside a durability directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Write `body` to `path` atomically: `<path>.tmp` + fsync + rename. The
/// temp file is removed on any failure, so an aborted save leaks nothing.
pub fn write_framed_atomic(path: &Path, magic: &[u8; 8], body: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_path(path);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(magic)?;
        f.write_all(&(body.len() as u32).to_le_bytes())?;
        f.write_all(&crc32(body).to_le_bytes())?;
        f.write_all(body)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Read and verify a framed file, returning its body.
pub fn read_framed(path: &Path, magic: &[u8; 8]) -> Result<Vec<u8>, RecoveryError> {
    let bytes = std::fs::read(path)
        .map_err(|e| RecoveryError::Io(format!("reading {}: {e}", path.display())))?;
    let corrupt = |why: &str| RecoveryError::Corrupt {
        file: path.display().to_string(),
        why: why.to_string(),
    };
    if bytes.len() < 16 {
        return Err(corrupt("shorter than the file header"));
    }
    if &bytes[..8] != magic {
        return Err(corrupt("bad magic"));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if bytes.len() - 16 < len {
        return Err(corrupt("truncated body"));
    }
    let body = &bytes[16..16 + len];
    if crc32(body) != crc {
        return Err(corrupt("body CRC mismatch"));
    }
    Ok(body.to_vec())
}

/// Names the current snapshot and the WAL segment to replay on top of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Epoch captured by the snapshot (0 = empty engine).
    pub snapshot_epoch: u64,
    /// Snapshot image file name (relative to the durability directory),
    /// empty when no snapshot exists yet (WAL-only durability).
    pub snapshot_file: String,
    /// WAL segment holding records after the snapshot.
    pub wal_file: String,
    /// Monotonic segment sequence number (the WAL truncation point:
    /// segments below this were folded into the snapshot and deleted).
    pub wal_seq: u64,
}

impl Manifest {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.snapshot_epoch);
        e.str(&self.snapshot_file);
        e.str(&self.wal_file);
        e.u64(self.wal_seq);
        e.into_bytes()
    }

    pub fn decode(body: &[u8]) -> Result<Manifest, CodecError> {
        let mut d = Dec::new(body);
        Ok(Manifest {
            snapshot_epoch: d.u64()?,
            snapshot_file: d.str()?,
            wal_file: d.str()?,
            wal_seq: d.u64()?,
        })
    }

    /// Atomically publish this manifest in `dir` (the snapshot commit point).
    pub fn store(&self, dir: &Path) -> std::io::Result<()> {
        write_framed_atomic(&dir.join(MANIFEST_NAME), MANIFEST_MAGIC, &self.encode())
    }

    /// Load the manifest from `dir`.
    pub fn load(dir: &Path) -> Result<Manifest, RecoveryError> {
        let path = dir.join(MANIFEST_NAME);
        if !path.exists() {
            return Err(RecoveryError::MissingManifest(dir.display().to_string()));
        }
        let body = read_framed(&path, MANIFEST_MAGIC)?;
        Manifest::decode(&body).map_err(|e| RecoveryError::Corrupt {
            file: path.display().to_string(),
            why: e.to_string(),
        })
    }
}

/// Encode a stored table: its dense columnar image plus the `(attr, kind)`
/// spec of every secondary index (indices rebuild from the columns on
/// decode — they are derived state and never serialized).
pub fn encode_stored_table(e: &mut Enc, t: &StoredTable) {
    codec::encode_batch(e, t.batch());
    let mut specs: Vec<(AttrId, IndexKind)> = t
        .indexed_attrs()
        .map(|a| (a, t.index_on(a).expect("indexed attr has index").kind))
        .collect();
    specs.sort_by_key(|(a, _)| *a);
    e.u32(specs.len() as u32);
    for (attr, kind) in specs {
        e.u32(attr.0);
        e.u8(match kind {
            IndexKind::Hash => 0,
            IndexKind::BTree => 1,
        });
    }
}

/// Decode a stored table and rebuild its indices.
pub fn decode_stored_table(d: &mut Dec) -> Result<StoredTable, CodecError> {
    let batch = codec::decode_batch(d)?;
    let mut table = StoredTable::from_batch(batch);
    let n = d.u32()? as usize;
    for _ in 0..n {
        let attr = AttrId(d.u32()?);
        let kind = match d.u8()? {
            0 => IndexKind::Hash,
            1 => IndexKind::BTree,
            k => return Err(CodecError::Invalid(format!("index kind {k}"))),
        };
        table.create_index(attr, kind);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::batch::Batch;
    use mvmqo_relalg::schema::{Attribute, Schema};
    use mvmqo_relalg::types::{DataType, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mvmqo-snaptest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_roundtrips_through_disk() {
        let dir = tmpdir("manifest");
        let m = Manifest {
            snapshot_epoch: 7,
            snapshot_file: "snapshot-3.img".into(),
            wal_file: "wal-3.log".into(),
            wal_seq: 3,
        };
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        // No temp file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_manifest_is_a_clean_error() {
        let dir = tmpdir("corrupt");
        let m = Manifest {
            snapshot_epoch: 1,
            snapshot_file: String::new(),
            wal_file: "wal-0.log".into(),
            wal_seq: 0,
        };
        m.store(&dir).unwrap();
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Manifest::load(&dir),
            Err(RecoveryError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_distinguished_from_corrupt() {
        let dir = tmpdir("missing");
        assert!(matches!(
            Manifest::load(&dir),
            Err(RecoveryError::MissingManifest(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stored_table_roundtrips_with_indices() {
        let schema = Schema::new(vec![
            Attribute {
                id: AttrId(0),
                name: "t.k".into(),
                data_type: DataType::Int,
            },
            Attribute {
                id: AttrId(1),
                name: "t.v".into(),
                data_type: DataType::Str,
            },
        ]);
        let rows = vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
            vec![Value::Int(1), Value::str("c")],
        ];
        let mut t = StoredTable::from_batch(Batch::from_rows(schema, &rows));
        t.create_index(AttrId(0), IndexKind::Hash);

        let mut e = Enc::new();
        encode_stored_table(&mut e, &t);
        let bytes = e.into_bytes();
        let got = decode_stored_table(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(got.batch(), t.batch());
        assert_eq!(
            got.probe(AttrId(0), &Value::Int(1)),
            t.probe(AttrId(0), &Value::Int(1))
        );
    }
}
