//! Stored multiset relations.
//!
//! A [`StoredTable`] is an in-memory multiset relation plus any secondary
//! indices built over it. Base relations, permanently materialized views,
//! and temporarily materialized intermediate results are all stored this
//! way — the paper's framework deliberately treats them uniformly (a
//! materialized result is just another relation the optimizer may scan or
//! probe).
//!
//! Storage is **batch-native**: the primary representation is the columnar
//! [`Batch`] the vectorized executor consumes, and deltas mutate the
//! columns *in place* (appends extend the typed vectors; deletes compact
//! them through one gather and remap index positions). The row-major view
//! is derived lazily and only exists for user-facing output and the
//! row-at-a-time reference paths — the maintenance hot path never
//! round-trips through `Vec<Tuple>`.

use crate::blocks::BlockConfig;
use crate::delta::DeltaBatch;
use crate::index::{Index, IndexKind};
use mvmqo_relalg::batch::Batch;
use mvmqo_relalg::schema::{AttrId, Schema};
use mvmqo_relalg::tuple::Tuple;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// An in-memory multiset relation with optional secondary indices.
///
/// Cloning a `StoredTable` is cheap — a handle copy, not a data copy: the
/// columnar image `Arc`-shares its columns, the derived row cache and the
/// indices are `Arc`-shared wholesale, and mutation copy-on-writes only
/// what it touches ([`Arc::make_mut`] on indices, a fresh cell for the row
/// cache). This is what makes staging a whole [`Database`](crate::Database)
/// for a transactional epoch affordable.
#[derive(Debug, Clone)]
pub struct StoredTable {
    schema: Schema,
    /// Primary columnar image (always dense: no selection vector). String
    /// columns are dictionary-encoded on construction, so scans, joins,
    /// and aggregations over them run in `u32` code space; delta appends
    /// intern into the existing dictionaries. Columns are `Arc`-shared
    /// with scans, so handing the image to the executor is O(width);
    /// mutation copy-on-writes only the touched columns.
    batch: Batch,
    /// Lazily derived row-major view for user-facing output and legacy
    /// row consumers; invalidated (replaced with a fresh shared cell, so
    /// clones keep theirs) by every mutation.
    rows: Arc<OnceLock<Vec<Tuple>>>,
    indices: HashMap<AttrId, Arc<Index>>,
}

impl Default for StoredTable {
    fn default() -> Self {
        StoredTable::new(Schema::default())
    }
}

impl StoredTable {
    pub fn new(schema: Schema) -> Self {
        StoredTable {
            // Even the empty image is dict-encoded so the first appended
            // rows intern instead of landing in a plain string vector.
            batch: Batch::empty(schema.clone()).dict_encoded(),
            schema,
            rows: Arc::new(OnceLock::new()),
            indices: HashMap::new(),
        }
    }

    pub fn with_rows(schema: Schema, rows: Vec<Tuple>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        let batch = Batch::from_rows(schema.clone(), &rows).dict_encoded();
        let cache = OnceLock::new();
        let _ = cache.set(rows);
        StoredTable {
            batch,
            schema,
            rows: Arc::new(cache),
            indices: HashMap::new(),
        }
    }

    /// Adopt an already-columnar result (the executor's install path — no
    /// row materialization). Any selection is compacted away so the stored
    /// image is dense, and string columns are dictionary-encoded.
    pub fn from_batch(batch: Batch) -> Self {
        let batch = batch.compact().dict_encoded();
        StoredTable {
            schema: batch.schema().clone(),
            batch,
            rows: Arc::new(OnceLock::new()),
            indices: HashMap::new(),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row-major view, derived from the columnar image on first use. This
    /// is the *user-facing/reference* accessor; maintenance code paths
    /// should stay on [`StoredTable::batch`].
    pub fn rows(&self) -> &[Tuple] {
        self.rows.get_or_init(|| self.batch.to_rows())
    }

    pub fn len(&self) -> usize {
        self.batch.num_rows()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replace the full contents (recomputation path of view refresh).
    pub fn replace_rows(&mut self, rows: Vec<Tuple>) {
        self.batch = Batch::from_rows(self.schema.clone(), &rows).dict_encoded();
        let cache = OnceLock::new();
        let _ = cache.set(rows);
        self.rows = Arc::new(cache);
        self.rebuild_indices();
    }

    /// Replace the full contents with a columnar result.
    pub fn replace_batch(&mut self, batch: Batch) {
        debug_assert_eq!(batch.schema().ids(), self.schema.ids());
        self.batch = batch.compact().dict_encoded();
        self.rows = Arc::new(OnceLock::new());
        self.rebuild_indices();
    }

    /// Apply a delta batch: append inserts, remove one occurrence per delete
    /// (multiset semantics), keeping indices in sync.
    ///
    /// Both sides are columnar-incremental. Inserts extend the typed column
    /// vectors and absorb into indices at their appended positions —
    /// O(batch). Deletes hash the stored rows against the (small) delete
    /// multiset by borrowed column keys, gather the surviving positions
    /// into dense columns in one pass, and *remap* index positions through
    /// the compaction (O(entries), no re-hash) — the table is never
    /// materialized as rows on either path.
    pub fn apply_delta(&mut self, delta: &DeltaBatch) {
        if delta.inserts.is_empty() && delta.deletes.is_empty() {
            return; // nothing changed: keep the columnar image as-is
        }
        if !delta.deletes.is_empty() {
            let deletes = Batch::from_rows(self.schema.clone(), &delta.deletes);
            self.delete_batch(&deletes);
        }
        if !delta.inserts.is_empty() {
            let start = self.batch.num_rows();
            self.batch.append_rows(&delta.inserts);
            let attrs: Vec<AttrId> = self.indices.keys().copied().collect();
            for attr in attrs {
                let pos = self.schema.position_of(attr).expect("index attr in schema");
                let idx = Arc::make_mut(self.indices.get_mut(&attr).expect("listed index"));
                for (k, row) in delta.inserts.iter().enumerate() {
                    idx.insert(&row[pos], (start + k) as u32);
                }
            }
        }
        self.rows = Arc::new(OnceLock::new());
    }

    /// Columnar-side delta application: the maintained-result merge path.
    /// `inserts`/`deletes` stay columnar end-to-end (no tuple bridges);
    /// both must already be aligned to the table's schema layout.
    pub fn apply_batch_delta(&mut self, inserts: Option<&Batch>, deletes: Option<&Batch>) {
        if let Some(deletes) = deletes.filter(|d| d.num_rows() > 0) {
            if self.delete_batch(deletes) {
                self.rows = Arc::new(OnceLock::new());
            }
        }
        if let Some(inserts) = inserts.filter(|i| i.num_rows() > 0) {
            debug_assert_eq!(inserts.schema().ids(), self.schema.ids());
            let start = self.batch.num_rows();
            self.batch.append(inserts);
            for idx in self.indices.values_mut() {
                let idx = Arc::make_mut(idx);
                let pos = self
                    .schema
                    .position_of(idx.attr)
                    .expect("index attr in schema");
                for i in 0..inserts.num_rows() {
                    let phys = inserts.physical(i) as usize;
                    idx.insert(&inserts.column(pos).value(phys), (start + i) as u32);
                }
            }
            self.rows = Arc::new(OnceLock::new());
        }
    }

    /// Shared delete kernel: one hash scan produces the surviving
    /// positions, indices follow through a position remap, and the columns
    /// are gathered once. Returns whether anything was removed.
    fn delete_batch(&mut self, deletes: &Batch) -> bool {
        debug_assert_eq!(deletes.schema().ids(), self.schema.ids());
        let keep = self.batch.minus_positions(deletes);
        if keep.len() == self.batch.num_rows() {
            return false;
        }
        let mut map = vec![u32::MAX; self.batch.num_rows()];
        for (new, &old) in keep.iter().enumerate() {
            map[old as usize] = new as u32;
        }
        for idx in self.indices.values_mut() {
            Arc::make_mut(idx).remap_positions(&map);
        }
        self.batch = self.batch.gather_physical(&keep);
        true
    }

    /// The columnar image of the relation — the primary representation,
    /// served by shared reference (cloning the returned batch is O(width):
    /// columns are `Arc`-shared, never copied).
    pub fn batch(&self) -> &Batch {
        &self.batch
    }

    /// Row positions matching `key` through the index on `attr`, if one
    /// exists — the position-returning probe the executor's index scan
    /// selects through (never clones the table). Per-row probe loops
    /// (index nested-loop join) resolve the index once via
    /// [`StoredTable::index_on`] instead of paying this lookup per tuple.
    pub fn probe(&self, attr: AttrId, key: &mvmqo_relalg::types::Value) -> Option<&[u32]> {
        self.indices.get(&attr).map(|idx| idx.lookup_eq(key))
    }

    /// Create (or replace) an index on `attr`, built from the column image.
    ///
    /// Panics if `attr` is not part of the schema — that is a planner bug.
    pub fn create_index(&mut self, attr: AttrId, kind: IndexKind) {
        let pos = self
            .schema
            .position_of(attr)
            .unwrap_or_else(|| panic!("cannot index {attr}: not in schema"));
        let idx = Index::build_from_column(attr, kind, self.batch.column(pos));
        self.indices.insert(attr, Arc::new(idx));
    }

    pub fn drop_index(&mut self, attr: AttrId) {
        self.indices.remove(&attr);
    }

    pub fn index_on(&self, attr: AttrId) -> Option<&Index> {
        self.indices.get(&attr).map(|idx| idx.as_ref())
    }

    pub fn indexed_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.indices.keys().copied()
    }

    /// Materialize the tuple at one position (index lookups return
    /// positions). A columnar point read — sampling a handful of rows does
    /// not force the full row-major view into existence.
    pub fn tuple_at(&self, pos: u32) -> Tuple {
        self.batch.tuple_at(pos as usize)
    }

    /// Estimated bytes per stored tuple (the schema's catalog-level width;
    /// the cost model works from widths, not actual payloads — §7.1).
    pub fn row_width(&self) -> usize {
        self.schema.row_width()
    }

    /// Estimated total bytes occupied by the relation.
    pub fn bytes(&self) -> usize {
        self.len() * self.row_width()
    }

    /// Blocks this relation occupies under `config` (§7.1 accounting: 4 KB
    /// blocks by default). This is the stored-side counterpart of the cost
    /// model's estimate, so the executor's simulated I/O meter and the
    /// optimizer charge the same quantity for a full scan.
    pub fn blocks(&self, config: &BlockConfig) -> usize {
        config.blocks_for_exact(self.len(), self.row_width())
    }

    /// Whether the whole relation fits in `config`'s buffer — the switch
    /// point at which hash operators over this table go out-of-core.
    /// Delegates to [`BlockConfig::fits_in_buffer`] so the stored-side
    /// check and the optimizer's estimate share one definition.
    pub fn fits_in_buffer(&self, config: &BlockConfig) -> bool {
        config.fits_in_buffer(self.len() as f64, self.row_width())
    }

    fn rebuild_indices(&mut self) {
        // Full-content replacement is the one path that still rebuilds
        // wholesale; delta application remaps/extends indices in place. The
        // *cost model* charges incremental index maintenance analytically
        // (see mvmqo-core::cost), so this choice does not leak into the
        // experiments.
        let attrs: Vec<(AttrId, IndexKind)> =
            self.indices.values().map(|i| (i.attr, i.kind)).collect();
        for (attr, kind) in attrs {
            let pos = self.schema.position_of(attr).expect("index attr in schema");
            self.indices.insert(
                attr,
                Arc::new(Index::build_from_column(attr, kind, self.batch.column(pos))),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::schema::Attribute;
    use mvmqo_relalg::tuple::{bag_counts, bag_eq};
    use mvmqo_relalg::types::{DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute {
                id: AttrId(0),
                name: "t.k".into(),
                data_type: DataType::Int,
            },
            Attribute {
                id: AttrId(1),
                name: "t.v".into(),
                data_type: DataType::Int,
            },
        ])
    }

    fn t(k: i64, v: i64) -> Tuple {
        vec![Value::Int(k), Value::Int(v)]
    }

    #[test]
    fn apply_delta_respects_multiset_semantics() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 1), t(1, 1), t(2, 2)]);
        tab.apply_delta(&DeltaBatch::new(vec![t(3, 3)], vec![t(1, 1)]));
        assert!(bag_eq(tab.rows(), &[t(1, 1), t(2, 2), t(3, 3)]));
    }

    #[test]
    fn delete_of_absent_tuple_is_noop() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 1)]);
        tab.apply_delta(&DeltaBatch::new(vec![], vec![t(9, 9)]));
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn indices_follow_mutations() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10), t(2, 20)]);
        tab.create_index(AttrId(0), IndexKind::Hash);
        assert_eq!(
            tab.index_on(AttrId(0))
                .unwrap()
                .lookup_eq(&Value::Int(2))
                .len(),
            1
        );
        tab.apply_delta(&DeltaBatch::new(vec![t(2, 21)], vec![]));
        let hits = tab.index_on(AttrId(0)).unwrap().lookup_eq(&Value::Int(2));
        assert_eq!(hits.len(), 2);
        // Positions must dereference to the right tuples.
        for &p in hits {
            assert_eq!(tab.tuple_at(p)[0], Value::Int(2));
        }
    }

    #[test]
    fn replace_rows_rebuilds_index() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10)]);
        tab.create_index(AttrId(0), IndexKind::BTree);
        tab.replace_rows(vec![t(5, 50), t(6, 60)]);
        assert_eq!(
            tab.index_on(AttrId(0))
                .unwrap()
                .lookup_eq(&Value::Int(5))
                .len(),
            1
        );
        assert!(tab
            .index_on(AttrId(0))
            .unwrap()
            .lookup_eq(&Value::Int(1))
            .is_empty());
    }

    #[test]
    fn drop_index_removes_it() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10)]);
        tab.create_index(AttrId(1), IndexKind::Hash);
        assert!(tab.index_on(AttrId(1)).is_some());
        tab.drop_index(AttrId(1));
        assert!(tab.index_on(AttrId(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn indexing_unknown_attr_panics() {
        let mut tab = StoredTable::new(schema());
        tab.create_index(AttrId(42), IndexKind::Hash);
    }

    #[test]
    fn insert_only_delta_appends_duplicates() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 1)]);
        tab.apply_delta(&DeltaBatch::new(vec![t(1, 1), t(1, 1)], vec![]));
        assert_eq!(tab.len(), 3);
        assert_eq!(bag_counts(tab.rows()).get(t(1, 1).as_slice()), Some(&3));
    }

    #[test]
    fn delete_removes_one_occurrence_per_listed_tuple() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 1), t(1, 1), t(1, 1)]);
        tab.apply_delta(&DeltaBatch::new(vec![], vec![t(1, 1)]));
        assert_eq!(tab.len(), 2);
    }

    #[test]
    fn index_stays_consistent_across_delta_and_replace() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10), t(2, 20), t(2, 21)]);
        tab.create_index(AttrId(0), IndexKind::BTree);
        tab.apply_delta(&DeltaBatch::new(vec![t(3, 30)], vec![t(2, 20)]));
        // Every key's positions must dereference to tuples with that key,
        // and the entry count must equal the row count.
        let idx = tab.index_on(AttrId(0)).unwrap();
        assert_eq!(idx.entries(), tab.len());
        for k in [1i64, 2, 3] {
            for &p in idx.lookup_eq(&Value::Int(k)) {
                assert_eq!(tab.tuple_at(p)[0], Value::Int(k));
            }
        }
        assert_eq!(idx.lookup_eq(&Value::Int(2)).len(), 1);
    }

    #[test]
    fn batch_is_primary_and_follows_mutation() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10), t(2, 20)]);
        assert_eq!(tab.batch().to_rows(), tab.rows());
        tab.apply_delta(&DeltaBatch::new(vec![t(3, 30)], vec![]));
        assert_eq!(tab.batch().num_rows(), 3);
        assert_eq!(tab.rows().len(), 3);
        tab.apply_delta(&DeltaBatch::new(vec![], vec![t(1, 10)]));
        assert_eq!(tab.batch().num_rows(), 2);
        assert!(bag_eq(tab.rows(), &[t(2, 20), t(3, 30)]));
        tab.replace_rows(vec![t(9, 90)]);
        assert_eq!(tab.batch().num_rows(), 1);
    }

    #[test]
    fn from_batch_adopts_columnar_result() {
        let b = mvmqo_relalg::batch::Batch::from_rows(schema(), &[t(1, 10), t(2, 20)]);
        let mut tab = StoredTable::from_batch(b);
        assert_eq!(tab.len(), 2);
        assert_eq!(tab.schema().len(), 2);
        tab.create_index(AttrId(0), IndexKind::Hash);
        assert_eq!(tab.probe(AttrId(0), &Value::Int(2)).unwrap(), &[1]);
        assert_eq!(tab.rows(), &[t(1, 10), t(2, 20)]);
    }

    #[test]
    fn apply_batch_delta_matches_row_delta() {
        let rows = vec![t(1, 1), t(1, 1), t(2, 2), t(3, 3)];
        let ins = vec![t(4, 4), t(1, 1)];
        let del = vec![t(1, 1), t(3, 3), t(9, 9)];
        let mut row_side = StoredTable::with_rows(schema(), rows.clone());
        row_side.apply_delta(&DeltaBatch::new(ins.clone(), del.clone()));
        let mut batch_side = StoredTable::with_rows(schema(), rows);
        batch_side.create_index(AttrId(0), IndexKind::Hash);
        let ins_b = mvmqo_relalg::batch::Batch::from_rows(schema(), &ins);
        let del_b = mvmqo_relalg::batch::Batch::from_rows(schema(), &del);
        batch_side.apply_batch_delta(Some(&ins_b), Some(&del_b));
        assert!(bag_eq(row_side.rows(), batch_side.rows()));
        // Index stayed consistent through remap + append.
        let idx = batch_side.index_on(AttrId(0)).unwrap();
        assert_eq!(idx.entries(), batch_side.len());
        for k in [1i64, 2, 3, 4] {
            for &p in idx.lookup_eq(&Value::Int(k)) {
                assert_eq!(batch_side.tuple_at(p)[0], Value::Int(k));
            }
        }
    }

    #[test]
    fn probe_returns_positions_without_cloning() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10), t(2, 20), t(2, 21)]);
        assert!(
            tab.probe(AttrId(0), &Value::Int(2)).is_none(),
            "no index yet"
        );
        tab.create_index(AttrId(0), IndexKind::Hash);
        let hits = tab.probe(AttrId(0), &Value::Int(2)).unwrap();
        assert_eq!(hits, &[1, 2]);
        assert!(tab.probe(AttrId(0), &Value::Int(7)).unwrap().is_empty());
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 1), t(2, 2)]);
        tab.create_index(AttrId(0), IndexKind::Hash);
        let snapshot = tab.clone();
        tab.apply_delta(&DeltaBatch::new(vec![t(3, 3)], vec![t(1, 1)]));
        // Mutating the original must not leak into the clone…
        assert!(bag_eq(snapshot.rows(), &[t(1, 1), t(2, 2)]));
        let idx = snapshot.index_on(AttrId(0)).unwrap();
        assert_eq!(idx.entries(), 2);
        assert_eq!(idx.lookup_eq(&Value::Int(1)).len(), 1);
        // …while the original sees its own mutation.
        assert!(bag_eq(tab.rows(), &[t(2, 2), t(3, 3)]));
        assert_eq!(tab.index_on(AttrId(0)).unwrap().entries(), 2);
        assert!(tab
            .index_on(AttrId(0))
            .unwrap()
            .lookup_eq(&Value::Int(1))
            .is_empty());
    }

    #[test]
    fn block_accounting_matches_block_config() {
        // Two Int columns → 16-byte rows → 256 tuples per 4 KB block.
        let cfg = BlockConfig::default();
        let tab = StoredTable::new(schema());
        assert_eq!(tab.row_width(), 16);
        assert_eq!(tab.blocks(&cfg), 0);
        assert_eq!(tab.bytes(), 0);

        let rows: Vec<Tuple> = (0..257).map(|i| t(i, i)).collect();
        let tab = StoredTable::with_rows(schema(), rows);
        assert_eq!(tab.bytes(), 257 * 16);
        assert_eq!(tab.blocks(&cfg), 2); // 256 fill one block, 1 spills
        assert_eq!(
            tab.blocks(&cfg),
            cfg.blocks_for_exact(tab.len(), tab.row_width())
        );
    }

    #[test]
    fn block_accounting_tracks_deltas() {
        let cfg = BlockConfig {
            block_bytes: 64, // 4 tuples per 16-byte-row block
            buffer_blocks: 2,
        };
        let mut tab = StoredTable::with_rows(schema(), (0..8).map(|i| t(i, i)).collect());
        assert_eq!(tab.blocks(&cfg), 2);
        assert!(tab.fits_in_buffer(&cfg));
        tab.apply_delta(&DeltaBatch::new(vec![t(8, 8)], vec![]));
        assert_eq!(tab.blocks(&cfg), 3);
        assert!(!tab.fits_in_buffer(&cfg));
        tab.apply_delta(&DeltaBatch::new(vec![], vec![t(8, 8)]));
        assert_eq!(tab.blocks(&cfg), 2);
    }
}
