//! Stored multiset relations.
//!
//! A [`StoredTable`] is an in-memory multiset of tuples plus any secondary
//! indices built over it. Base relations, permanently materialized views,
//! and temporarily materialized intermediate results are all stored this
//! way — the paper's framework deliberately treats them uniformly (a
//! materialized result is just another relation the optimizer may scan or
//! probe).

use crate::blocks::BlockConfig;
use crate::delta::DeltaBatch;
use crate::index::{Index, IndexKind};
use mvmqo_relalg::batch::Batch;
use mvmqo_relalg::schema::{AttrId, Schema};
use mvmqo_relalg::tuple::{bag_minus, Tuple};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// An in-memory multiset relation with optional secondary indices.
#[derive(Debug, Clone, Default)]
pub struct StoredTable {
    schema: Schema,
    rows: Vec<Tuple>,
    indices: HashMap<AttrId, Index>,
    /// Lazily built columnar image served to the vectorized executor;
    /// invalidated by every row mutation. Shared (`Arc`) so repeated scans
    /// of an unchanged relation are O(width), not O(cells).
    batch: OnceLock<Arc<Batch>>,
}

impl StoredTable {
    pub fn new(schema: Schema) -> Self {
        StoredTable {
            schema,
            rows: Vec::new(),
            indices: HashMap::new(),
            batch: OnceLock::new(),
        }
    }

    pub fn with_rows(schema: Schema, rows: Vec<Tuple>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        StoredTable {
            schema,
            rows,
            indices: HashMap::new(),
            batch: OnceLock::new(),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Replace the full contents (recomputation path of view refresh).
    pub fn replace_rows(&mut self, rows: Vec<Tuple>) {
        self.rows = rows;
        self.batch.take();
        self.rebuild_indices();
    }

    /// Apply a delta batch: append inserts, remove one occurrence per delete
    /// (multiset semantics), then refresh indices.
    ///
    /// Insert-only batches take an incremental path: existing row
    /// positions are unchanged, so indices absorb just the appended rows —
    /// O(batch) instead of O(table). The §5.2 epoch numbering applies δ⁺
    /// and δ⁻ as separate steps, so half of every refresh cycle's base and
    /// view mutations hit this path. Deletes shift positions (`bag_minus`
    /// compacts), so delete-bearing batches still rebuild.
    pub fn apply_delta(&mut self, delta: &DeltaBatch) {
        if delta.inserts.is_empty() && delta.deletes.is_empty() {
            return; // nothing changed: keep the cached columnar image
        }
        if delta.deletes.is_empty() {
            let start = self.rows.len();
            self.rows.extend(delta.inserts.iter().cloned());
            self.batch.take();
            let attrs: Vec<AttrId> = self.indices.keys().copied().collect();
            for attr in attrs {
                let pos = self.schema.position_of(attr).expect("index attr in schema");
                let idx = self.indices.get_mut(&attr).expect("listed index");
                for (k, row) in self.rows[start..].iter().enumerate() {
                    idx.insert(&row[pos], (start + k) as u32);
                }
            }
            return;
        }
        self.rows = bag_minus(&self.rows, &delta.deletes);
        self.rows.extend(delta.inserts.iter().cloned());
        self.batch.take();
        self.rebuild_indices();
    }

    /// Columnar image of the relation (struct-of-arrays column extraction
    /// for the vectorized executor). Built on first use, then served from
    /// a shared cache until the next row mutation.
    pub fn to_batch(&self) -> Arc<Batch> {
        Arc::clone(
            self.batch
                .get_or_init(|| Arc::new(Batch::from_rows(self.schema.clone(), &self.rows))),
        )
    }

    /// Row positions matching `key` through the index on `attr`, if one
    /// exists — the position-returning probe the executor's index scan
    /// selects through (never clones the table). Per-row probe loops
    /// (index nested-loop join) resolve the index once via
    /// [`StoredTable::index_on`] instead of paying this lookup per tuple.
    pub fn probe(&self, attr: AttrId, key: &mvmqo_relalg::types::Value) -> Option<&[u32]> {
        self.indices.get(&attr).map(|idx| idx.lookup_eq(key))
    }

    /// Create (or replace) an index on `attr`.
    ///
    /// Panics if `attr` is not part of the schema — that is a planner bug.
    pub fn create_index(&mut self, attr: AttrId, kind: IndexKind) {
        let pos = self
            .schema
            .position_of(attr)
            .unwrap_or_else(|| panic!("cannot index {attr}: not in schema"));
        let idx = Index::build(attr, kind, &self.rows, pos);
        self.indices.insert(attr, idx);
    }

    pub fn drop_index(&mut self, attr: AttrId) {
        self.indices.remove(&attr);
    }

    pub fn index_on(&self, attr: AttrId) -> Option<&Index> {
        self.indices.get(&attr)
    }

    pub fn indexed_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.indices.keys().copied()
    }

    /// Fetch a row by position (index lookups return positions).
    pub fn row(&self, pos: u32) -> &Tuple {
        &self.rows[pos as usize]
    }

    /// Estimated bytes per stored tuple (the schema's catalog-level width;
    /// the cost model works from widths, not actual payloads — §7.1).
    pub fn row_width(&self) -> usize {
        self.schema.row_width()
    }

    /// Estimated total bytes occupied by the relation.
    pub fn bytes(&self) -> usize {
        self.len() * self.row_width()
    }

    /// Blocks this relation occupies under `config` (§7.1 accounting: 4 KB
    /// blocks by default). This is the stored-side counterpart of the cost
    /// model's estimate, so the executor's simulated I/O meter and the
    /// optimizer charge the same quantity for a full scan.
    pub fn blocks(&self, config: &BlockConfig) -> usize {
        config.blocks_for_exact(self.len(), self.row_width())
    }

    /// Whether the whole relation fits in `config`'s buffer — the switch
    /// point at which hash operators over this table go out-of-core.
    /// Delegates to [`BlockConfig::fits_in_buffer`] so the stored-side
    /// check and the optimizer's estimate share one definition.
    pub fn fits_in_buffer(&self, config: &BlockConfig) -> bool {
        config.fits_in_buffer(self.len() as f64, self.row_width())
    }

    fn rebuild_indices(&mut self) {
        // Rebuilding keeps runtime structures simple; the *cost model*
        // charges incremental index maintenance analytically (see
        // mvmqo-core::cost), so this implementation choice does not leak
        // into the experiments.
        let attrs: Vec<(AttrId, IndexKind)> =
            self.indices.values().map(|i| (i.attr, i.kind)).collect();
        for (attr, kind) in attrs {
            let pos = self.schema.position_of(attr).expect("index attr in schema");
            self.indices
                .insert(attr, Index::build(attr, kind, &self.rows, pos));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::schema::Attribute;
    use mvmqo_relalg::tuple::{bag_counts, bag_eq};
    use mvmqo_relalg::types::{DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute {
                id: AttrId(0),
                name: "t.k".into(),
                data_type: DataType::Int,
            },
            Attribute {
                id: AttrId(1),
                name: "t.v".into(),
                data_type: DataType::Int,
            },
        ])
    }

    fn t(k: i64, v: i64) -> Tuple {
        vec![Value::Int(k), Value::Int(v)]
    }

    #[test]
    fn apply_delta_respects_multiset_semantics() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 1), t(1, 1), t(2, 2)]);
        tab.apply_delta(&DeltaBatch::new(vec![t(3, 3)], vec![t(1, 1)]));
        assert!(bag_eq(tab.rows(), &[t(1, 1), t(2, 2), t(3, 3)]));
    }

    #[test]
    fn delete_of_absent_tuple_is_noop() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 1)]);
        tab.apply_delta(&DeltaBatch::new(vec![], vec![t(9, 9)]));
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn indices_follow_mutations() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10), t(2, 20)]);
        tab.create_index(AttrId(0), IndexKind::Hash);
        assert_eq!(
            tab.index_on(AttrId(0))
                .unwrap()
                .lookup_eq(&Value::Int(2))
                .len(),
            1
        );
        tab.apply_delta(&DeltaBatch::new(vec![t(2, 21)], vec![]));
        let hits = tab.index_on(AttrId(0)).unwrap().lookup_eq(&Value::Int(2));
        assert_eq!(hits.len(), 2);
        // Positions must dereference to the right tuples.
        for &p in hits {
            assert_eq!(tab.row(p)[0], Value::Int(2));
        }
    }

    #[test]
    fn replace_rows_rebuilds_index() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10)]);
        tab.create_index(AttrId(0), IndexKind::BTree);
        tab.replace_rows(vec![t(5, 50), t(6, 60)]);
        assert_eq!(
            tab.index_on(AttrId(0))
                .unwrap()
                .lookup_eq(&Value::Int(5))
                .len(),
            1
        );
        assert!(tab
            .index_on(AttrId(0))
            .unwrap()
            .lookup_eq(&Value::Int(1))
            .is_empty());
    }

    #[test]
    fn drop_index_removes_it() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10)]);
        tab.create_index(AttrId(1), IndexKind::Hash);
        assert!(tab.index_on(AttrId(1)).is_some());
        tab.drop_index(AttrId(1));
        assert!(tab.index_on(AttrId(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn indexing_unknown_attr_panics() {
        let mut tab = StoredTable::new(schema());
        tab.create_index(AttrId(42), IndexKind::Hash);
    }

    #[test]
    fn insert_only_delta_appends_duplicates() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 1)]);
        tab.apply_delta(&DeltaBatch::new(vec![t(1, 1), t(1, 1)], vec![]));
        assert_eq!(tab.len(), 3);
        assert_eq!(bag_counts(tab.rows()).get(t(1, 1).as_slice()), Some(&3));
    }

    #[test]
    fn delete_removes_one_occurrence_per_listed_tuple() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 1), t(1, 1), t(1, 1)]);
        tab.apply_delta(&DeltaBatch::new(vec![], vec![t(1, 1)]));
        assert_eq!(tab.len(), 2);
    }

    #[test]
    fn index_stays_consistent_across_delta_and_replace() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10), t(2, 20), t(2, 21)]);
        tab.create_index(AttrId(0), IndexKind::BTree);
        tab.apply_delta(&DeltaBatch::new(vec![t(3, 30)], vec![t(2, 20)]));
        // Every key's positions must dereference to tuples with that key,
        // and the entry count must equal the row count.
        let idx = tab.index_on(AttrId(0)).unwrap();
        assert_eq!(idx.entries(), tab.len());
        for k in [1i64, 2, 3] {
            for &p in idx.lookup_eq(&Value::Int(k)) {
                assert_eq!(tab.row(p)[0], Value::Int(k));
            }
        }
        assert_eq!(idx.lookup_eq(&Value::Int(2)).len(), 1);
    }

    #[test]
    fn to_batch_caches_until_mutation() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10), t(2, 20)]);
        let b1 = tab.to_batch();
        let b2 = tab.to_batch();
        assert!(
            std::sync::Arc::ptr_eq(&b1, &b2),
            "unchanged table reuses its batch"
        );
        assert_eq!(b1.to_rows(), tab.rows());
        tab.apply_delta(&DeltaBatch::new(vec![t(3, 30)], vec![]));
        let b3 = tab.to_batch();
        assert!(
            !std::sync::Arc::ptr_eq(&b1, &b3),
            "mutation invalidates the cache"
        );
        assert_eq!(b3.num_rows(), 3);
        tab.replace_rows(vec![t(9, 90)]);
        assert_eq!(tab.to_batch().num_rows(), 1);
    }

    #[test]
    fn probe_returns_positions_without_cloning() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10), t(2, 20), t(2, 21)]);
        assert!(
            tab.probe(AttrId(0), &Value::Int(2)).is_none(),
            "no index yet"
        );
        tab.create_index(AttrId(0), IndexKind::Hash);
        let hits = tab.probe(AttrId(0), &Value::Int(2)).unwrap();
        assert_eq!(hits, &[1, 2]);
        assert!(tab.probe(AttrId(0), &Value::Int(7)).unwrap().is_empty());
    }

    #[test]
    fn block_accounting_matches_block_config() {
        // Two Int columns → 16-byte rows → 256 tuples per 4 KB block.
        let cfg = BlockConfig::default();
        let tab = StoredTable::new(schema());
        assert_eq!(tab.row_width(), 16);
        assert_eq!(tab.blocks(&cfg), 0);
        assert_eq!(tab.bytes(), 0);

        let rows: Vec<Tuple> = (0..257).map(|i| t(i, i)).collect();
        let tab = StoredTable::with_rows(schema(), rows);
        assert_eq!(tab.bytes(), 257 * 16);
        assert_eq!(tab.blocks(&cfg), 2); // 256 fill one block, 1 spills
        assert_eq!(
            tab.blocks(&cfg),
            cfg.blocks_for_exact(tab.len(), tab.row_width())
        );
    }

    #[test]
    fn block_accounting_tracks_deltas() {
        let cfg = BlockConfig {
            block_bytes: 64, // 4 tuples per 16-byte-row block
            buffer_blocks: 2,
        };
        let mut tab = StoredTable::with_rows(schema(), (0..8).map(|i| t(i, i)).collect());
        assert_eq!(tab.blocks(&cfg), 2);
        assert!(tab.fits_in_buffer(&cfg));
        tab.apply_delta(&DeltaBatch::new(vec![t(8, 8)], vec![]));
        assert_eq!(tab.blocks(&cfg), 3);
        assert!(!tab.fits_in_buffer(&cfg));
        tab.apply_delta(&DeltaBatch::new(vec![], vec![t(8, 8)]));
        assert_eq!(tab.blocks(&cfg), 2);
    }
}
