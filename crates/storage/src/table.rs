//! Stored multiset relations.
//!
//! A [`StoredTable`] is an in-memory multiset of tuples plus any secondary
//! indices built over it. Base relations, permanently materialized views,
//! and temporarily materialized intermediate results are all stored this
//! way — the paper's framework deliberately treats them uniformly (a
//! materialized result is just another relation the optimizer may scan or
//! probe).

use crate::delta::DeltaBatch;
use crate::index::{Index, IndexKind};
use mvmqo_relalg::schema::{AttrId, Schema};
use mvmqo_relalg::tuple::{bag_minus, Tuple};
use std::collections::HashMap;

/// An in-memory multiset relation with optional secondary indices.
#[derive(Debug, Clone, Default)]
pub struct StoredTable {
    schema: Schema,
    rows: Vec<Tuple>,
    indices: HashMap<AttrId, Index>,
}

impl StoredTable {
    pub fn new(schema: Schema) -> Self {
        StoredTable {
            schema,
            rows: Vec::new(),
            indices: HashMap::new(),
        }
    }

    pub fn with_rows(schema: Schema, rows: Vec<Tuple>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        StoredTable {
            schema,
            rows,
            indices: HashMap::new(),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Replace the full contents (recomputation path of view refresh).
    pub fn replace_rows(&mut self, rows: Vec<Tuple>) {
        self.rows = rows;
        self.rebuild_indices();
    }

    /// Apply a delta batch: append inserts, remove one occurrence per delete
    /// (multiset semantics), then refresh indices.
    pub fn apply_delta(&mut self, delta: &DeltaBatch) {
        if !delta.deletes.is_empty() {
            self.rows = bag_minus(&self.rows, &delta.deletes);
        }
        self.rows.extend(delta.inserts.iter().cloned());
        self.rebuild_indices();
    }

    /// Create (or replace) an index on `attr`.
    ///
    /// Panics if `attr` is not part of the schema — that is a planner bug.
    pub fn create_index(&mut self, attr: AttrId, kind: IndexKind) {
        let pos = self
            .schema
            .position_of(attr)
            .unwrap_or_else(|| panic!("cannot index {attr}: not in schema"));
        let idx = Index::build(attr, kind, &self.rows, pos);
        self.indices.insert(attr, idx);
    }

    pub fn drop_index(&mut self, attr: AttrId) {
        self.indices.remove(&attr);
    }

    pub fn index_on(&self, attr: AttrId) -> Option<&Index> {
        self.indices.get(&attr)
    }

    pub fn indexed_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.indices.keys().copied()
    }

    /// Fetch a row by position (index lookups return positions).
    pub fn row(&self, pos: u32) -> &Tuple {
        &self.rows[pos as usize]
    }

    fn rebuild_indices(&mut self) {
        // Rebuilding keeps runtime structures simple; the *cost model*
        // charges incremental index maintenance analytically (see
        // mvmqo-core::cost), so this implementation choice does not leak
        // into the experiments.
        let attrs: Vec<(AttrId, IndexKind)> = self
            .indices
            .values()
            .map(|i| (i.attr, i.kind))
            .collect();
        for (attr, kind) in attrs {
            let pos = self.schema.position_of(attr).expect("index attr in schema");
            self.indices
                .insert(attr, Index::build(attr, kind, &self.rows, pos));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::schema::Attribute;
    use mvmqo_relalg::tuple::bag_eq;
    use mvmqo_relalg::types::{DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute {
                id: AttrId(0),
                name: "t.k".into(),
                data_type: DataType::Int,
            },
            Attribute {
                id: AttrId(1),
                name: "t.v".into(),
                data_type: DataType::Int,
            },
        ])
    }

    fn t(k: i64, v: i64) -> Tuple {
        vec![Value::Int(k), Value::Int(v)]
    }

    #[test]
    fn apply_delta_respects_multiset_semantics() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 1), t(1, 1), t(2, 2)]);
        tab.apply_delta(&DeltaBatch::new(vec![t(3, 3)], vec![t(1, 1)]));
        assert!(bag_eq(tab.rows(), &[t(1, 1), t(2, 2), t(3, 3)]));
    }

    #[test]
    fn delete_of_absent_tuple_is_noop() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 1)]);
        tab.apply_delta(&DeltaBatch::new(vec![], vec![t(9, 9)]));
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn indices_follow_mutations() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10), t(2, 20)]);
        tab.create_index(AttrId(0), IndexKind::Hash);
        assert_eq!(tab.index_on(AttrId(0)).unwrap().lookup_eq(&Value::Int(2)).len(), 1);
        tab.apply_delta(&DeltaBatch::new(vec![t(2, 21)], vec![]));
        let hits = tab.index_on(AttrId(0)).unwrap().lookup_eq(&Value::Int(2));
        assert_eq!(hits.len(), 2);
        // Positions must dereference to the right tuples.
        for &p in hits {
            assert_eq!(tab.row(p)[0], Value::Int(2));
        }
    }

    #[test]
    fn replace_rows_rebuilds_index() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10)]);
        tab.create_index(AttrId(0), IndexKind::BTree);
        tab.replace_rows(vec![t(5, 50), t(6, 60)]);
        assert_eq!(tab.index_on(AttrId(0)).unwrap().lookup_eq(&Value::Int(5)).len(), 1);
        assert!(tab.index_on(AttrId(0)).unwrap().lookup_eq(&Value::Int(1)).is_empty());
    }

    #[test]
    fn drop_index_removes_it() {
        let mut tab = StoredTable::with_rows(schema(), vec![t(1, 10)]);
        tab.create_index(AttrId(1), IndexKind::Hash);
        assert!(tab.index_on(AttrId(1)).is_some());
        tab.drop_index(AttrId(1));
        assert!(tab.index_on(AttrId(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn indexing_unknown_attr_panics() {
        let mut tab = StoredTable::new(schema());
        tab.create_index(AttrId(42), IndexKind::Hash);
    }
}
