//! Secondary indices over stored relations.
//!
//! The paper treats the presence of an index as a physical property chosen
//! by the optimizer alongside materialized views (§4.3, §7: "the new code
//! implements index selection along with selection of results to
//! materialize"). This module provides the runtime structures: hash indices
//! for equality lookups and B-tree indices for ordered access; both map a
//! single key attribute to row positions in the owning table.

use mvmqo_relalg::batch::Column;
use mvmqo_relalg::schema::AttrId;
use mvmqo_relalg::tuple::Tuple;
use mvmqo_relalg::types::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::Bound;

/// The physical flavour of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Equality-only hash index.
    Hash,
    /// Ordered B-tree index (equality + range + provides sort order).
    BTree,
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexKind::Hash => f.write_str("hash"),
            IndexKind::BTree => f.write_str("btree"),
        }
    }
}

/// An index over one attribute of a stored relation, mapping key values to
/// row positions.
#[derive(Debug, Clone)]
pub struct Index {
    pub attr: AttrId,
    pub kind: IndexKind,
    hash: HashMap<Value, Vec<u32>>,
    tree: BTreeMap<Value, Vec<u32>>,
}

impl Index {
    /// Build an index over `rows`, keying on tuple position `key_pos`.
    pub fn build(attr: AttrId, kind: IndexKind, rows: &[Tuple], key_pos: usize) -> Self {
        let mut idx = Index {
            attr,
            kind,
            hash: HashMap::new(),
            tree: BTreeMap::new(),
        };
        for (i, row) in rows.iter().enumerate() {
            idx.insert(&row[key_pos], i as u32);
        }
        idx
    }

    /// Build an index over one column of a columnar table image (the
    /// batch-native counterpart of [`Index::build`]).
    pub fn build_from_column(attr: AttrId, kind: IndexKind, col: &Column) -> Self {
        let mut idx = Index {
            attr,
            kind,
            hash: HashMap::new(),
            tree: BTreeMap::new(),
        };
        for i in 0..col.len() {
            idx.insert(&col.value(i), i as u32);
        }
        idx
    }

    /// Rewrite every stored position through `map` (old physical position →
    /// new, with `u32::MAX` marking a removed row). This is how an index
    /// follows a columnar delete compaction without re-hashing any key:
    /// O(entries) pointer updates instead of an O(table) rebuild.
    pub(crate) fn remap_positions(&mut self, map: &[u32]) {
        fn remap_list(ps: &mut Vec<u32>, map: &[u32]) -> bool {
            ps.retain_mut(|p| {
                let new = map[*p as usize];
                *p = new;
                new != u32::MAX
            });
            !ps.is_empty()
        }
        match self.kind {
            IndexKind::Hash => self.hash.retain(|_, ps| remap_list(ps, map)),
            IndexKind::BTree => self.tree.retain(|_, ps| remap_list(ps, map)),
        }
    }

    pub(crate) fn insert(&mut self, key: &Value, pos: u32) {
        match self.kind {
            IndexKind::Hash => self.hash.entry(key.clone()).or_default().push(pos),
            IndexKind::BTree => self.tree.entry(key.clone()).or_default().push(pos),
        }
    }

    /// Row positions with key equal to `key`.
    pub fn lookup_eq(&self, key: &Value) -> &[u32] {
        let hit = match self.kind {
            IndexKind::Hash => self.hash.get(key),
            IndexKind::BTree => self.tree.get(key),
        };
        hit.map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Row positions with keys in `[lo, hi]` bounds (B-tree only; a hash
    /// index answers with an empty slice, and the planner never asks it).
    pub fn lookup_range(
        &self,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> impl Iterator<Item = u32> + '_ {
        let iter = match self.kind {
            IndexKind::BTree => Some(self.tree.range::<Value, _>((lo, hi))),
            IndexKind::Hash => None,
        };
        iter.into_iter()
            .flatten()
            .flat_map(|(_, v)| v.iter().copied())
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match self.kind {
            IndexKind::Hash => self.hash.len(),
            IndexKind::BTree => self.tree.len(),
        }
    }

    /// Total indexed entries.
    pub fn entries(&self) -> usize {
        match self.kind {
            IndexKind::Hash => self.hash.values().map(Vec::len).sum(),
            IndexKind::BTree => self.tree.values().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Tuple> {
        vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
            vec![Value::Int(1), Value::str("c")],
            vec![Value::Int(3), Value::str("d")],
        ]
    }

    #[test]
    fn hash_index_equality_lookup() {
        let idx = Index::build(AttrId(0), IndexKind::Hash, &rows(), 0);
        assert_eq!(idx.lookup_eq(&Value::Int(1)), &[0, 2]);
        assert!(idx.lookup_eq(&Value::Int(9)).is_empty());
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.entries(), 4);
    }

    #[test]
    fn btree_index_range_lookup() {
        let idx = Index::build(AttrId(0), IndexKind::BTree, &rows(), 0);
        let hits: Vec<u32> = idx
            .lookup_range(
                Bound::Included(&Value::Int(2)),
                Bound::Included(&Value::Int(3)),
            )
            .collect();
        assert_eq!(hits, vec![1, 3]);
    }

    #[test]
    fn btree_also_answers_equality() {
        let idx = Index::build(AttrId(0), IndexKind::BTree, &rows(), 0);
        assert_eq!(idx.lookup_eq(&Value::Int(3)), &[3]);
    }

    #[test]
    fn hash_index_refuses_ranges() {
        let idx = Index::build(AttrId(0), IndexKind::Hash, &rows(), 0);
        assert_eq!(
            idx.lookup_range(Bound::Unbounded, Bound::Unbounded).count(),
            0
        );
    }

    #[test]
    fn string_keys_work() {
        let idx = Index::build(AttrId(1), IndexKind::Hash, &rows(), 1);
        assert_eq!(idx.lookup_eq(&Value::str("c")), &[2]);
    }
}
