//! Deterministic fault injection for durability tests.
//!
//! [`FailpointFile`] wraps any `Write` sink and models a crash at an exact
//! byte offset: bytes up to the kill point reach the underlying sink, and
//! everything after it is silently dropped — exactly what a power failure
//! leaves behind when a write straddles the crash (a torn write). Because
//! the kill point is a plain byte offset, a test can aim it at a record
//! boundary, inside a length prefix, or mid-payload, and the recovery path
//! must cope with all of them.
//!
//! The shim *succeeds* the write calls past the kill point rather than
//! erroring: a crashing process never observes its own last failed write,
//! and recovery must be driven purely by what is on disk.

use std::io::{self, Write};

/// A `Write` sink that stops persisting at a configured byte offset.
#[derive(Debug)]
pub struct FailpointFile<W> {
    inner: W,
    written: u64,
    kill_at: Option<u64>,
}

impl<W: Write> FailpointFile<W> {
    /// Wrap `inner`, dropping every byte at offset `kill_at` and beyond.
    /// `None` never kills (pass-through).
    pub fn new(inner: W, kill_at: Option<u64>) -> Self {
        FailpointFile {
            inner,
            written: 0,
            kill_at,
        }
    }

    /// Bytes that actually reached the underlying sink.
    pub fn persisted(&self) -> u64 {
        match self.kill_at {
            Some(k) => self.written.min(k),
            None => self.written,
        }
    }

    /// True once at least one byte has been dropped.
    pub fn killed(&self) -> bool {
        self.kill_at.is_some_and(|k| self.written > k)
    }

    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailpointFile<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let surviving = match self.kill_at {
            Some(k) => (k.saturating_sub(self.written) as usize).min(buf.len()),
            None => buf.len(),
        };
        if surviving > 0 {
            self.inner.write_all(&buf[..surviving])?;
        }
        // Report full success: the crashing process believes the write
        // landed; only the on-disk prefix tells the truth.
        self.written += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_without_kill_point() {
        let mut f = FailpointFile::new(Vec::new(), None);
        f.write_all(b"hello world").unwrap();
        assert!(!f.killed());
        assert_eq!(f.into_inner(), b"hello world");
    }

    #[test]
    fn tears_a_write_mid_buffer() {
        let mut f = FailpointFile::new(Vec::new(), Some(7));
        f.write_all(b"hello").unwrap();
        f.write_all(b" world").unwrap(); // straddles offset 7
        f.write_all(b"!!").unwrap(); // fully dropped
        assert!(f.killed());
        assert_eq!(f.persisted(), 7);
        assert_eq!(f.into_inner(), b"hello w");
    }

    #[test]
    fn kill_at_zero_persists_nothing() {
        let mut f = FailpointFile::new(Vec::new(), Some(0));
        f.write_all(b"data").unwrap();
        assert_eq!(f.persisted(), 0);
        assert!(f.into_inner().is_empty());
    }
}
