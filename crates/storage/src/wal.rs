//! Write-ahead log for ingested delta batches.
//!
//! The §5.2 maintenance model already numbers every refresh: epoch `n`'s
//! δ⁺/δ⁻ batches carry update numbers `2n`/`2n+1`, so the epoch counter is
//! a natural log sequence number. The WAL simply persists that stream:
//! every ingested delta batch becomes one record tagged with the epoch it
//! will commit into, and every completed epoch appends a commit record.
//! Replaying the log through the ordinary `ingest`/`run_epoch` path
//! reproduces the engine state exactly.
//!
//! ## Frame format
//!
//! ```text
//! ┌───────────┬────────────────┬────────────────┐
//! │ len: u32  │ crc32(payload) │ payload (len B)│   repeated until EOF
//! └───────────┴────────────────┴────────────────┘
//! ```
//!
//! All integers little-endian. `len == 0` is invalid by construction (a
//! payload always starts with a record-kind byte), which makes a zero-filled
//! page stop recovery instead of decoding as an endless run of empty
//! records whose CRC (`crc32(b"") == 0`) would otherwise match.
//!
//! ## Prefix recovery
//!
//! [`scan_wal`] never fails on a damaged log: it returns every record of
//! the longest valid prefix plus a [`WalStop`] describing why scanning
//! stopped (clean EOF, torn header or payload, CRC mismatch, bad record).
//! A torn tail is the *expected* crash outcome, not an error.

use crate::crc::crc32;
use crate::error::RecoveryError;
use mvmqo_relalg::codec::{self, CodecError, Dec, Enc};
use mvmqo_relalg::{Batch, TableId};
use std::fmt;
use std::io::{Read, Seek, Write};
use std::path::Path;

/// Upper bound on one record's payload; a corrupt length prefix larger than
/// this stops the scan instead of attempting a giant allocation.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

const KIND_INGEST: u8 = 1;
const KIND_EPOCH_COMMIT: u8 = 2;

/// One durable event in the engine's life.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A delta batch entered the pending set for `table`. `epoch` is the
    /// epoch the batch will commit into (current epoch + 1 at append time)
    /// — the §5.2 update number stream made durable.
    Ingest {
        epoch: u64,
        table: TableId,
        inserts: Batch,
        deletes: Batch,
    },
    /// Epoch `epoch` ran to completion over every preceding ingest.
    EpochCommit { epoch: u64 },
}

impl WalRecord {
    /// Encode the payload (no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            WalRecord::Ingest {
                epoch,
                table,
                inserts,
                deletes,
            } => {
                e.u8(KIND_INGEST);
                e.u64(*epoch);
                e.u32(table.0);
                codec::encode_batch(&mut e, inserts);
                codec::encode_batch(&mut e, deletes);
            }
            WalRecord::EpochCommit { epoch } => {
                e.u8(KIND_EPOCH_COMMIT);
                e.u64(*epoch);
            }
        }
        e.into_bytes()
    }

    /// Decode one payload (no framing). The whole payload must be consumed.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, CodecError> {
        let mut d = Dec::new(payload);
        let rec = match d.u8()? {
            KIND_INGEST => WalRecord::Ingest {
                epoch: d.u64()?,
                table: TableId(d.u32()?),
                inserts: codec::decode_batch(&mut d)?,
                deletes: codec::decode_batch(&mut d)?,
            },
            KIND_EPOCH_COMMIT => WalRecord::EpochCommit { epoch: d.u64()? },
            k => return Err(CodecError::Invalid(format!("record kind {k}"))),
        };
        if !d.is_empty() {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after record",
                d.remaining()
            )));
        }
        Ok(rec)
    }
}

/// Appends CRC-framed records to a sink, flushing after every append so a
/// crash can lose at most the record being written.
pub struct WalWriter {
    sink: Box<dyn Write + Send>,
    records: u64,
    bytes: u64,
}

impl fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalWriter")
            .field("records", &self.records)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl WalWriter {
    /// Start a fresh log at `path` (truncates).
    pub fn create(path: &Path) -> std::io::Result<WalWriter> {
        Ok(WalWriter::from_sink(Box::new(std::fs::File::create(path)?)))
    }

    /// Continue appending to an existing log. `valid_bytes` (from a prior
    /// [`scan_wal`]) truncates any torn tail first, so new records are
    /// never written after garbage.
    pub fn open_append(path: &Path, valid_bytes: u64) -> std::io::Result<WalWriter> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        f.set_len(valid_bytes)?;
        // Position after the valid prefix — a fresh handle writes at
        // offset 0 otherwise, clobbering the records it just kept.
        f.seek(std::io::SeekFrom::Start(valid_bytes))?;
        let mut w = WalWriter::from_sink(Box::new(f));
        w.bytes = valid_bytes;
        Ok(w)
    }

    /// Wrap an arbitrary sink (fault-injection tests pass a
    /// [`crate::failpoint::FailpointFile`] here).
    pub fn from_sink(sink: Box<dyn Write + Send>) -> WalWriter {
        WalWriter {
            sink,
            records: 0,
            bytes: 0,
        }
    }

    /// Append one record: `[len][crc][payload]`, then flush.
    pub fn append(&mut self, rec: &WalRecord) -> std::io::Result<()> {
        let payload = rec.encode();
        debug_assert!(!payload.is_empty());
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.sink.write_all(&frame)?;
        self.sink.flush()?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Records appended through this writer.
    pub fn records_appended(&self) -> u64 {
        self.records
    }

    /// Bytes of valid log this writer has produced (including any valid
    /// prefix it resumed from).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// Why a [`scan_wal`] stopped consuming input. Everything except [`Eof`]
/// marks the first damaged byte offset; records before it are all intact.
///
/// [`Eof`]: WalStop::Eof
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalStop {
    /// The log ended exactly on a record boundary.
    Eof,
    /// Fewer than 8 header bytes remained (torn header).
    TruncatedHeader { offset: u64 },
    /// The header promised more payload than the file holds (torn write).
    TruncatedPayload { offset: u64 },
    /// Payload bytes do not match the stored CRC (bit rot / partial
    /// overwrite).
    CrcMismatch { offset: u64 },
    /// A zero length prefix — zero-filled page or pre-allocated space.
    ZeroLength { offset: u64 },
    /// Length prefix beyond [`MAX_RECORD_BYTES`] (corrupt header).
    Oversized { offset: u64, len: u32 },
    /// CRC matched but the payload does not decode — only possible when
    /// the writer and reader disagree about the format.
    BadRecord { offset: u64, why: String },
}

impl WalStop {
    /// True when the log ended cleanly with no damaged suffix.
    pub fn is_clean(&self) -> bool {
        matches!(self, WalStop::Eof)
    }
}

impl fmt::Display for WalStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalStop::Eof => f.write_str("clean end of log"),
            WalStop::TruncatedHeader { offset } => {
                write!(f, "torn record header at byte {offset}")
            }
            WalStop::TruncatedPayload { offset } => {
                write!(f, "torn record payload at byte {offset}")
            }
            WalStop::CrcMismatch { offset } => write!(f, "CRC mismatch at byte {offset}"),
            WalStop::ZeroLength { offset } => {
                write!(f, "zero length prefix at byte {offset} (zeroed page)")
            }
            WalStop::Oversized { offset, len } => {
                write!(f, "implausible record length {len} at byte {offset}")
            }
            WalStop::BadRecord { offset, why } => {
                write!(f, "undecodable record at byte {offset}: {why}")
            }
        }
    }
}

/// Result of scanning a log: the longest valid record prefix, how many
/// bytes it spans, and why scanning stopped.
#[derive(Debug)]
pub struct WalScan {
    pub records: Vec<WalRecord>,
    /// Bytes covered by the valid prefix; an appender resuming this log
    /// truncates to this length first.
    pub valid_bytes: u64,
    pub stop: WalStop,
}

/// Scan an in-memory log image. Never fails: damage terminates the scan
/// and is reported in [`WalScan::stop`].
pub fn scan_wal_bytes(buf: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let stop = loop {
        if pos == buf.len() {
            break WalStop::Eof;
        }
        let offset = pos as u64;
        if buf.len() - pos < 8 {
            break WalStop::TruncatedHeader { offset };
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 {
            break WalStop::ZeroLength { offset };
        }
        if len > MAX_RECORD_BYTES {
            break WalStop::Oversized { offset, len };
        }
        let len = len as usize;
        if buf.len() - pos - 8 < len {
            break WalStop::TruncatedPayload { offset };
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break WalStop::CrcMismatch { offset };
        }
        match WalRecord::decode(payload) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                break WalStop::BadRecord {
                    offset,
                    why: e.to_string(),
                }
            }
        }
        pos += 8 + len;
    };
    WalScan {
        records,
        valid_bytes: pos as u64,
        stop,
    }
}

/// Scan a log file. A missing file is an empty log (a crash can land
/// between WAL rotation and the first append).
pub fn scan_wal(path: &Path) -> Result<WalScan, RecoveryError> {
    let mut buf = Vec::new();
    match std::fs::File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)
                .map_err(|e| RecoveryError::Io(format!("reading {}: {e}", path.display())))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            return Err(RecoveryError::Io(format!(
                "opening {}: {e}",
                path.display()
            )))
        }
    }
    Ok(scan_wal_bytes(&buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::schema::{AttrId, Attribute, Schema};
    use mvmqo_relalg::types::{DataType, Value};

    fn sample_batch() -> Batch {
        let schema = Schema::new(vec![Attribute {
            id: AttrId(0),
            name: "t.k".into(),
            data_type: DataType::Int,
        }]);
        Batch::from_rows(schema, &[vec![Value::Int(1)], vec![Value::Int(2)]])
    }

    fn sample_log() -> Vec<u8> {
        let sink: Vec<u8> = Vec::new();
        let mut w = WalWriter::from_sink(Box::new(sink));
        // Writer owns the sink, so build the image by re-encoding frames.
        let mut out = Vec::new();
        for rec in [
            WalRecord::Ingest {
                epoch: 1,
                table: TableId(0),
                inserts: sample_batch(),
                deletes: Batch::empty(sample_batch().schema().clone()),
            },
            WalRecord::EpochCommit { epoch: 1 },
        ] {
            let payload = rec.encode();
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&crc32(&payload).to_le_bytes());
            out.extend_from_slice(&payload);
            w.append(&rec).unwrap();
        }
        assert_eq!(w.bytes_written(), out.len() as u64);
        out
    }

    #[test]
    fn full_log_scans_cleanly() {
        let log = sample_log();
        let scan = scan_wal_bytes(&log);
        assert_eq!(scan.stop, WalStop::Eof);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_bytes, log.len() as u64);
        assert!(matches!(
            scan.records[1],
            WalRecord::EpochCommit { epoch: 1 }
        ));
    }

    #[test]
    fn every_truncation_point_recovers_a_prefix() {
        let log = sample_log();
        for cut in 0..log.len() {
            let scan = scan_wal_bytes(&log[..cut]);
            assert!(scan.valid_bytes <= cut as u64);
            // Records in the prefix must re-scan identically.
            let again = scan_wal_bytes(&log[..scan.valid_bytes as usize]);
            assert_eq!(again.stop, WalStop::Eof);
            assert_eq!(again.records.len(), scan.records.len());
        }
    }

    #[test]
    fn zero_page_stops_the_scan() {
        let mut log = sample_log();
        let valid = log.len() as u64;
        log.extend_from_slice(&[0u8; 4096]);
        let scan = scan_wal_bytes(&log);
        assert_eq!(scan.stop, WalStop::ZeroLength { offset: valid });
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_bytes, valid);
    }

    #[test]
    fn open_append_resumes_after_the_valid_prefix() {
        // Regression: a resumed writer must append *after* the surviving
        // records, not clobber them from offset 0.
        let path =
            std::env::temp_dir().join(format!("mvmqo-wal-open-append-{}.log", std::process::id()));
        let log = sample_log();
        std::fs::write(&path, &log).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        let mut w = WalWriter::open_append(&path, scan.valid_bytes).unwrap();
        w.append(&WalRecord::EpochCommit { epoch: 2 }).unwrap();
        drop(w);
        let again = scan_wal(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(again.stop, WalStop::Eof);
        assert_eq!(again.records.len(), 3);
        assert_eq!(again.records[..2], scan.records[..]);
        assert!(matches!(
            again.records[2],
            WalRecord::EpochCommit { epoch: 2 }
        ));
    }

    #[test]
    fn bit_flip_is_caught_by_crc() {
        let log = sample_log();
        for byte in 8..log.len().min(40) {
            let mut bad = log.clone();
            bad[byte] ^= 0x40;
            let scan = scan_wal_bytes(&bad);
            assert!(
                !scan.stop.is_clean() || scan.records != scan_wal_bytes(&log).records,
                "flip at byte {byte} went unnoticed"
            );
        }
    }
}
