//! CRC32 (IEEE 802.3 polynomial) for WAL and snapshot framing.
//!
//! Hand-rolled table-driven implementation — the durability layer depends
//! on no external crates. The table is built at compile time, so runtime
//! cost is one lookup per byte.

/// Reflected IEEE polynomial (the one used by zip, PNG, Ethernet).
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `bytes` (initial value all-ones, final XOR all-ones).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"the quick brown fox");
        let mut corrupted = b"the quick brown fox".to_vec();
        for i in 0..corrupted.len() {
            corrupted[i] ^= 0x01;
            assert_ne!(crc32(&corrupted), base, "flip at byte {i} undetected");
            corrupted[i] ^= 0x01;
        }
    }
}
