//! The database: base tables, materialized results, and pending deltas.
//!
//! [`Database`] is the runtime state a refresh cycle operates on: the base
//! relations (by [`TableId`]), a store of materialized results (by name —
//! user views, permanently materialized extras, and temporaries all live
//! here), and helpers to apply update batches. The optimizer reads only
//! statistics; the executor reads and mutates the stored rows.

use crate::delta::{DeltaBatch, DeltaSet};
use crate::error::StorageError;
use crate::index::IndexKind;
use crate::table::StoredTable;
use mvmqo_relalg::catalog::{Catalog, TableId};
use mvmqo_relalg::schema::AttrId;
use mvmqo_relalg::stats::RelStats;
use std::collections::HashMap;

/// In-memory database instance.
///
/// Cloning is cheap: every [`StoredTable`] clones as a handle copy
/// (columns, row caches, and indices are `Arc`-shared and copy-on-write),
/// so a full-database clone is O(tables × width). Transactional epochs
/// rely on this to stage the next state and install it by swap.
#[derive(Debug, Clone, Default)]
pub struct Database {
    base: HashMap<TableId, StoredTable>,
    mats: HashMap<String, StoredTable>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Register (or replace) a base table's contents.
    pub fn put_base(&mut self, id: TableId, table: StoredTable) {
        self.base.insert(id, table);
    }

    /// Contents of a base table. Returns a typed error (instead of
    /// panicking) when the table was never loaded, so long-lived engines can
    /// reject bad requests without aborting.
    pub fn base(&self, id: TableId) -> Result<&StoredTable, StorageError> {
        self.base.get(&id).ok_or(StorageError::TableNotLoaded(id))
    }

    pub fn base_mut(&mut self, id: TableId) -> Result<&mut StoredTable, StorageError> {
        self.base
            .get_mut(&id)
            .ok_or(StorageError::TableNotLoaded(id))
    }

    pub fn has_base(&self, id: TableId) -> bool {
        self.base.contains_key(&id)
    }

    /// Store a materialized result under `name`.
    pub fn put_mat(&mut self, name: impl Into<String>, table: StoredTable) {
        self.mats.insert(name.into(), table);
    }

    pub fn mat(&self, name: &str) -> Option<&StoredTable> {
        self.mats.get(name)
    }

    pub fn mat_mut(&mut self, name: &str) -> Option<&mut StoredTable> {
        self.mats.get_mut(name)
    }

    pub fn drop_mat(&mut self, name: &str) -> bool {
        self.mats.remove(name).is_some()
    }

    pub fn mat_names(&self) -> impl Iterator<Item = &str> {
        self.mats.keys().map(String::as_str)
    }

    /// Check that every tuple in `delta` matches the stored table's arity.
    /// A bad batch must be rejected before any of it is applied.
    pub fn validate_delta(&self, id: TableId, delta: &DeltaBatch) -> Result<(), StorageError> {
        let table = self.base(id)?;
        let expected = table.schema().len();
        for row in delta.inserts.iter().chain(&delta.deletes) {
            if row.len() != expected {
                return Err(StorageError::ArityMismatch {
                    table: id,
                    expected,
                    got: row.len(),
                });
            }
        }
        Ok(())
    }

    /// Apply one relation's delta batch to the base table.
    pub fn apply_base_delta(
        &mut self,
        id: TableId,
        delta: &DeltaBatch,
    ) -> Result<(), StorageError> {
        self.base_mut(id)?.apply_delta(delta);
        Ok(())
    }

    /// Apply every batch in a [`DeltaSet`] (used by tests that want the
    /// post-update ground truth in one step; the maintenance executor
    /// applies them one at a time instead, per §3.2.2).
    pub fn apply_all(&mut self, deltas: &DeltaSet) -> Result<(), StorageError> {
        let tables: Vec<TableId> = deltas.tables().collect();
        for t in tables {
            if let Some(batch) = deltas.get(t) {
                self.apply_base_delta(t, batch)?;
            }
        }
        Ok(())
    }

    /// Create an index on a base table.
    pub fn create_base_index(
        &mut self,
        id: TableId,
        attr: AttrId,
        kind: IndexKind,
    ) -> Result<(), StorageError> {
        self.base_mut(id)?.create_index(attr, kind);
        Ok(())
    }

    /// Live statistics for a base table: catalog column statistics rescaled
    /// to the actual stored row count.
    pub fn live_stats(&self, catalog: &Catalog, id: TableId) -> RelStats {
        let def = catalog.table(id);
        let actual = self.base.get(&id).map_or(0, StoredTable::len) as f64;
        let mut stats = def.stats.clone();
        if def.stats.rows > 0.0 && actual != def.stats.rows {
            stats = stats.scaled(actual / def.stats.rows);
            stats.rows = actual;
        } else {
            stats.rows = actual;
        }
        stats
    }

    /// Total stored tuples (bases + materialized results) — used by space
    /// accounting and tests.
    pub fn total_tuples(&self) -> usize {
        self.base.values().map(StoredTable::len).sum::<usize>()
            + self.mats.values().map(StoredTable::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::catalog::ColumnSpec;
    use mvmqo_relalg::schema::{Attribute, Schema};
    use mvmqo_relalg::types::{DataType, Value};

    fn setup() -> (Catalog, TableId, Database) {
        let mut c = Catalog::new();
        let t = c.add_table("t", vec![ColumnSpec::key("k", DataType::Int)], 4.0, &["k"]);
        let mut db = Database::new();
        let schema = c.table(t).schema.clone();
        db.put_base(
            t,
            StoredTable::with_rows(schema, (0..4).map(|i| vec![Value::Int(i)]).collect()),
        );
        (c, t, db)
    }

    #[test]
    fn apply_base_delta_mutates_rows() {
        let (_, t, mut db) = setup();
        db.apply_base_delta(
            t,
            &DeltaBatch::new(vec![vec![Value::Int(10)]], vec![vec![Value::Int(0)]]),
        )
        .unwrap();
        let base = db.base(t).unwrap();
        assert_eq!(base.len(), 4);
        assert!(base.rows().iter().any(|r| r[0] == Value::Int(10)));
        assert!(!base.rows().iter().any(|r| r[0] == Value::Int(0)));
    }

    #[test]
    fn live_stats_track_actual_rowcount() {
        let (c, t, mut db) = setup();
        db.apply_base_delta(t, &DeltaBatch::new(vec![vec![Value::Int(99)]], vec![]))
            .unwrap();
        let s = db.live_stats(&c, t);
        assert_eq!(s.rows, 5.0);
    }

    #[test]
    fn mats_are_named_and_droppable() {
        let (_, _, mut db) = setup();
        let schema = Schema::new(vec![Attribute {
            id: AttrId(100),
            name: "m.x".into(),
            data_type: DataType::Int,
        }]);
        db.put_mat(
            "temp1",
            StoredTable::with_rows(schema, vec![vec![Value::Int(1)]]),
        );
        assert_eq!(db.mat("temp1").unwrap().len(), 1);
        assert!(db.drop_mat("temp1"));
        assert!(db.mat("temp1").is_none());
        assert!(!db.drop_mat("temp1"));
    }

    #[test]
    fn apply_all_applies_every_batch() {
        let (_, t, mut db) = setup();
        let mut ds = DeltaSet::new();
        ds.insert(
            t,
            DeltaBatch::new(vec![vec![Value::Int(7)], vec![Value::Int(8)]], vec![]),
        );
        db.apply_all(&ds).unwrap();
        assert_eq!(db.base(t).unwrap().len(), 6);
    }

    #[test]
    fn missing_base_is_a_typed_error() {
        let db = Database::new();
        assert_eq!(
            db.base(TableId(3)).unwrap_err(),
            crate::error::StorageError::TableNotLoaded(TableId(3))
        );
        let mut db = Database::new();
        assert!(db
            .apply_base_delta(TableId(3), &DeltaBatch::default())
            .is_err());
    }

    #[test]
    fn validate_delta_rejects_arity_mismatch() {
        let (_, t, db) = setup();
        let bad = DeltaBatch::new(vec![vec![Value::Int(1), Value::Int(2)]], vec![]);
        assert!(matches!(
            db.validate_delta(t, &bad),
            Err(crate::error::StorageError::ArityMismatch {
                expected: 1,
                got: 2,
                ..
            })
        ));
        let good = DeltaBatch::new(vec![vec![Value::Int(1)]], vec![]);
        assert!(db.validate_delta(t, &good).is_ok());
    }
}
