//! Engine-wide fault injection.
//!
//! [`FailpointFile`](crate::FailpointFile) tears *byte streams* — it models
//! what a crash leaves on disk. This module models what a fault does to a
//! *live* engine: a [`FaultRegistry`] is threaded through the executor and
//! the warehouse, and every interesting code path calls
//! [`FaultRegistry::hit`] with a static site name before doing its work.
//! When a [`FaultPlan`] is armed, exactly one such hit fires — either as a
//! typed [`FaultError`] (the path must propagate it as a `Result`) or as a
//! panic (the path must be unwind-safe) — and the chaos tests assert the
//! engine aborts the epoch cleanly and retries to convergence.
//!
//! Addressing is by **dynamic ordinal**: every hit increments a counter, so
//! ordinal `k` names the `k`-th fault-site crossing of a whole workload, a
//! stable coordinate under a deterministic (serial) execution. Sites can
//! also be armed by name (`nth` occurrence of that site), which is what the
//! CLI `chaos` command uses.
//!
//! The registry is instance-based (no globals): tests run concurrently in
//! one process, and each engine owns its own registry. When nothing is
//! armed and nothing is recording, a hit is a single relaxed atomic load.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// How an armed fault manifests at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The site returns `Err(FaultError)`; the caller must propagate it.
    Error,
    /// The site panics; the caller must be unwind-safe.
    Panic,
}

/// Which hit of the workload fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTrigger {
    /// The `k`-th fault-site crossing overall (0-based).
    Ordinal(u64),
    /// The `nth` crossing (0-based) of the named site.
    Site { name: String, nth: u64 },
}

/// One armed fault: where it fires and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    pub trigger: FaultTrigger,
    pub mode: FaultMode,
}

impl FaultPlan {
    pub fn ordinal(ordinal: u64, mode: FaultMode) -> FaultPlan {
        FaultPlan {
            trigger: FaultTrigger::Ordinal(ordinal),
            mode,
        }
    }

    pub fn site(name: impl Into<String>, nth: u64, mode: FaultMode) -> FaultPlan {
        FaultPlan {
            trigger: FaultTrigger::Site {
                name: name.into(),
                nth,
            },
            mode,
        }
    }
}

/// The typed error an armed [`FaultMode::Error`] site returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// Static site name (e.g. `"wal:append"`).
    pub site: String,
    /// Dynamic ordinal at which the fault fired.
    pub ordinal: u64,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {}#{}", self.site, self.ordinal)
    }
}

impl std::error::Error for FaultError {}

/// A fault that fired (for post-mortem assertions in tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    pub site: String,
    pub ordinal: u64,
    pub mode: FaultMode,
}

#[derive(Debug, Default)]
struct Inner {
    plan: Option<FaultPlan>,
    /// Per-site hit counts (for `FaultTrigger::Site` nth-matching).
    site_counts: Vec<(&'static str, u64)>,
    /// Site names in hit order, populated in record mode.
    recorded: Vec<&'static str>,
    fired: Option<FiredFault>,
}

/// Registry of fault-injection sites. See the module docs.
#[derive(Debug, Default)]
pub struct FaultRegistry {
    /// True when armed or recording; the only state the fast path reads.
    active: AtomicBool,
    counter: AtomicU64,
    recording: AtomicBool,
    inner: Mutex<Inner>,
}

impl FaultRegistry {
    pub fn new() -> FaultRegistry {
        FaultRegistry::default()
    }

    /// A shared, permanently inert registry for callers that don't inject.
    pub fn none() -> &'static FaultRegistry {
        static NONE: OnceLock<FaultRegistry> = OnceLock::new();
        NONE.get_or_init(FaultRegistry::new)
    }

    /// Arm `plan`, resetting the ordinal counter and per-site counts so the
    /// next workload starts from ordinal 0.
    pub fn arm(&self, plan: FaultPlan) {
        let mut inner = self.lock();
        inner.plan = Some(plan);
        inner.site_counts.clear();
        inner.fired = None;
        self.counter.store(0, Ordering::SeqCst);
        self.recording.store(false, Ordering::SeqCst);
        self.active.store(true, Ordering::SeqCst);
    }

    /// Disarm; already-fired information is retained for inspection.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.plan = None;
        inner.site_counts.clear();
        self.recording.store(false, Ordering::SeqCst);
        self.active.store(false, Ordering::SeqCst);
    }

    /// Start record mode: hits are logged (never fired) until
    /// [`take_recorded`](FaultRegistry::take_recorded).
    pub fn record(&self) {
        let mut inner = self.lock();
        inner.plan = None;
        inner.site_counts.clear();
        inner.recorded.clear();
        inner.fired = None;
        self.counter.store(0, Ordering::SeqCst);
        self.recording.store(true, Ordering::SeqCst);
        self.active.store(true, Ordering::SeqCst);
    }

    /// Stop record mode and return the site names in hit order; index `k`
    /// is the site that ordinal `k` would fire at.
    pub fn take_recorded(&self) -> Vec<&'static str> {
        let mut inner = self.lock();
        let out = std::mem::take(&mut inner.recorded);
        self.recording.store(false, Ordering::SeqCst);
        self.active.store(false, Ordering::SeqCst);
        out
    }

    /// The fault that fired under the current/last plan, if any.
    pub fn fired(&self) -> Option<FiredFault> {
        self.lock().fired.clone()
    }

    /// Whether an armed plan is still waiting to fire.
    pub fn armed(&self) -> bool {
        let inner = self.lock();
        inner.plan.is_some() && inner.fired.is_none()
    }

    /// Cross a fault site. Inert unless armed or recording (one relaxed
    /// atomic load). Fires at most once per armed plan.
    pub fn hit(&self, site: &'static str) -> Result<(), FaultError> {
        if !self.active.load(Ordering::Relaxed) {
            return Ok(());
        }
        self.hit_slow(site)
    }

    fn hit_slow(&self, site: &'static str) -> Result<(), FaultError> {
        let ordinal = self.counter.fetch_add(1, Ordering::SeqCst);
        if self.recording.load(Ordering::SeqCst) {
            self.lock().recorded.push(site);
            return Ok(());
        }
        let mode = {
            let mut inner = self.lock();
            let nth = {
                match inner.site_counts.iter_mut().find(|(s, _)| *s == site) {
                    Some((_, n)) => {
                        let nth = *n;
                        *n += 1;
                        nth
                    }
                    None => {
                        inner.site_counts.push((site, 1));
                        0
                    }
                }
            };
            let Some(plan) = inner.plan.as_ref() else {
                return Ok(());
            };
            if inner.fired.is_some() {
                return Ok(());
            }
            let matches = match &plan.trigger {
                FaultTrigger::Ordinal(k) => *k == ordinal,
                FaultTrigger::Site { name, nth: want } => name == site && *want == nth,
            };
            if !matches {
                return Ok(());
            }
            let mode = plan.mode;
            inner.fired = Some(FiredFault {
                site: site.to_string(),
                ordinal,
                mode,
            });
            mode
        };
        match mode {
            FaultMode::Error => Err(FaultError {
                site: site.to_string(),
                ordinal,
            }),
            FaultMode::Panic => panic!("injected panic at {site}#{ordinal}"),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking hit poisons nothing we can't keep using: Inner holds
        // plain bookkeeping, and every mutation completes before a fire.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_registry_never_fires() {
        let f = FaultRegistry::new();
        for _ in 0..10 {
            assert!(f.hit("a").is_ok());
        }
        assert!(f.fired().is_none());
    }

    #[test]
    fn ordinal_arming_fires_exactly_once() {
        let f = FaultRegistry::new();
        f.arm(FaultPlan::ordinal(2, FaultMode::Error));
        assert!(f.hit("a").is_ok());
        assert!(f.hit("b").is_ok());
        let err = f.hit("c").unwrap_err();
        assert_eq!(err.site, "c");
        assert_eq!(err.ordinal, 2);
        // Later hits are inert: the plan fired.
        assert!(f.hit("d").is_ok());
        let fired = f.fired().unwrap();
        assert_eq!(fired.site, "c");
        assert_eq!(fired.mode, FaultMode::Error);
    }

    #[test]
    fn site_arming_counts_per_site_occurrences() {
        let f = FaultRegistry::new();
        f.arm(FaultPlan::site("b", 1, FaultMode::Error));
        assert!(f.hit("b").is_ok()); // b#0
        assert!(f.hit("a").is_ok());
        let err = f.hit("b").unwrap_err(); // b#1 fires
        assert_eq!(err.site, "b");
        assert_eq!(err.ordinal, 2);
    }

    #[test]
    fn panic_mode_panics() {
        let f = FaultRegistry::new();
        f.arm(FaultPlan::ordinal(0, FaultMode::Panic));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.hit("x")));
        assert!(r.is_err());
        assert_eq!(f.fired().unwrap().site, "x");
        // The registry stays usable after the unwind.
        assert!(f.hit("y").is_ok());
    }

    #[test]
    fn record_mode_logs_without_firing() {
        let f = FaultRegistry::new();
        f.record();
        assert!(f.hit("a").is_ok());
        assert!(f.hit("b").is_ok());
        assert!(f.hit("a").is_ok());
        assert_eq!(f.take_recorded(), vec!["a", "b", "a"]);
        // Record mode off: inert again.
        assert!(f.hit("z").is_ok());
        assert!(f.take_recorded().is_empty());
    }

    #[test]
    fn clear_disarms_pending_plan() {
        let f = FaultRegistry::new();
        f.arm(FaultPlan::ordinal(0, FaultMode::Error));
        assert!(f.armed());
        f.clear();
        assert!(!f.armed());
        assert!(f.hit("a").is_ok());
    }
}
