//! # mvmqo-warehouse
//!
//! A stateful warehouse engine on top of the `mvmqo` reproduction of
//! *Materialized View Selection and Maintenance Using Multi-Query
//! Optimization* (SIGMOD 2001).
//!
//! The paper optimizes the maintenance of a fixed view set once, offline.
//! This crate runs the same machinery *continuously*:
//!
//! * [`Warehouse`] — owns the database, catalog, view set, and the current
//!   optimizer plan; `register_view`/`drop_view` re-run the §6 selection
//!   over the whole set, `ingest` queues arbitrary δ⁺/δ⁻ batches (§5.2's
//!   2n update numbering), `run_epoch` executes the shared maintenance
//!   program while persisting permanent materializations and indices
//!   across epochs, and `query`/`verify` serve views with staleness and
//!   consistency checks;
//! * [`policy`] — adaptive re-optimization: re-plan on view-set changes,
//!   cumulative delta drift, update-shape changes, or realized-vs-estimated
//!   cost divergence;
//! * [`script`] — a tiny script/REPL language over the TPC-D substrate so
//!   new warehouse scenarios can be driven without writing Rust (the
//!   `warehouse` binary);
//! * [`durability`] — the engine's snapshot image: what `save` persists
//!   (atomic columnar snapshot + manifest) and `recover` reloads before
//!   replaying the WAL tail through the ordinary ingest/epoch path.

// Panic-free discipline: the engine is long-lived, so `unwrap`/`expect` in
// production code needs a per-site invariant justification or a typed
// error. (Tests are exempt — see clippy.toml.)
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod durability;
pub mod engine;
pub mod error;
pub mod policy;
pub mod script;

pub use durability::{SnapshotData, ViewMatImage};
pub use engine::{AbortInfo, EpochReport, QueryResult, RecoveryInfo, ReplanRecord, Warehouse};
pub use error::WarehouseError;
pub use mvmqo_core::session::PlanMode;
pub use mvmqo_storage::faults::{FaultMode, FaultPlan, FaultRegistry, FaultTrigger};
pub use policy::{ReoptPolicy, ReoptTrigger};
pub use script::Session;
