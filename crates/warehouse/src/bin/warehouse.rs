//! `warehouse` — script-driven REPL over the stateful warehouse engine.
//!
//! ```text
//! cargo run -p mvmqo-warehouse --bin warehouse [SCRIPT] [--sf SF] [--seed SEED] [--parallel [N]]
//! ```
//!
//! With a SCRIPT argument, executes its lines and exits non-zero on the
//! first error; without one, reads commands from stdin (one per line; see
//! `help`). The grammar is documented in `mvmqo_warehouse::script`.

use mvmqo_warehouse::Session;
use std::io::{BufRead, Write};

fn main() {
    let mut sf = 0.002;
    let mut seed = 42u64;
    let mut parallel = false;
    let mut threads = 0usize;
    let mut script: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sf" => sf = parse_or_die(args.next(), "--sf"),
            "--seed" => seed = parse_or_die(args.next(), "--seed"),
            "--parallel" => {
                parallel = true;
                // Optional worker count: `--parallel 4`; bare `--parallel`
                // auto-detects from the host.
                if let Some(n) = args.peek().and_then(|a| a.parse::<usize>().ok()) {
                    threads = n;
                    args.next();
                }
            }
            "--help" | "-h" => {
                println!("usage: warehouse [SCRIPT] [--sf SF] [--seed SEED] [--parallel [N]]\n");
                println!("  --parallel [N]  run epochs under the parallel scheduler,");
                println!("                  optionally pinned to N worker threads");
                println!("{}", mvmqo_warehouse::script::HELP);
                return;
            }
            other if script.is_none() && !other.starts_with('-') => {
                script = Some(other.to_string())
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut session = Session::new(sf, seed);
    session.warehouse.set_parallel(parallel);
    session.warehouse.set_threads(threads);
    match script {
        Some(path) => run_script(&mut session, &path),
        None => repl(&mut session),
    }
}

fn parse_or_die<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .as_deref()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a numeric argument");
            std::process::exit(2);
        })
}

fn run_script(session: &mut Session, path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    for (lineno, line) in text.lines().enumerate() {
        match session.exec_line(line) {
            Ok(out) => {
                if !out.is_empty() {
                    println!("{}", out.trim_end());
                }
            }
            Err(e) => {
                eprintln!("{path}:{}: {e}", lineno + 1);
                std::process::exit(1);
            }
        }
    }
}

fn repl(session: &mut Session) {
    println!("mvmqo warehouse (TPC-D); type `help` for commands, ctrl-d to exit");
    let stdin = std::io::stdin();
    loop {
        print!("warehouse> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => match session.exec_line(&line) {
                Ok(out) => {
                    if !out.is_empty() {
                        println!("{}", out.trim_end());
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
    }
}
