//! Typed warehouse errors.
//!
//! A long-lived engine must never abort on bad input: registering a
//! malformed view, ingesting a batch for an unknown table, or querying a
//! view that was never registered all surface as [`WarehouseError`] and
//! leave the engine fully usable.

use mvmqo_storage::error::{RecoveryError, StorageError};
use std::fmt;

/// Errors raised by the [`crate::Warehouse`] API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarehouseError {
    /// No registered view with this name.
    UnknownView(String),
    /// A view with this name is already registered.
    DuplicateView(String),
    /// The view expression failed validation against the catalog.
    InvalidView { name: String, reason: String },
    /// A storage-layer failure (unknown table, malformed batch, ...).
    Storage(StorageError),
    /// Loading durable state failed (missing manifest, corrupt snapshot,
    /// unreadable files). A torn WAL tail is *not* an error — prefix
    /// recovery absorbs it.
    Recovery(RecoveryError),
    /// Writing durable state (WAL append or snapshot) failed.
    Durability(String),
    /// A durability operation was requested but `wal on` was never issued.
    DurabilityDisabled,
    /// An epoch transaction failed before its commit point and was rolled
    /// back: the staged state was dropped, the engine still serves exact
    /// pre-epoch answers, and the pending delta queue is intact. Retryable
    /// — call `run_epoch` again (after fixing/clearing the cause).
    EpochAborted {
        /// The epoch the transaction was trying to commit.
        epoch: u64,
        /// Fault-site label of the failure (e.g. `"exec:hash-join"`).
        site: String,
        /// Human-readable cause (error or panic message).
        cause: String,
    },
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::UnknownView(name) => write!(f, "unknown view {name:?}"),
            WarehouseError::DuplicateView(name) => {
                write!(f, "view {name:?} is already registered")
            }
            WarehouseError::InvalidView { name, reason } => {
                write!(f, "invalid view {name:?}: {reason}")
            }
            WarehouseError::Storage(e) => write!(f, "{e}"),
            WarehouseError::Recovery(e) => write!(f, "{e}"),
            WarehouseError::Durability(why) => write!(f, "durability failure: {why}"),
            WarehouseError::DurabilityDisabled => {
                f.write_str("durability is not enabled (run `wal on <dir>` first)")
            }
            WarehouseError::EpochAborted { epoch, site, cause } => {
                write!(
                    f,
                    "epoch {epoch} aborted at {site}: {cause} (pre-epoch state retained; retry)"
                )
            }
        }
    }
}

impl std::error::Error for WarehouseError {}

impl From<StorageError> for WarehouseError {
    fn from(e: StorageError) -> Self {
        WarehouseError::Storage(e)
    }
}

impl From<RecoveryError> for WarehouseError {
    fn from(e: RecoveryError) -> Self {
        WarehouseError::Recovery(e)
    }
}
