//! Typed warehouse errors.
//!
//! A long-lived engine must never abort on bad input: registering a
//! malformed view, ingesting a batch for an unknown table, or querying a
//! view that was never registered all surface as [`WarehouseError`] and
//! leave the engine fully usable.

use mvmqo_storage::error::StorageError;
use std::fmt;

/// Errors raised by the [`crate::Warehouse`] API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarehouseError {
    /// No registered view with this name.
    UnknownView(String),
    /// A view with this name is already registered.
    DuplicateView(String),
    /// The view expression failed validation against the catalog.
    InvalidView { name: String, reason: String },
    /// A storage-layer failure (unknown table, malformed batch, ...).
    Storage(StorageError),
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::UnknownView(name) => write!(f, "unknown view {name:?}"),
            WarehouseError::DuplicateView(name) => {
                write!(f, "view {name:?} is already registered")
            }
            WarehouseError::InvalidView { name, reason } => {
                write!(f, "invalid view {name:?}: {reason}")
            }
            WarehouseError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WarehouseError {}

impl From<StorageError> for WarehouseError {
    fn from(e: StorageError) -> Self {
        WarehouseError::Storage(e)
    }
}
