//! The engine's snapshot image: what a `save` persists and `recover` reloads.
//!
//! A snapshot is a full columnar image of the engine at one epoch: the
//! catalog (with fitted statistics and the attribute-allocator position),
//! the view definitions in registration order, every base [`StoredTable`],
//! the pending delta queue, and — per view — the maintained root
//! materialization with its hidden aggregate/distinct support state
//! (footnote 1 of the paper: the counts that make deletions applicable).
//!
//! The optimizer session itself is *not* byte-serialized. The memo and
//! AND-OR DAG are reconstructed deterministically at recovery by
//! re-registering the persisted views in order against the persisted
//! catalog — the first one-view plan is cold, every subsequent plan
//! (including all post-recovery replans) runs incrementally against the
//! rebuilt memo. The snapshot also records the selection the old session
//! had chosen, so recovery can report whether the warm re-plan landed on
//! the same set.
//!
//! Materializations are persisted **per view root, keyed by view name** —
//! never by raw node id. `EqId`s are an artifact of one session's DAG
//! construction order and do not survive a restart; view names do. Interior
//! permanent materializations rebuild at the first post-recovery epoch's
//! setup (correct, at the cost of one rebuild).

use mvmqo_exec::{AggState, DistinctState};
use mvmqo_relalg::catalog::{Catalog, TableId};
use mvmqo_relalg::codec::{self, CodecError, Dec, Enc};
use mvmqo_relalg::logical::ViewDef;
use mvmqo_relalg::tuple::Tuple;
use mvmqo_relalg::types::Value;
use mvmqo_relalg::Batch;
use mvmqo_storage::snapshot::{decode_stored_table, encode_stored_table};
use mvmqo_storage::StoredTable;

/// One view's maintained root materialization.
#[derive(Debug)]
pub struct ViewMatImage {
    /// View name — the only cross-session-stable key for a root.
    pub name: String,
    /// Whether the stored image was fresh (maintained through the last
    /// epoch) when the snapshot was taken.
    pub fresh: bool,
    pub table: StoredTable,
    pub agg: Option<AggState>,
    pub distinct: Option<DistinctState>,
}

/// Full engine image at one epoch.
#[derive(Debug)]
pub struct SnapshotData {
    pub epoch: u64,
    /// Drift counter at snapshot time (tuples ingested since last re-plan).
    pub ingested_since_plan: u64,
    pub catalog: Catalog,
    /// Views in registration order — recovery re-registers them in this
    /// order so the rebuilt DAG unifies identically.
    pub views: Vec<ViewDef>,
    pub base_tables: Vec<(TableId, StoredTable)>,
    /// Observed per-epoch (inserts, deletes) EMA rates.
    pub observed: Vec<(TableId, f64, f64)>,
    /// Queued-but-unapplied deltas as typed columnar batches.
    pub pending: Vec<(TableId, Batch, Batch)>,
    pub view_mats: Vec<ViewMatImage>,
    /// Sorted descriptions of the selection (materializations + indices)
    /// the old session had chosen — recovery compares its warm re-plan
    /// against this for the durability status report.
    pub selection: Vec<String>,
}

fn encode_tuple(e: &mut Enc, t: &[Value]) {
    e.u32(t.len() as u32);
    t.iter().for_each(|v| codec::encode_value(e, v));
}

fn decode_tuple(d: &mut Dec) -> Result<Tuple, CodecError> {
    let n = d.u32()? as usize;
    (0..n).map(|_| codec::decode_value(d)).collect()
}

fn encode_opt_value(e: &mut Enc, v: &Option<Value>) {
    match v {
        None => e.u8(0),
        Some(v) => {
            e.u8(1);
            codec::encode_value(e, v);
        }
    }
}

fn decode_opt_value(d: &mut Dec) -> Result<Option<Value>, CodecError> {
    Ok(match d.u8()? {
        0 => None,
        1 => Some(codec::decode_value(d)?),
        t => return Err(CodecError::Invalid(format!("option flag {t}"))),
    })
}

fn encode_agg_state(e: &mut Enc, st: &AggState) {
    e.u32(st.group_by.len() as u32);
    st.group_by.iter().for_each(|a| e.u32(a.0));
    e.u32(st.specs.len() as u32);
    st.specs.iter().for_each(|s| codec::encode_agg_spec(e, s));
    codec::encode_schema(e, &st.input_schema);
    // Deterministic group order: sort by key.
    let mut groups: Vec<_> = st.group_entries().collect();
    groups.sort_by_key(|(a, _)| *a);
    e.u32(groups.len() as u32);
    for (key, accs) in groups {
        encode_tuple(e, key);
        e.u32(accs.len() as u32);
        for acc in accs {
            let (func, count, sum, all_int, min, max) = acc.to_parts();
            codec::encode_agg_func(e, func);
            e.i64(count);
            e.f64(sum);
            e.bool(all_int);
            encode_opt_value(e, &min);
            encode_opt_value(e, &max);
        }
    }
}

fn decode_agg_state(d: &mut Dec) -> Result<AggState, CodecError> {
    use mvmqo_relalg::agg::Accumulator;
    use mvmqo_relalg::schema::AttrId;
    let ng = d.u32()? as usize;
    let group_by = (0..ng)
        .map(|_| d.u32().map(AttrId))
        .collect::<Result<Vec<_>, _>>()?;
    let ns = d.u32()? as usize;
    let specs = (0..ns)
        .map(|_| codec::decode_agg_spec(d))
        .collect::<Result<Vec<_>, _>>()?;
    let input_schema = codec::decode_schema(d)?;
    let ngroups = d.u32()? as usize;
    let mut groups = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        let key = decode_tuple(d)?;
        let na = d.u32()? as usize;
        let accs = (0..na)
            .map(|_| {
                Ok(Accumulator::from_parts(
                    codec::decode_agg_func(d)?,
                    d.i64()?,
                    d.f64()?,
                    d.bool()?,
                    decode_opt_value(d)?,
                    decode_opt_value(d)?,
                ))
            })
            .collect::<Result<Vec<_>, CodecError>>()?;
        groups.push((key, accs));
    }
    Ok(AggState::from_parts(group_by, specs, input_schema, groups))
}

fn encode_distinct_state(e: &mut Enc, st: &DistinctState) {
    let mut entries: Vec<_> = st.count_entries().collect();
    entries.sort_by_key(|(a, _)| *a);
    e.u32(entries.len() as u32);
    for (row, count) in entries {
        encode_tuple(e, row);
        e.i64(count);
    }
}

fn decode_distinct_state(d: &mut Dec) -> Result<DistinctState, CodecError> {
    let n = d.u32()? as usize;
    let entries = (0..n)
        .map(|_| Ok((decode_tuple(d)?, d.i64()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(DistinctState::from_parts(entries))
}

impl SnapshotData {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.epoch);
        e.u64(self.ingested_since_plan);
        codec::encode_catalog(&mut e, &self.catalog);

        e.u32(self.views.len() as u32);
        self.views
            .iter()
            .for_each(|v| codec::encode_view_def(&mut e, v));

        e.u32(self.base_tables.len() as u32);
        for (t, table) in &self.base_tables {
            e.u32(t.0);
            encode_stored_table(&mut e, table);
        }

        e.u32(self.observed.len() as u32);
        for (t, ins, del) in &self.observed {
            e.u32(t.0);
            e.f64(*ins);
            e.f64(*del);
        }

        e.u32(self.pending.len() as u32);
        for (t, inserts, deletes) in &self.pending {
            e.u32(t.0);
            codec::encode_batch(&mut e, inserts);
            codec::encode_batch(&mut e, deletes);
        }

        e.u32(self.view_mats.len() as u32);
        for m in &self.view_mats {
            e.str(&m.name);
            e.bool(m.fresh);
            encode_stored_table(&mut e, &m.table);
            match &m.agg {
                None => e.u8(0),
                Some(st) => {
                    e.u8(1);
                    encode_agg_state(&mut e, st);
                }
            }
            match &m.distinct {
                None => e.u8(0),
                Some(st) => {
                    e.u8(1);
                    encode_distinct_state(&mut e, st);
                }
            }
        }

        e.u32(self.selection.len() as u32);
        self.selection.iter().for_each(|s| e.str(s));
        e.into_bytes()
    }

    pub fn decode(body: &[u8]) -> Result<SnapshotData, CodecError> {
        let mut d = Dec::new(body);
        let epoch = d.u64()?;
        let ingested_since_plan = d.u64()?;
        let catalog = codec::decode_catalog(&mut d)?;

        let nv = d.u32()? as usize;
        let views = (0..nv)
            .map(|_| codec::decode_view_def(&mut d))
            .collect::<Result<Vec<_>, _>>()?;

        let nb = d.u32()? as usize;
        let base_tables = (0..nb)
            .map(|_| Ok((TableId(d.u32()?), decode_stored_table(&mut d)?)))
            .collect::<Result<Vec<_>, CodecError>>()?;

        let no = d.u32()? as usize;
        let observed = (0..no)
            .map(|_| Ok((TableId(d.u32()?), d.f64()?, d.f64()?)))
            .collect::<Result<Vec<_>, CodecError>>()?;

        let np = d.u32()? as usize;
        let pending = (0..np)
            .map(|_| {
                Ok((
                    TableId(d.u32()?),
                    codec::decode_batch(&mut d)?,
                    codec::decode_batch(&mut d)?,
                ))
            })
            .collect::<Result<Vec<_>, CodecError>>()?;

        let nm = d.u32()? as usize;
        let mut view_mats = Vec::with_capacity(nm);
        for _ in 0..nm {
            let name = d.str()?;
            let fresh = d.bool()?;
            let table = decode_stored_table(&mut d)?;
            let agg = match d.u8()? {
                0 => None,
                1 => Some(decode_agg_state(&mut d)?),
                t => return Err(CodecError::Invalid(format!("agg flag {t}"))),
            };
            let distinct = match d.u8()? {
                0 => None,
                1 => Some(decode_distinct_state(&mut d)?),
                t => return Err(CodecError::Invalid(format!("distinct flag {t}"))),
            };
            view_mats.push(ViewMatImage {
                name,
                fresh,
                table,
                agg,
                distinct,
            });
        }

        let nsel = d.u32()? as usize;
        let selection = (0..nsel).map(|_| d.str()).collect::<Result<Vec<_>, _>>()?;

        if !d.is_empty() {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after snapshot body",
                d.remaining()
            )));
        }
        Ok(SnapshotData {
            epoch,
            ingested_since_plan,
            catalog,
            views,
            base_tables,
            observed,
            pending,
            view_mats,
            selection,
        })
    }
}
