//! The warehouse engine: a long-lived owner of database, catalog, view set,
//! and the current maintenance plan.
//!
//! Where the paper's pipeline is one-shot (`optimize()` + a single
//! `execute_program()`), [`Warehouse`] runs *continuously*: views register
//! and drop over time (each re-running the §6 selection over the whole
//! set), arbitrary insert/delete batches stream in through [`Warehouse::ingest`]
//! (mapped onto the §5.2 2n δ⁺/δ⁻ update numbering at epoch boundaries),
//! and [`Warehouse::run_epoch`] executes the chosen shared maintenance
//! program while persisting permanent materializations and indices across
//! epochs. An adaptive policy re-runs the optimizer when the view set, the
//! ingested-delta volume, or the realized-vs-estimated cost drifts past
//! thresholds.

use crate::durability::{SnapshotData, ViewMatImage};
use crate::error::WarehouseError;
use crate::policy::{ReoptPolicy, ReoptTrigger};
use mvmqo_core::api::OptimizerReport;
use mvmqo_core::cost::CostModel;
use mvmqo_core::opt::GreedyOptions;
use mvmqo_core::session::{Optimizer, PlanMode};
use mvmqo_core::update::UpdateModel;
use mvmqo_core::EqId;
use mvmqo_exec::{
    align_rows, eval_logical, execute_epoch_faults, index_plan_from_report, panic_message,
    ExecOptions, IndexPlan, RuntimeState,
};
use mvmqo_relalg::catalog::{Catalog, TableId};
use mvmqo_relalg::logical::ViewDef;
use mvmqo_relalg::schema::AttrId;
use mvmqo_relalg::tuple::{bag_eq_approx, Tuple};
use mvmqo_relalg::Batch;
use mvmqo_storage::database::Database;
use mvmqo_storage::delta::{DeltaBatch, DeltaSet};
use mvmqo_storage::error::{RecoveryError, StorageError};
use mvmqo_storage::faults::FaultRegistry;
use mvmqo_storage::snapshot::{self, Manifest};
use mvmqo_storage::wal::{scan_wal, WalRecord, WalWriter};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One re-optimization: when, why, how (cold vs incremental), how long.
/// The replan log is how scripts and tests distinguish cheap incremental
/// replans from cold rebuilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplanRecord {
    /// Engine epoch at which the replan ran.
    pub epoch: u64,
    pub trigger: ReoptTrigger,
    pub mode: PlanMode,
    pub elapsed: Duration,
}

/// Everything tied to the currently selected plan. The DAG itself lives in
/// the re-entrant [`Optimizer`] session (node ids are stable across
/// replans), so runtime state for results that stay maintained survives
/// re-optimization; the rest is dropped here.
struct PlanState {
    report: OptimizerReport,
    index_plan: IndexPlan,
    /// Persistent materializations, indices, and hidden aggregate/distinct
    /// support state, carried from epoch to epoch.
    state: RuntimeState,
    /// Epochs executed under this plan.
    epochs_run: u64,
}

/// What one `run_epoch` did.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Engine-wide epoch number (1-based after the first epoch).
    pub epoch: u64,
    /// Present when this epoch began by re-running the optimizer.
    pub replanned: Option<ReoptTrigger>,
    /// Optimizer estimate for one maintenance cycle under the current plan.
    pub estimated_cost: f64,
    /// Executed (simulated-I/O) maintenance cost of this epoch.
    pub executed_seconds: f64,
    /// Executed setup cost (initial population; zero once state persists).
    pub setup_seconds: f64,
    /// Full results built during setup — zero when every maintained result
    /// survived from the previous epoch.
    pub setup_builds: usize,
    /// Full results built over the whole epoch.
    pub total_builds: usize,
    /// Tuples ingested into this epoch's batch.
    pub ingested_tuples: usize,
    /// Aggregate views that fell back to recomputation (MIN/MAX deletes).
    pub forced_recomputes: usize,
}

/// The live durability attachment: where durable state lives and the open
/// WAL segment every accepted ingest and committed epoch is appended to.
struct Durability {
    dir: PathBuf,
    wal: WalWriter,
    /// Sequence number of the current snapshot/WAL segment pair.
    wal_seq: u64,
    /// Epoch captured by the current snapshot (the WAL truncation point).
    snapshot_epoch: u64,
}

/// How this engine instance came back from durable state (present only on
/// warehouses built by [`Warehouse::recover`]).
#[derive(Debug, Clone)]
pub struct RecoveryInfo {
    /// Epoch restored from the snapshot (before WAL replay).
    pub snapshot_epoch: u64,
    /// Epoch after replaying the WAL tail.
    pub recovered_epoch: u64,
    /// WAL records replayed through the ordinary ingest/epoch path.
    pub replayed_records: usize,
    /// True when the WAL ended cleanly at EOF; false when prefix recovery
    /// stopped at a torn or corrupt tail (the surviving prefix was kept).
    pub clean_wal: bool,
    /// Why the WAL scan stopped (human-readable, for `explain`).
    pub wal_stop: String,
    /// True when the warm re-plan landed on the same materialization +
    /// index selection the old session had chosen.
    pub selection_match: bool,
}

/// Why the most recent epoch abort happened: which fault site failed, the
/// rendered cause, and the epoch that was being attempted. Kept until the
/// next abort overwrites it and surfaced by `explain` — an aborted epoch
/// leaves no other trace in the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbortInfo {
    /// The epoch the aborted transaction was trying to commit
    /// (pre-epoch + 1; the engine is still at pre-epoch).
    pub epoch: u64,
    /// Fault-site label (e.g. `"exec:hash-join"`, `"wal:commit"`).
    pub site: String,
    /// Human-readable cause (the underlying error or panic message).
    pub cause: String,
}

/// A served query: rows plus provenance and staleness.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub rows: Vec<Tuple>,
    /// True when deltas have been ingested but not yet applied by an epoch —
    /// the answer reflects the last refresh, not the latest ingest.
    pub stale: bool,
    /// True when served from the maintained materialization; false when the
    /// engine had to recompute from base tables (no epoch run yet).
    pub from_materialization: bool,
}

/// The long-lived warehouse engine.
pub struct Warehouse {
    catalog: Catalog,
    db: Database,
    views: Vec<ViewDef>,
    cost_model: CostModel,
    options: GreedyOptions,
    policy: ReoptPolicy,
    exec_options: ExecOptions,
    /// The re-entrant optimizer session: owns the persistent AND-OR DAG,
    /// cost memo, and warm-start state. `ViewSetChanged`/`DeltaDrift`
    /// replans pay incremental cost; only the first plan is cold.
    optimizer: Optimizer,
    plan: Option<PlanState>,
    pending: DeltaSet,
    /// Tuples ingested since the last re-optimization (drift measure).
    ingested_since_plan: usize,
    view_set_dirty: bool,
    epoch: u64,
    history: Vec<EpochReport>,
    /// Exponentially-weighted per-table (inserts, deletes) observed per
    /// epoch; the update model for re-planning when no batch is pending.
    observed: BTreeMap<TableId, (f64, f64)>,
    /// Per-table availability (stored multiplicity + queued inserts −
    /// queued deletes), built lazily on the first delete-bearing ingest of
    /// a table and updated incrementally on every later ingest — so
    /// repeated ingests pay O(batch), not O(base table). Epoch application
    /// moves queued counts into stored counts without changing totals, so
    /// the cache persists across epochs (dead entries are pruned).
    avail_cache: HashMap<TableId, HashMap<Tuple, i64>>,
    replans: Vec<ReplanRecord>,
    /// Present once `enable_wal` ran (or after `recover`): ingests are
    /// logged write-ahead and epochs append commit records.
    durability: Option<Durability>,
    /// Present only on engines built by [`Warehouse::recover`].
    recovered: Option<RecoveryInfo>,
    /// Engine-wide fault-injection registry: threaded through the executor
    /// and crossed at every durability boundary. Inert unless a chaos test
    /// or the `chaos` script command arms it.
    faults: FaultRegistry,
    /// The most recent epoch abort, if any.
    last_abort: Option<AbortInfo>,
    /// Epochs aborted (and left retryable) over the engine's lifetime.
    epochs_aborted: u64,
}

impl Warehouse {
    /// Create an engine over a loaded database. Views are registered
    /// afterwards via [`Warehouse::register_view`].
    pub fn new(catalog: Catalog, db: Database) -> Self {
        Warehouse {
            catalog,
            db,
            views: Vec::new(),
            cost_model: CostModel::default(),
            options: GreedyOptions::default(),
            policy: ReoptPolicy::default(),
            // The engine serves reads from the maintained columnar state
            // (`query` materializes rows on demand), so epochs skip the
            // end-of-cycle row collection entirely.
            exec_options: ExecOptions {
                collect_view_rows: false,
                ..ExecOptions::default()
            },
            optimizer: Optimizer::default(),
            plan: None,
            pending: DeltaSet::new(),
            ingested_since_plan: 0,
            view_set_dirty: false,
            epoch: 0,
            history: Vec::new(),
            observed: BTreeMap::new(),
            avail_cache: HashMap::new(),
            replans: Vec::new(),
            durability: None,
            recovered: None,
            faults: FaultRegistry::new(),
            last_abort: None,
            epochs_aborted: 0,
        }
    }

    pub fn with_policy(mut self, policy: ReoptPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_options(mut self, options: GreedyOptions) -> Self {
        self.options = options;
        self
    }

    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Select the epoch scheduler: `true` executes independent plan roots
    /// of each phase on scoped threads (results are bag-identical to
    /// serial execution). Exposed on the CLI as `--parallel` and the
    /// `parallel on|off` session command.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.exec_options.parallel = parallel;
        self
    }

    /// Flip the scheduler between epochs.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.exec_options.parallel = parallel;
    }

    /// True when epochs run under the parallel scheduler.
    pub fn parallel(&self) -> bool {
        self.exec_options.parallel
    }

    /// Pin the parallel scheduler's worker budget (`0` = auto-detect from
    /// the host). Only takes effect while the scheduler is `parallel`;
    /// exposed on the CLI as `--parallel N` and `parallel on N`.
    pub fn set_threads(&mut self, threads: usize) {
        self.exec_options.threads = threads;
    }

    /// Configured worker budget (`0` = auto).
    pub fn threads(&self) -> usize {
        self.exec_options.threads
    }

    /// The scheduling options epochs currently run with.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec_options
    }

    /// Run the parallel scheduler even on a 1-thread host (test/benchmark
    /// hook — see `ExecOptions::force_parallel`). Without it, the threads
    /// axis of the executor benchmark is vacuous on single-core machines.
    pub fn set_force_parallel(&mut self, force: bool) {
        self.exec_options.force_parallel = force;
    }

    // ==================================================================
    // View registry
    // ==================================================================

    /// Register a view. Triggers MQO re-optimization over the whole view
    /// set (§6: the selection is a property of the *set*, not the view).
    // Invariant, not input handling: `replan` just ran over a non-empty
    // view set, which always installs a plan.
    #[allow(clippy::expect_used)]
    pub fn register_view(&mut self, view: ViewDef) -> Result<&OptimizerReport, WarehouseError> {
        if self.views.iter().any(|v| v.name == view.name) {
            return Err(WarehouseError::DuplicateView(view.name));
        }
        view.expr
            .validate(&self.catalog)
            .map_err(|reason| WarehouseError::InvalidView {
                name: view.name.clone(),
                reason,
            })?;
        for t in view.expr.base_tables() {
            self.db.base(t)?;
        }
        // Unify the view into the session's persistent DAG; the replan
        // below then pays incremental cost (warm-started greedy) instead
        // of rebuilding the DAG and memo from scratch.
        self.optimizer.add_view(&mut self.catalog, &view);
        self.views.push(view);
        self.view_set_dirty = true;
        let trigger = if self.plan.is_none() && self.replans.is_empty() {
            ReoptTrigger::Initial
        } else {
            ReoptTrigger::ViewSetChanged
        };
        self.replan(trigger);
        Ok(&self.plan.as_ref().expect("just planned").report)
    }

    /// Drop a view by name; re-optimizes the remaining set (incremental:
    /// the session garbage-collects the detached subgraph and re-validates
    /// the surviving selection).
    pub fn drop_view(&mut self, name: &str) -> Result<(), WarehouseError> {
        let pos = self
            .views
            .iter()
            .position(|v| v.name == name)
            .ok_or_else(|| WarehouseError::UnknownView(name.to_string()))?;
        self.views.remove(pos);
        self.optimizer.remove_view(name);
        self.view_set_dirty = true;
        if self.views.is_empty() {
            self.plan = None;
            self.view_set_dirty = false;
        } else {
            self.replan(ReoptTrigger::ViewSetChanged);
        }
        Ok(())
    }

    // ==================================================================
    // Ingest
    // ==================================================================

    /// Accept an arbitrary insert/delete batch for one relation. The batch
    /// is validated up front and queued; epoch execution maps all queued
    /// batches onto the paper's 2n δ⁺/δ⁻ update numbering (§5.2). A bad
    /// batch — wrong arity, or deletes exceeding the multiplicity that
    /// will exist once queued inserts land — is rejected whole; the engine
    /// state is untouched.
    pub fn ingest(&mut self, table: TableId, batch: DeltaBatch) -> Result<usize, WarehouseError> {
        self.db.validate_delta(table, &batch)?;
        let n = batch.inserts.len() + batch.deletes.len();
        if n == 0 {
            return Ok(0);
        }
        self.check_delete_multiplicity(table, &batch)?;
        // Write-ahead: the batch must be durable before the engine commits
        // it to any in-memory state. An append failure rejects the ingest
        // whole, leaving both the log and the engine unchanged.
        if self.durability.is_some() {
            let schema = self.catalog.table(table).schema.clone();
            let rec = WalRecord::Ingest {
                epoch: self.epoch + 1,
                table,
                inserts: Batch::from_rows(schema.clone(), &batch.inserts),
                deletes: Batch::from_rows(schema, &batch.deletes),
            };
            self.wal_append(&rec)?;
        }
        // Commit the batch to the availability cache (if built) and queue.
        if let Some(avail) = self.avail_cache.get_mut(&table) {
            for row in &batch.inserts {
                *avail.entry(row.clone()).or_insert(0) += 1;
            }
            for row in &batch.deletes {
                *avail.entry(row.clone()).or_insert(0) -= 1;
            }
        }
        let mut merged = self.pending.get(table).cloned().unwrap_or_default();
        merged.inserts.extend(batch.inserts);
        merged.deletes.extend(batch.deletes);
        self.pending.insert(table, merged);
        self.ingested_since_plan += n;
        Ok(n)
    }

    /// Every delete must have a matching occurrence among stored rows plus
    /// queued inserts (minus queued deletes). Base application saturates
    /// (`bag_minus` drops only what exists) while incremental
    /// aggregate/distinct maintenance subtracts unconditionally, so a
    /// phantom delete would silently corrupt maintained views. Checked
    /// against the incremental availability cache; the batch is not yet
    /// committed, so rejection leaves no trace.
    fn check_delete_multiplicity(
        &mut self,
        table: TableId,
        batch: &DeltaBatch,
    ) -> Result<(), WarehouseError> {
        if batch.deletes.is_empty() {
            return Ok(());
        }
        let avail = self.ensure_avail(table)?;
        // Simulate this batch only: inserts land before deletes (§5.2).
        let mut delta: HashMap<&Tuple, i64> = HashMap::new();
        for row in &batch.inserts {
            *delta.entry(row).or_insert(0) += 1;
        }
        for row in &batch.deletes {
            let e = delta.entry(row).or_insert(0);
            *e -= 1;
            if avail.get(row).copied().unwrap_or(0) + *e < 0 {
                return Err(StorageError::PhantomDelete { table }.into());
            }
        }
        Ok(())
    }

    /// Build (once per epoch, on demand) the availability counts for a
    /// table: stored multiplicities plus the already-queued batch.
    // Invariant: the entry was inserted two lines above the lookup.
    #[allow(clippy::expect_used)]
    fn ensure_avail(&mut self, table: TableId) -> Result<&HashMap<Tuple, i64>, WarehouseError> {
        if !self.avail_cache.contains_key(&table) {
            let mut counts: HashMap<Tuple, i64> = HashMap::new();
            for row in self.db.base(table)?.rows() {
                *counts.entry(row.clone()).or_insert(0) += 1;
            }
            if let Some(p) = self.pending.get(table) {
                for row in &p.inserts {
                    *counts.entry(row.clone()).or_insert(0) += 1;
                }
                for row in &p.deletes {
                    *counts.entry(row.clone()).or_insert(0) -= 1;
                }
            }
            self.avail_cache.insert(table, counts);
        }
        Ok(self.avail_cache.get(&table).expect("just built"))
    }

    // ==================================================================
    // Epochs
    // ==================================================================

    /// Run one maintenance epoch as a transaction: decide whether drift
    /// justifies re-optimization, execute the (possibly new) shared
    /// maintenance program against *staged* copies of the database and
    /// runtime state, write the WAL commit record, and only then install
    /// the staged state. The order is the contract:
    ///
    /// 1. **Stage** — the executor runs against copy-on-write clones of
    ///    the database and the plan's runtime state; pre-epoch state is
    ///    never touched. Executor errors *and panics* are caught here.
    /// 2. **Commit** — the `EpochCommit` record is appended (and flushed)
    ///    to the WAL. A crash after this point recovers *into* the epoch;
    ///    a crash before it recovers to the pre-epoch state with the
    ///    epoch's ingests still queued.
    /// 3. **Install** — the staged database and runtime state replace the
    ///    live ones in one swap; the remaining bookkeeping is infallible.
    ///
    /// Any failure in steps 1–2 drops the staged clones and returns
    /// [`WarehouseError::EpochAborted`]: the engine still serves exact
    /// pre-epoch answers, the pending delta queue is intact, and calling
    /// `run_epoch` again retries the same transaction.
    // Invariant: the views-exist branch replans when no plan is installed,
    // and `replan` over a non-empty view set always installs one.
    #[allow(clippy::expect_used)]
    pub fn run_epoch(&mut self) -> Result<EpochReport, WarehouseError> {
        let ingested = self.pending.total_tuples();
        if self.views.is_empty() {
            // Nothing to maintain — but `apply_all` can still fail partway
            // through the pending set, so even this fast path stages the
            // application on a (cheap, copy-on-write) clone and commits it
            // through the same protocol as a full epoch.
            let mut staged_db = self.db.clone();
            if let Err(f) = self.faults.hit("db:apply-all") {
                return Err(self.abort_epoch("db:apply-all", f.to_string()));
            }
            if let Err(e) = staged_db.apply_all(&self.pending) {
                return Err(self.abort_epoch("db:apply-all", e.to_string()));
            }
            if let Err(e) = self.commit_epoch_wal() {
                return Err(self.abort_epoch("wal:commit", e.to_string()));
            }
            self.post_commit_crash_point();
            self.db = staged_db;
            let report = EpochReport {
                epoch: self.epoch + 1,
                replanned: None,
                estimated_cost: 0.0,
                executed_seconds: 0.0,
                setup_seconds: 0.0,
                setup_builds: 0,
                total_builds: 0,
                ingested_tuples: ingested,
                forced_recomputes: 0,
            };
            self.finish_epoch(report.clone());
            return Ok(report);
        }

        // Replanning happens outside the transaction: it only mutates the
        // optimizer session and catalog statistics, never the data an
        // abort must preserve, and redoing it on retry would be wasted
        // work (the trigger condition would have cleared).
        let replanned = match self.replan_trigger() {
            Some(trigger) => {
                self.replan(trigger);
                Some(trigger)
            }
            None => None,
        };

        // Stage: run the whole epoch against clones. Stored tables are
        // copy-on-write (`Arc`-shared rows and indices), so the clones are
        // O(#tables), not O(#rows).
        let plan = self.plan.as_ref().expect("views exist, so a plan exists");
        let mut staged_db = self.db.clone();
        let mut staged_state = plan.state.clone();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            execute_epoch_faults(
                self.optimizer.dag(),
                &self.catalog,
                self.cost_model,
                &mut staged_db,
                &self.pending,
                &plan.report.program,
                &plan.index_plan,
                &mut staged_state,
                self.exec_options,
                &self.faults,
            )
        }));
        let exec = match caught {
            Ok(Ok(exec)) => exec,
            Ok(Err(e)) => {
                let site = e.site();
                return Err(self.abort_epoch(site, e.to_string()));
            }
            Err(payload) => {
                // A panicking operator (injected or real) unwinds only to
                // here; the staged clones absorb whatever it half-did.
                let cause = panic_message(payload.as_ref());
                let site = self
                    .faults
                    .fired()
                    .map(|f| f.site)
                    .unwrap_or_else(|| "exec:panic".to_string());
                return Err(self.abort_epoch(site, cause));
            }
        };

        // Commit: the durable record precedes every in-memory mutation.
        if let Err(e) = self.commit_epoch_wal() {
            return Err(self.abort_epoch("wal:commit", e.to_string()));
        }
        self.post_commit_crash_point();

        // Install: from here on, nothing can fail.
        self.db = staged_db;
        let plan = self.plan.as_mut().expect("views exist, so a plan exists");
        plan.state = staged_state;
        plan.epochs_run += 1;
        let report = EpochReport {
            epoch: self.epoch + 1,
            replanned,
            estimated_cost: plan.report.total_cost,
            executed_seconds: exec.maintenance_seconds,
            setup_seconds: exec.setup_seconds,
            setup_builds: exec.setup_builds,
            total_builds: exec.total_builds,
            ingested_tuples: ingested,
            forced_recomputes: exec.forced_recomputes,
        };
        self.finish_epoch(report.clone());
        Ok(report)
    }

    /// Record a pre-commit abort and build the typed error. The caller has
    /// already dropped the staged clones; live state and the pending queue
    /// are untouched, so the same epoch can simply be retried.
    fn abort_epoch(&mut self, site: impl Into<String>, cause: String) -> WarehouseError {
        let (epoch, site) = (self.epoch + 1, site.into());
        self.epochs_aborted += 1;
        self.last_abort = Some(AbortInfo {
            epoch,
            site: site.clone(),
            cause: cause.clone(),
        });
        WarehouseError::EpochAborted { epoch, site, cause }
    }

    /// Crossed between the durable WAL commit and the in-memory install.
    /// Past the commit point there is no clean abort left — an injected
    /// fault here models process death, so it always escalates to a panic,
    /// and recovery must land *on* the committed epoch.
    fn post_commit_crash_point(&self) {
        if let Err(f) = self.faults.hit("epoch:post-commit") {
            panic!("injected crash after WAL commit: {f}");
        }
    }

    /// Bookkeeping common to every epoch: observed-rate EMA (tables absent
    /// from this epoch decay toward zero rather than pinning their last
    /// rate forever), clearing the queue and availability cache, history.
    fn finish_epoch(&mut self, report: EpochReport) {
        let present: BTreeSet<TableId> = self.pending.tables().collect();
        for (t, entry) in self.observed.iter_mut() {
            if !present.contains(t) {
                entry.0 *= 0.5;
                entry.1 *= 0.5;
            }
        }
        for &t in &present {
            let Some(batch) = self.pending.get(t) else {
                continue;
            };
            let (ins, del) = (batch.inserts.len() as f64, batch.deletes.len() as f64);
            let entry = self.observed.entry(t).or_insert((ins, del));
            entry.0 = 0.5 * entry.0 + 0.5 * ins;
            entry.1 = 0.5 * entry.1 + 0.5 * del;
        }
        self.observed.retain(|_, (i, d)| *i >= 0.25 || *d >= 0.25);
        self.pending = DeltaSet::new();
        // The availability cache tracks stored + queued multiplicities, and
        // ingest keeps it current; applying the epoch moves queued counts
        // into stored counts without changing the totals, so the cache
        // stays exact across epochs. Only prune dead entries — rebuilding
        // it would re-hash every base tuple each epoch.
        for cache in self.avail_cache.values_mut() {
            cache.retain(|_, c| *c > 0);
        }
        self.epoch += 1;
        self.history.push(report);
    }

    /// Does current drift justify re-optimization?
    fn replan_trigger(&self) -> Option<ReoptTrigger> {
        if self.plan.is_none() {
            return Some(ReoptTrigger::Initial);
        }
        if self.view_set_dirty {
            return Some(ReoptTrigger::ViewSetChanged);
        }
        if let Some(t) = self
            .policy
            .delta_drift(self.ingested_since_plan as f64, self.base_rows())
        {
            return Some(t);
        }
        // The plan must have propagation steps for every pending relation;
        // otherwise executing it would drop those deltas on the floor.
        if !self.plan_covers_pending() {
            return Some(ReoptTrigger::UpdateShapeChanged);
        }
        if let (Some(plan), Some(last)) = (self.plan.as_ref(), self.history.last()) {
            if plan.epochs_run > 0 {
                if let Some(t) = self
                    .policy
                    .cost_drift(last.executed_seconds, last.estimated_cost)
                {
                    return Some(t);
                }
            }
        }
        None
    }

    fn plan_covers_pending(&self) -> bool {
        let Some(plan) = self.plan.as_ref() else {
            return false;
        };
        let covered: Vec<TableId> = plan
            .report
            .program
            .steps
            .iter()
            .map(|s| s.update.table)
            .collect();
        self.pending.tables().all(|t| covered.contains(&t))
    }

    /// Re-run the MQO selection over the whole current view set, with
    /// catalog statistics refreshed from the live database and an update
    /// model estimated from the pending batch (or the observed per-epoch
    /// rates when the queue is empty).
    ///
    /// Runs against the persistent optimizer session: only the first plan
    /// is a cold build; view churn and statistics drift pay incremental
    /// cost (dirty-bit property refresh + warm-started greedy). Runtime
    /// state of results that remain maintained under the new plan is
    /// carried over — node ids are stable — so a replan does not force
    /// every materialization to be rebuilt at the next epoch.
    fn replan(&mut self, trigger: ReoptTrigger) {
        let start = Instant::now();
        // Statistics drift: fold live row counts back into the catalog.
        let live: Vec<(TableId, f64)> = self
            .catalog
            .tables()
            .iter()
            .map(|t| t.id)
            .filter(|id| self.db.has_base(*id))
            .map(|id| (id, self.db.live_stats(&self.catalog, id).rows))
            .collect();
        for (id, rows) in live {
            self.catalog.set_row_count(id, rows);
        }

        let initial_indices = self.pk_indices();
        self.optimizer.set_cost_model(self.cost_model);
        self.optimizer.set_options(self.options);
        self.optimizer.set_update_model(self.update_model());
        self.optimizer.set_initial_indices(initial_indices.clone());
        let outcome = self.optimizer.plan(&mut self.catalog);
        let index_plan = index_plan_from_report(&initial_indices, &outcome.report);

        // Materializations that stayed fresh under the old plan and are
        // still maintained by the new one survive the replan.
        let mut state = self.plan.take().map(|p| p.state).unwrap_or_default();
        let keep: HashSet<EqId> = outcome
            .report
            .program
            .permanent_mats
            .iter()
            .chain(outcome.report.program.views.iter().map(|(_, e)| e))
            .copied()
            .filter(|e| state.is_fresh(*e))
            .collect();
        state.retain_mats(&keep);

        self.plan = Some(PlanState {
            report: outcome.report,
            index_plan,
            state,
            epochs_run: 0,
        });
        self.ingested_since_plan = 0;
        self.view_set_dirty = false;
        self.replans.push(ReplanRecord {
            epoch: self.epoch,
            trigger,
            mode: outcome.mode,
            elapsed: start.elapsed(),
        });
    }

    /// Primary-key indices over every table the current views reference —
    /// the paper's §7.1 default physical design.
    fn pk_indices(&self) -> Vec<(TableId, AttrId)> {
        mvmqo_core::api::pk_indices_for(&self.catalog, &self.views)
    }

    /// Per-table (inserts, deletes) estimate for the next cycles: pending
    /// batch sizes where available, otherwise the observed EMA.
    fn update_model(&self) -> UpdateModel {
        let mut per_table: BTreeMap<TableId, (f64, f64)> = self.observed.clone();
        for t in self.pending.tables() {
            if let Some(b) = self.pending.get(t) {
                per_table.insert(t, (b.inserts.len() as f64, b.deletes.len() as f64));
            }
        }
        UpdateModel::new(per_table.into_iter().map(|(t, (i, d))| (t, i, d)))
    }

    fn base_rows(&self) -> f64 {
        self.catalog
            .tables()
            .iter()
            .filter(|t| self.db.has_base(t.id))
            .map(|t| self.db.base(t.id).map_or(0, |s| s.len()) as f64)
            .sum()
    }

    // ==================================================================
    // Durability
    // ==================================================================

    /// Turn durability on: take an initial snapshot of the whole engine in
    /// `dir` and open a fresh WAL segment; from here every accepted ingest
    /// is logged write-ahead and every epoch appends a commit record. If
    /// the directory already holds durable state, a new segment pair is
    /// started after it (the manifest flip is the commit point). Returns
    /// the snapshot path.
    pub fn enable_wal(&mut self, dir: impl AsRef<Path>) -> Result<PathBuf, WarehouseError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| WarehouseError::Durability(format!("creating {}: {e}", dir.display())))?;
        let seq = match Manifest::load(&dir) {
            Ok(m) => m.wal_seq + 1,
            Err(RecoveryError::MissingManifest(_)) => 0,
            Err(e) => return Err(e.into()),
        };
        self.checkpoint(dir, seq)
    }

    /// Take a new snapshot and truncate the WAL: writes a fresh
    /// snapshot/WAL segment pair and flips the manifest to it, making the
    /// old segment pair dead (it is pruned). Requires [`Warehouse::enable_wal`]
    /// first. Returns the snapshot path.
    pub fn save(&mut self) -> Result<PathBuf, WarehouseError> {
        let d = self
            .durability
            .as_ref()
            .ok_or(WarehouseError::DurabilityDisabled)?;
        let (dir, seq) = (d.dir.clone(), d.wal_seq + 1);
        self.checkpoint(dir, seq)
    }

    /// Write snapshot `seq`, open WAL segment `seq`, flip the manifest,
    /// prune superseded segments, and attach the new segment as the live
    /// durability state.
    fn checkpoint(&mut self, dir: PathBuf, seq: u64) -> Result<PathBuf, WarehouseError> {
        // Crossed before anything is captured or written: an injected
        // snapshot failure leaves both the engine and the directory's
        // previous segment pair untouched.
        self.faults
            .hit("snapshot:write")
            .map_err(|f| WarehouseError::Durability(f.to_string()))?;
        let data = self.snapshot_data();
        let snap_name = format!("snapshot-{seq}.img");
        let wal_name = format!("wal-{seq}.log");
        let snap_path = dir.join(&snap_name);
        snapshot::write_framed_atomic(&snap_path, snapshot::SNAPSHOT_MAGIC, &data.encode())
            .map_err(|e| WarehouseError::Durability(format!("writing snapshot: {e}")))?;
        let wal = WalWriter::create(&dir.join(&wal_name))
            .map_err(|e| WarehouseError::Durability(format!("creating WAL segment: {e}")))?;
        // The manifest flip is the commit point: a crash before this line
        // recovers from the previous segment pair, a crash after it from
        // the new one. Either is a consistent engine.
        Manifest {
            snapshot_epoch: self.epoch,
            snapshot_file: snap_name,
            wal_file: wal_name,
            wal_seq: seq,
        }
        .store(&dir)
        .map_err(|e| WarehouseError::Durability(format!("writing manifest: {e}")))?;
        prune_segments(&dir, seq);
        self.durability = Some(Durability {
            dir,
            wal,
            wal_seq: seq,
            snapshot_epoch: self.epoch,
        });
        Ok(snap_path)
    }

    /// Capture the full engine image at the current epoch. Deferred
    /// aggregate/distinct realizations are forced first so the snapshot
    /// never persists a stale stored table beside newer accumulator state.
    fn snapshot_data(&mut self) -> SnapshotData {
        if let Some(plan) = self.plan.as_mut() {
            plan.state.realize_deferred();
        }
        let base_tables: Vec<_> = self
            .catalog
            .tables()
            .iter()
            .map(|t| t.id)
            .filter_map(|id| self.db.base(id).ok().map(|t| (id, t.clone())))
            .collect();
        let observed = self
            .observed
            .iter()
            .map(|(t, (ins, del))| (*t, *ins, *del))
            .collect();
        let pending = self
            .pending
            .tables()
            .filter_map(|t| {
                let b = self.pending.get(t)?;
                let schema = self.catalog.table(t).schema.clone();
                Some((
                    t,
                    Batch::from_rows(schema.clone(), &b.inserts),
                    Batch::from_rows(schema, &b.deletes),
                ))
            })
            .collect();
        let mut view_mats = Vec::new();
        if let Some(plan) = self.plan.as_ref() {
            for (name, root) in &plan.report.program.views {
                let Some((_, table)) = plan.state.mats().find(|(e, _)| e == root) else {
                    continue;
                };
                view_mats.push(ViewMatImage {
                    name: name.clone(),
                    fresh: plan.state.is_fresh(*root),
                    table: table.clone(),
                    agg: plan.state.agg_state(*root).cloned(),
                    distinct: plan.state.distinct_state(*root).cloned(),
                });
            }
        }
        SnapshotData {
            epoch: self.epoch,
            ingested_since_plan: self.ingested_since_plan as u64,
            catalog: self.catalog.clone(),
            views: self.views.clone(),
            base_tables,
            observed,
            pending,
            view_mats,
            selection: self.mat_set(),
        }
    }

    fn wal_append(&mut self, rec: &WalRecord) -> Result<(), WarehouseError> {
        if self.durability.is_some() {
            self.faults
                .hit("wal:append")
                .map_err(|f| WarehouseError::Durability(f.to_string()))?;
        }
        if let Some(d) = self.durability.as_mut() {
            d.wal
                .append(rec)
                .map_err(|e| WarehouseError::Durability(format!("WAL append: {e}")))?;
        }
        Ok(())
    }

    /// Append the epoch-commit record that makes the epoch's ingests
    /// replayable as one atomic refresh. Called *before* the staged state
    /// is installed — the durable record is the transaction's commit
    /// point — so it logs the epoch the engine is about to enter.
    fn commit_epoch_wal(&mut self) -> Result<(), WarehouseError> {
        self.faults
            .hit("wal:commit")
            .map_err(|f| WarehouseError::Durability(f.to_string()))?;
        let epoch = self.epoch + 1;
        self.wal_append(&WalRecord::EpochCommit { epoch })
    }

    /// Rebuild a warehouse from the durable state in `dir`: load the
    /// manifest's snapshot, re-register the persisted views in order
    /// against the rebuilt optimizer session (warm memo — post-recovery
    /// replans run incrementally), re-install each view's root
    /// materialization with its hidden aggregate/distinct support state,
    /// then replay the WAL tail through the ordinary ingest/epoch path.
    /// A torn or corrupt WAL tail is absorbed by prefix recovery; the
    /// engine resumes logging at the end of the surviving prefix.
    pub fn recover(dir: impl AsRef<Path>) -> Result<Warehouse, WarehouseError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = Manifest::load(&dir)?;
        let snap_path = dir.join(&manifest.snapshot_file);
        let body = snapshot::read_framed(&snap_path, snapshot::SNAPSHOT_MAGIC)?;
        let data = SnapshotData::decode(&body).map_err(|e| RecoveryError::Corrupt {
            file: snap_path.display().to_string(),
            why: e.to_string(),
        })?;
        if data.epoch != manifest.snapshot_epoch {
            return Err(RecoveryError::Inconsistent(format!(
                "snapshot is at epoch {} but manifest says {}",
                data.epoch, manifest.snapshot_epoch
            ))
            .into());
        }

        let mut db = Database::new();
        for (t, table) in data.base_tables {
            db.put_base(t, table);
        }
        let mut wh = Warehouse::new(data.catalog, db);
        wh.epoch = data.epoch;
        // Re-register views in their original order: the DAG unifies the
        // same way it did in the old session, and the memo is warm for
        // every plan after the first.
        for view in &data.views {
            wh.register_view(view.clone())?;
        }
        let selection_match = wh.mat_set() == data.selection;

        // Re-install persisted root materializations. Keyed by view name —
        // node ids are not stable across sessions — and guarded by a
        // schema check: a root whose derived schema came out differently
        // is skipped and rebuilds at the next epoch's setup.
        {
            let Warehouse {
                plan, optimizer, ..
            } = &mut wh;
            if let Some(plan) = plan.as_mut() {
                for m in data.view_mats {
                    let Some(root) = mvmqo_exec::view_root(&plan.report.program, &m.name) else {
                        continue;
                    };
                    if &optimizer.dag().eq(root).schema != m.table.schema() {
                        continue;
                    }
                    plan.state.install_mat(root, m.table, m.fresh);
                    if let Some(st) = m.agg {
                        plan.state.install_agg_state(root, st);
                    }
                    if let Some(st) = m.distinct {
                        plan.state.install_distinct_state(root, st);
                    }
                }
            }
        }

        wh.observed = data
            .observed
            .into_iter()
            .map(|(t, ins, del)| (t, (ins, del)))
            .collect();
        // Restore the queued-but-unapplied deltas directly: they were
        // validated when first accepted and are already in the WAL of the
        // segment *before* the snapshot's truncation point — the snapshot
        // carries them so nothing is lost.
        for (t, inserts, deletes) in data.pending {
            wh.pending.insert(
                t,
                DeltaBatch {
                    inserts: inserts.to_rows(),
                    deletes: deletes.to_rows(),
                },
            );
        }
        wh.ingested_since_plan = data.ingested_since_plan as usize;

        // Replay the WAL tail through the ordinary ingest/epoch path.
        // Durability is still detached, so replay does not re-log itself.
        let wal_path = dir.join(&manifest.wal_file);
        let scan = scan_wal(&wal_path)?;
        let replayed = scan.records.len();
        for rec in scan.records {
            match rec {
                WalRecord::Ingest {
                    epoch,
                    table,
                    inserts,
                    deletes,
                } => {
                    if epoch != wh.epoch + 1 {
                        return Err(RecoveryError::Inconsistent(format!(
                            "WAL ingest for epoch {epoch} arrived at engine epoch {}",
                            wh.epoch
                        ))
                        .into());
                    }
                    wh.ingest(
                        table,
                        DeltaBatch {
                            inserts: inserts.to_rows(),
                            deletes: deletes.to_rows(),
                        },
                    )?;
                }
                WalRecord::EpochCommit { epoch } => {
                    let report = wh.run_epoch()?;
                    if report.epoch != epoch {
                        return Err(RecoveryError::Inconsistent(format!(
                            "replay reached epoch {} but the log committed epoch {epoch}",
                            report.epoch
                        ))
                        .into());
                    }
                }
            }
        }

        // Resume logging at the end of the surviving prefix (drops any
        // torn tail bytes past it).
        let wal = WalWriter::open_append(&wal_path, scan.valid_bytes)
            .map_err(|e| WarehouseError::Durability(format!("reopening WAL: {e}")))?;
        wh.recovered = Some(RecoveryInfo {
            snapshot_epoch: manifest.snapshot_epoch,
            recovered_epoch: wh.epoch,
            replayed_records: replayed,
            clean_wal: scan.stop.is_clean(),
            wal_stop: scan.stop.to_string(),
            selection_match,
        });
        wh.durability = Some(Durability {
            dir,
            wal,
            wal_seq: manifest.wal_seq,
            snapshot_epoch: manifest.snapshot_epoch,
        });
        Ok(wh)
    }

    /// True once `enable_wal` ran (or the engine was built by `recover`).
    pub fn durability_enabled(&self) -> bool {
        self.durability.is_some()
    }

    /// How this engine came back from durable state, if it did.
    pub fn recovery_info(&self) -> Option<&RecoveryInfo> {
        self.recovered.as_ref()
    }

    /// One-line durability status (also part of `explain`).
    pub fn durability_status(&self) -> String {
        match self.durability.as_ref() {
            None => "durability: off".to_string(),
            Some(d) => format!(
                "durability: {} segment {} (snapshot at epoch {}, {} WAL records / {} bytes since)",
                d.dir.display(),
                d.wal_seq,
                d.snapshot_epoch,
                d.wal.records_appended(),
                d.wal.bytes_written(),
            ),
        }
    }

    // ==================================================================
    // Queries
    // ==================================================================

    /// Serve a view's current contents. Reads come from the maintained
    /// materialization when one exists (and are flagged stale if deltas
    /// have been ingested since the last epoch); before the first epoch
    /// the engine recomputes from base tables.
    pub fn query(&self, name: &str) -> Result<QueryResult, WarehouseError> {
        let view = self
            .views
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| WarehouseError::UnknownView(name.to_string()))?;
        let stale = !self.pending.is_empty();
        if let Some(plan) = self.plan.as_ref() {
            if let Some(root) = mvmqo_exec::view_root(&plan.report.program, name) {
                if let Some(rows) = plan.state.mat_rows(root) {
                    // Stored rows use the DAG node's canonical column order;
                    // serve them in the view's declared schema so both
                    // provenances agree.
                    let rows = align_rows(
                        rows.to_vec(),
                        &self.optimizer.dag().eq(root).schema,
                        &view.expr.schema(&self.catalog),
                    );
                    return Ok(QueryResult {
                        rows,
                        stale,
                        from_materialization: true,
                    });
                }
            }
        }
        let rows = eval_logical(&view.expr, &self.catalog, &self.db);
        Ok(QueryResult {
            rows,
            stale,
            from_materialization: false,
        })
    }

    /// Consistency check: the maintained materialization must equal
    /// recomputation from the current base tables, as multisets. Trivially
    /// true when nothing is materialized yet. With ingested-but-unapplied
    /// deltas the check is skipped (the materialization legitimately lags).
    pub fn verify(&self, name: &str) -> Result<bool, WarehouseError> {
        let view = self
            .views
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| WarehouseError::UnknownView(name.to_string()))?;
        if !self.pending.is_empty() {
            return Ok(true);
        }
        let Some(plan) = self.plan.as_ref() else {
            return Ok(true);
        };
        let Some(root) = mvmqo_exec::view_root(&plan.report.program, name) else {
            return Ok(true);
        };
        let Some(stored) = plan.state.mat_rows(root) else {
            return Ok(true);
        };
        let expected = eval_logical(&view.expr, &self.catalog, &self.db);
        let expected = align_rows(
            expected,
            &view.expr.schema(&self.catalog),
            &self.optimizer.dag().eq(root).schema,
        );
        Ok(bag_eq_approx(stored, &expected, 1e-9))
    }

    /// Human-readable description of the current plan and policy state.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "epoch {}  views {}  pending tuples {}  replans {}\n",
            self.epoch,
            self.views.len(),
            self.pending.total_tuples(),
            self.replans.len()
        ));
        out.push_str(&format!(
            "scheduler: {}\n",
            mvmqo_exec::scheduler_description(self.exec_options)
        ));
        match self.plan.as_ref() {
            None => out.push_str("no plan (no views registered)\n"),
            Some(plan) => {
                let r = &plan.report;
                out.push_str(&format!(
                    "estimated cycle cost {:.2}s (NoGreedy baseline {:.2}s), planned in {:?}\n",
                    r.total_cost, r.nogreedy_cost, r.optimization_time
                ));
                out.push_str(&format!(
                    "epochs under this plan: {}, persisted results: {} ({} tuples)\n",
                    plan.epochs_run,
                    plan.state.mat_count(),
                    plan.state.total_tuples()
                ));
                for m in &r.chosen_mats {
                    out.push_str(&format!(
                        "  mat [{}] {} ({:?}, benefit {:.2})\n",
                        if m.permanent { "perm" } else { "temp" },
                        m.description,
                        m.strategy,
                        m.benefit
                    ));
                }
                for i in &r.chosen_indices {
                    out.push_str(&format!(
                        "  idx [{}] {:?} on {} (benefit {:.2})\n",
                        if i.permanent { "perm" } else { "temp" },
                        i.target,
                        i.attr,
                        i.benefit
                    ));
                }
                for (name, strategy, cost) in &r.view_strategies {
                    out.push_str(&format!("  view {name}: {strategy:?} ({cost:.2}s)\n"));
                }
            }
        }
        if let Some(rec) = self.replans.last() {
            out.push_str(&format!(
                "last re-optimization at epoch {}: {} ({} plan, {:?})\n",
                rec.epoch, rec.trigger, rec.mode, rec.elapsed
            ));
        }
        // Cold-vs-incremental replan time: the measurable payoff of the
        // re-entrant optimizer session.
        let last_cold = self.replans.iter().rev().find(|r| r.mode == PlanMode::Cold);
        let last_incr = self
            .replans
            .iter()
            .rev()
            .find(|r| r.mode == PlanMode::Incremental);
        if let (Some(c), Some(i)) = (last_cold, last_incr) {
            let speedup = if i.elapsed.as_secs_f64() > 0.0 {
                c.elapsed.as_secs_f64() / i.elapsed.as_secs_f64()
            } else {
                f64::INFINITY
            };
            out.push_str(&format!(
                "replan time: cold {:?}, incremental {:?} ({speedup:.1}x)\n",
                c.elapsed, i.elapsed
            ));
        }
        out.push_str(&self.durability_status());
        out.push('\n');
        if self.epochs_aborted > 0 {
            out.push_str(&format!("epochs aborted: {}\n", self.epochs_aborted));
        }
        if let Some(a) = &self.last_abort {
            out.push_str(&format!(
                "last abort: epoch {} at {} ({}); pre-epoch state retained, retry with `epoch`\n",
                a.epoch, a.site, a.cause
            ));
        }
        if let Some(info) = &self.recovered {
            out.push_str(&format!(
                "recovered: snapshot epoch {} -> epoch {} ({} WAL records replayed, {}; selection {})\n",
                info.snapshot_epoch,
                info.recovered_epoch,
                info.replayed_records,
                info.wal_stop,
                if info.selection_match {
                    "matches the saved session"
                } else {
                    "re-chosen"
                },
            ));
        }
        out
    }

    // ==================================================================
    // Introspection (tests, CLI, benchmarks)
    // ==================================================================

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn views(&self) -> &[ViewDef] {
        &self.views
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Allocate a derived attribute from the engine's catalog (aggregate
    /// outputs of views built by external frontends, e.g. the CLI). Views
    /// must use attribute ids from *this* allocator so they never collide
    /// with ids the optimizer derives internally.
    pub fn fresh_attr(&mut self) -> mvmqo_relalg::schema::AttrId {
        self.catalog.fresh_attr()
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn pending_tuples(&self) -> usize {
        self.pending.total_tuples()
    }

    /// The queued (not yet applied) batch for one relation, if any.
    /// Frontends that *generate* batches use this to avoid sampling
    /// deletes or reissuing keys that are already queued.
    pub fn pending_for(&self, table: TableId) -> Option<&DeltaBatch> {
        self.pending.get(table)
    }

    /// Observed per-epoch (inserts, deletes) rates — the EMA feeding the
    /// update model at re-plan time. Rates of idle tables decay each epoch.
    pub fn observed_rates(&self) -> &BTreeMap<TableId, (f64, f64)> {
        &self.observed
    }

    pub fn history(&self) -> &[EpochReport] {
        &self.history
    }

    /// The engine-wide fault-injection registry (chaos tests and the
    /// `chaos` script command arm it; it is inert otherwise).
    pub fn faults(&self) -> &FaultRegistry {
        &self.faults
    }

    /// The most recent epoch abort, if any ever happened.
    pub fn last_abort(&self) -> Option<&AbortInfo> {
        self.last_abort.as_ref()
    }

    /// Epochs aborted (each left the engine on its pre-epoch state with
    /// the pending queue intact) over this engine's lifetime.
    pub fn epochs_aborted(&self) -> u64 {
        self.epochs_aborted
    }

    /// Every re-optimization so far: epoch, trigger, cold-vs-incremental
    /// mode, and elapsed planning time.
    pub fn replans(&self) -> &[ReplanRecord] {
        &self.replans
    }

    /// The current optimizer report, if any view is registered.
    pub fn current_report(&self) -> Option<&OptimizerReport> {
        self.plan.as_ref().map(|p| &p.report)
    }

    /// The persistent optimizer session's DAG (program node ids resolve
    /// here).
    pub fn dag(&self) -> &mvmqo_core::Dag {
        self.optimizer.dag()
    }

    /// Sorted descriptions of the currently selected set `X` — the extra
    /// materializations and indices the greedy phase chose (§6 keeps both
    /// kinds of candidate in one set). This is the quantity adaptive
    /// re-optimization changes.
    pub fn mat_set(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(r) = self.current_report() {
            out.extend(r.chosen_mats.iter().map(|m| m.description.clone()));
            out.extend(
                r.chosen_indices
                    .iter()
                    .map(|i| format!("index on {:?}.{}", i.target, i.attr)),
            );
        }
        out.sort();
        out
    }
}

/// Remove snapshot/WAL segments older than `keep_seq` — everything before
/// the manifest's truncation point is unreachable by recovery. Best-effort:
/// a prune failure never fails the checkpoint that made the files dead.
fn prune_segments(dir: &Path, keep_seq: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let seq = name
            .strip_prefix("snapshot-")
            .and_then(|r| r.strip_suffix(".img"))
            .or_else(|| {
                name.strip_prefix("wal-")
                    .and_then(|r| r.strip_suffix(".log"))
            })
            .and_then(|n| n.parse::<u64>().ok());
        if let Some(seq) = seq {
            if seq < keep_seq {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}
