//! Adaptive re-optimization policy.
//!
//! The paper solves the selection problem once, offline. A running
//! warehouse drifts away from the plan's assumptions in three ways: the
//! view set changes (§6 requires re-running the selection over the *whole*
//! set), the cumulative ingested deltas change table statistics, and the
//! realized epoch cost diverges from the optimizer's estimate. The policy
//! decides when that drift justifies paying the optimization cost again.

use std::fmt;

/// Why the engine re-ran the MQO selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReoptTrigger {
    // `Eq` is implemented manually below: the payload floats are derived
    // from counts and never NaN, so `PartialEq` is total here.
    /// First plan for this view set.
    Initial,
    /// A view was registered or dropped since the last plan.
    ViewSetChanged,
    /// Tuples ingested since the last plan exceeded the policy's fraction
    /// of the stored base rows.
    DeltaDrift { fraction: f64 },
    /// The pending deltas touch a relation the current program has no
    /// propagation steps for — the plan cannot apply them.
    UpdateShapeChanged,
    /// Last epoch's executed cost diverged from the estimate by more than
    /// the policy's ratio.
    CostDrift { ratio: f64 },
}

impl Eq for ReoptTrigger {}

impl fmt::Display for ReoptTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReoptTrigger::Initial => f.write_str("initial plan"),
            ReoptTrigger::ViewSetChanged => f.write_str("view set changed"),
            ReoptTrigger::DeltaDrift { fraction } => {
                write!(f, "delta drift ({:.1}% of base rows)", fraction * 100.0)
            }
            ReoptTrigger::UpdateShapeChanged => f.write_str("update shape changed"),
            ReoptTrigger::CostDrift { ratio } => {
                write!(f, "cost drift (executed/estimated = {ratio:.2})")
            }
        }
    }
}

/// Thresholds for adaptive re-optimization.
#[derive(Debug, Clone, Copy)]
pub struct ReoptPolicy {
    /// Re-plan when tuples ingested since the last plan exceed this
    /// fraction of the stored base rows (statistics drift).
    pub delta_fraction: f64,
    /// Re-plan when the last epoch's executed cost exceeds the estimate by
    /// this factor (model drift). One-sided deliberately: an epoch *cheaper*
    /// than estimated is the normal case when a small batch runs under a
    /// plan made for a larger one, and re-planning would discard the
    /// persisted materializations for no benefit.
    pub cost_ratio: f64,
}

impl Default for ReoptPolicy {
    fn default() -> Self {
        ReoptPolicy {
            delta_fraction: 0.25,
            cost_ratio: 10.0,
        }
    }
}

impl ReoptPolicy {
    /// Statistics-drift check: ingested tuples vs stored base rows.
    pub fn delta_drift(&self, ingested: f64, base_rows: f64) -> Option<ReoptTrigger> {
        if base_rows <= 0.0 {
            return None;
        }
        let fraction = ingested / base_rows;
        (fraction >= self.delta_fraction).then_some(ReoptTrigger::DeltaDrift { fraction })
    }

    /// Model-drift check: realized vs estimated epoch cost. Fires only
    /// when execution was *more* expensive than promised.
    pub fn cost_drift(&self, executed: f64, estimated: f64) -> Option<ReoptTrigger> {
        if estimated <= 0.0 || executed <= 0.0 {
            return None;
        }
        let ratio = executed / estimated;
        (ratio >= self.cost_ratio).then_some(ReoptTrigger::CostDrift { ratio })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_drift_fires_at_threshold() {
        let p = ReoptPolicy {
            delta_fraction: 0.2,
            cost_ratio: 10.0,
        };
        assert!(p.delta_drift(10.0, 100.0).is_none());
        assert!(matches!(
            p.delta_drift(20.0, 100.0),
            Some(ReoptTrigger::DeltaDrift { .. })
        ));
        assert!(p.delta_drift(20.0, 0.0).is_none());
    }

    #[test]
    fn cost_drift_fires_only_on_overruns() {
        let p = ReoptPolicy {
            delta_fraction: 0.2,
            cost_ratio: 4.0,
        };
        assert!(p.cost_drift(2.0, 1.0).is_none());
        assert!(matches!(
            p.cost_drift(5.0, 1.0),
            Some(ReoptTrigger::CostDrift { .. })
        ));
        // Cheaper than estimated (a small batch under a big-batch plan) is
        // the normal case — must not thrash the plan.
        assert!(p.cost_drift(1.0, 5.0).is_none());
        assert!(p.cost_drift(0.0, 1.0).is_none());
    }
}
