//! Script/REPL frontend: drive warehouse scenarios without writing Rust.
//!
//! A [`Session`] wraps a [`Warehouse`] over the TPC-D substrate and
//! executes one command per line:
//!
//! ```text
//! view V = lineitem * orders * customer where o_orderdate < 400
//! view R = lineitem * orders group o_custkey sum l_extendedprice
//! ingest lineitem 10        # 10% inserts + 5% deletes on one relation
//! ingest all 5              # one batch per relation
//! epoch                     # run a maintenance epoch
//! query V                   # row count + staleness
//! verify V                  # compare materialization vs recomputation
//! drop V
//! explain                   # current plan, policy counters
//! tables                    # stored relations and row counts
//! wal on /tmp/wh            # enable durability (snapshot + WAL) in a dir
//! save                      # checkpoint: new snapshot, truncate the WAL
//! recover /tmp/wh           # rebuild the whole session from durable state
//! ```
//!
//! Lines starting with `#` (and blank lines) are ignored, so scenario
//! files double as documented experiments. Errors are returned as text —
//! a bad command never kills the session.

use crate::engine::Warehouse;
use crate::policy::ReoptPolicy;
use mvmqo_relalg::agg::{AggFunc, AggSpec};
use mvmqo_relalg::catalog::TableId;
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::logical::{LogicalExpr, ViewDef};
use mvmqo_relalg::schema::AttrId;
use mvmqo_relalg::types::{DataType, Value};
use mvmqo_storage::faults::{FaultMode, FaultPlan};
use mvmqo_tpcd::{generate_database, generate_table_update, tpcd_catalog, Tpcd};
use std::sync::Arc;

/// An interactive (or scripted) warehouse session over TPC-D.
pub struct Session {
    /// TPC-D handles for the data/update generators. Holds its own catalog
    /// copy (`tpcd_catalog` is deterministic, so table/attribute ids match
    /// the engine's); the engine owns the authoritative one.
    tpcd: Tpcd,
    pub warehouse: Warehouse,
    seed: u64,
    /// Monotone counter so repeated `ingest` lines draw distinct batches.
    ingests: u64,
}

impl Session {
    /// Generate a TPC-D instance at `sf` and wrap it in a warehouse.
    pub fn new(sf: f64, seed: u64) -> Self {
        let tpcd = tpcd_catalog(sf);
        let db = generate_database(&tpcd, seed);
        let engine_catalog = tpcd_catalog(sf).catalog;
        Session {
            tpcd,
            warehouse: Warehouse::new(engine_catalog, db),
            seed,
            ingests: 0,
        }
    }

    pub fn with_policy(mut self, policy: ReoptPolicy) -> Self {
        self.warehouse = self.warehouse.with_policy(policy);
        self
    }

    /// Execute one command line; returns printable output. Errors come
    /// back as `Err(text)` and leave the session usable.
    pub fn exec_line(&mut self, line: &str) -> Result<String, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words[0] {
            "view" => self.cmd_view(line),
            "ingest" => self.cmd_ingest(&words),
            "epoch" => self.cmd_epoch(),
            "query" => self.cmd_query(&words),
            "verify" => self.cmd_verify(&words),
            "drop" => self.cmd_drop(&words),
            "explain" => Ok(self.warehouse.explain()),
            "tables" => Ok(self.cmd_tables()),
            "parallel" => self.cmd_parallel(&words),
            "wal" => self.cmd_wal(&words),
            "save" => self.cmd_save(),
            "recover" => self.cmd_recover(&words),
            "chaos" => self.cmd_chaos(&words),
            "help" => Ok(HELP.to_string()),
            other => Err(format!("unknown command {other:?} (try `help`)")),
        }
    }

    // ==================================================================
    // Commands
    // ==================================================================

    /// `view NAME = T1 * T2 [* ...] [where COL <op> N] [group COL sum COL]`
    fn cmd_view(&mut self, line: &str) -> Result<String, String> {
        let rest = line.strip_prefix("view").unwrap_or(line).trim();
        let (name, spec) = rest
            .split_once('=')
            .ok_or("usage: view NAME = T1 * T2 [where COL < N] [group COL sum COL]")?;
        let name = name.trim().to_string();
        if name.is_empty() {
            return Err("view name must not be empty".into());
        }

        // Split off trailing `group ... sum ...` and `where ...` clauses.
        let mut spec = spec.trim();
        let mut group_clause = None;
        if let Some((head, group)) = split_clause(spec, "group") {
            spec = head;
            group_clause = Some(group);
        }
        let mut where_clause = None;
        if let Some((head, w)) = split_clause(spec, "where") {
            spec = head;
            where_clause = Some(w);
        }

        let tables = self.parse_chain(spec)?;
        let mut expr = self.join_chain(&tables)?;
        if let Some(w) = where_clause {
            let pred = self.parse_where(&tables, &w)?;
            expr = LogicalExpr::select(expr, pred);
        }
        if let Some(g) = group_clause {
            expr = self.parse_group(&tables, expr, &g)?;
        }
        let view = ViewDef::new(name.clone(), expr);
        let report = self
            .warehouse
            .register_view(view)
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "registered {name}; re-optimized {} views: cost {:.2}s ({} extra mats, {} extra indices)",
            report.program.views.len(),
            report.total_cost,
            report.chosen_mats.len(),
            report.chosen_indices.len()
        ))
    }

    /// `ingest TABLE PCT` or `ingest all PCT`.
    fn cmd_ingest(&mut self, words: &[&str]) -> Result<String, String> {
        let [_, target, pct] = words else {
            return Err("usage: ingest <table|all> <percent>".into());
        };
        let pct: f64 = pct.parse().map_err(|_| format!("bad percentage {pct:?}"))?;
        let tables: Vec<TableId> = if *target == "all" {
            self.tpcd.t.all().to_vec()
        } else {
            vec![self.lookup_table(target)?]
        };
        let mut total = 0usize;
        for t in tables {
            self.ingests += 1;
            let mut batch = generate_table_update(
                &self.tpcd,
                self.warehouse.database(),
                t,
                pct,
                self.seed.wrapping_add(self.ingests),
            )
            .map_err(|e| e.to_string())?;
            // The generator samples against the *stored* table; consecutive
            // ingests before an epoch must not re-delete queued deletes or
            // reissue queued primary keys.
            if let Some(pending) = self.warehouse.pending_for(t) {
                let queued: std::collections::HashSet<&[Value]> =
                    pending.deletes.iter().map(Vec::as_slice).collect();
                batch.deletes.retain(|r| !queued.contains(r.as_slice()));
                if let Some(next_key) = pending
                    .inserts
                    .iter()
                    .filter_map(|r| r.first().and_then(Value::as_i64))
                    .max()
                    .map(|m| m + 1)
                {
                    for (i, row) in batch.inserts.iter_mut().enumerate() {
                        row[0] = Value::Int(next_key + i as i64);
                    }
                }
            }
            total += self.warehouse.ingest(t, batch).map_err(|e| e.to_string())?;
        }
        Ok(format!(
            "queued {total} tuples ({} pending)",
            self.warehouse.pending_tuples()
        ))
    }

    fn cmd_epoch(&mut self) -> Result<String, String> {
        let r = self.warehouse.run_epoch().map_err(|e| e.to_string())?;
        let replan = match r.replanned {
            Some(t) => format!("re-optimized ({t}); "),
            None => String::new(),
        };
        Ok(format!(
            "epoch {}: {replan}applied {} tuples in {:.2}s (estimate {:.2}s, setup {:.2}s, {} rebuilds)",
            r.epoch,
            r.ingested_tuples,
            r.executed_seconds,
            r.estimated_cost,
            r.setup_seconds,
            r.setup_builds,
        ))
    }

    fn cmd_query(&mut self, words: &[&str]) -> Result<String, String> {
        let Some(name) = words.get(1) else {
            return Err("usage: query NAME".into());
        };
        let q = self.warehouse.query(name).map_err(|e| e.to_string())?;
        Ok(format!(
            "{name}: {} rows ({}{})",
            q.rows.len(),
            if q.from_materialization {
                "materialized"
            } else {
                "recomputed"
            },
            if q.stale { ", stale" } else { "" }
        ))
    }

    fn cmd_verify(&mut self, words: &[&str]) -> Result<String, String> {
        let Some(name) = words.get(1) else {
            return Err("usage: verify NAME".into());
        };
        let ok = self.warehouse.verify(name).map_err(|e| e.to_string())?;
        if ok {
            Ok(format!("{name}: consistent with recomputation"))
        } else {
            Err(format!("{name}: MISMATCH against recomputation"))
        }
    }

    fn cmd_drop(&mut self, words: &[&str]) -> Result<String, String> {
        let Some(name) = words.get(1) else {
            return Err("usage: drop NAME".into());
        };
        self.warehouse.drop_view(name).map_err(|e| e.to_string())?;
        Ok(format!(
            "dropped {name}; {} views remain",
            self.warehouse.views().len()
        ))
    }

    /// `parallel on [N] | off` — switch the epoch scheduler, optionally
    /// pinning the worker budget to `N` threads (`on` alone auto-detects);
    /// bare `parallel` reports the current setting.
    fn cmd_parallel(&mut self, words: &[&str]) -> Result<String, String> {
        match words[1..] {
            [] => {}
            ["on"] => {
                self.warehouse.set_parallel(true);
                self.warehouse.set_threads(0);
            }
            ["on", n] => {
                let threads: usize = n
                    .parse()
                    .ok()
                    .filter(|&t| t > 0)
                    .ok_or_else(|| format!("usage: parallel [on [N]|off] (bad count {n:?})"))?;
                self.warehouse.set_parallel(true);
                self.warehouse.set_threads(threads);
            }
            ["off"] => self.warehouse.set_parallel(false),
            _ => return Err(format!("usage: parallel [on [N]|off] (got {:?})", words[1])),
        }
        Ok(format!(
            "epoch scheduler: {}",
            mvmqo_exec::scheduler_description(self.warehouse.exec_options())
        ))
    }

    /// `wal on DIR` — enable durability; bare `wal` reports the status.
    fn cmd_wal(&mut self, words: &[&str]) -> Result<String, String> {
        match words {
            [_] => Ok(self.warehouse.durability_status()),
            [_, "on", dir] => {
                let snap = self.warehouse.enable_wal(dir).map_err(|e| e.to_string())?;
                Ok(format!(
                    "durability on: snapshot {} at epoch {}",
                    snap.display(),
                    self.warehouse.epoch()
                ))
            }
            _ => Err("usage: wal [on DIR]".into()),
        }
    }

    /// `save` — checkpoint: fresh snapshot + truncated WAL.
    fn cmd_save(&mut self) -> Result<String, String> {
        let snap = self.warehouse.save().map_err(|e| e.to_string())?;
        Ok(format!(
            "saved snapshot {} at epoch {}",
            snap.display(),
            self.warehouse.epoch()
        ))
    }

    /// `recover DIR` — replace this session's engine with one rebuilt from
    /// durable state (snapshot + WAL-tail replay).
    fn cmd_recover(&mut self, words: &[&str]) -> Result<String, String> {
        let [_, dir] = words else {
            return Err("usage: recover DIR".into());
        };
        let wh = Warehouse::recover(dir).map_err(|e| e.to_string())?;
        let info = wh
            .recovery_info()
            .cloned()
            .ok_or("recover produced no recovery info")?;
        self.warehouse = wh;
        Ok(format!(
            "recovered at epoch {} (snapshot epoch {}, {} WAL records replayed, {})",
            info.recovered_epoch, info.snapshot_epoch, info.replayed_records, info.wal_stop
        ))
    }

    /// `chaos SITE [N]` — arm a one-shot injected fault at the `N`-th
    /// (default 0) crossing of the named fault site; the next command that
    /// reaches it fails, and an epoch that hits it aborts cleanly (pre-
    /// epoch state retained, retry with `epoch`). `chaos off` disarms;
    /// bare `chaos` reports the armed/fired state.
    fn cmd_chaos(&mut self, words: &[&str]) -> Result<String, String> {
        match words[1..] {
            [] => {
                let f = self.warehouse.faults();
                Ok(match (f.armed(), f.fired()) {
                    (true, _) => "chaos: armed, not yet fired".to_string(),
                    (false, Some(fired)) => {
                        format!("chaos: fired at {}#{}", fired.site, fired.ordinal)
                    }
                    (false, None) => "chaos: off".to_string(),
                })
            }
            ["off"] => {
                self.warehouse.faults().clear();
                Ok("chaos: off".to_string())
            }
            [site] | [site, _] => {
                let nth: u64 = match words.get(2) {
                    Some(n) => n
                        .parse()
                        .map_err(|_| format!("usage: chaos [SITE [N]|off] (bad count {n:?})"))?,
                    None => 0,
                };
                self.warehouse.faults().arm(FaultPlan::site(
                    site.to_string(),
                    nth,
                    FaultMode::Error,
                ));
                Ok(format!(
                    "chaos: armed a fault at crossing #{nth} of {site} (fires once)"
                ))
            }
            _ => Err("usage: chaos [SITE [N]|off]".into()),
        }
    }

    fn cmd_tables(&self) -> String {
        let mut out = String::new();
        for def in self.tpcd.catalog.tables() {
            let rows = self
                .warehouse
                .database()
                .base(def.id)
                .map_or(0, |t| t.len());
            out.push_str(&format!("{:<10} {:>8} rows\n", def.name, rows));
        }
        out
    }

    // ==================================================================
    // Parsing helpers
    // ==================================================================

    fn lookup_table(&self, name: &str) -> Result<TableId, String> {
        self.tpcd
            .catalog
            .table_by_name(name)
            .map(|d| d.id)
            .ok_or_else(|| format!("unknown table {name:?}"))
    }

    /// `T1 * T2 * T3` → table ids.
    fn parse_chain(&self, spec: &str) -> Result<Vec<TableId>, String> {
        let tables: Vec<TableId> = spec
            .split('*')
            .map(|t| self.lookup_table(t.trim()))
            .collect::<Result<_, _>>()?;
        if tables.is_empty() {
            return Err("at least one table required".into());
        }
        Ok(tables)
    }

    /// Left-deep FK join of the chain: each new table must share a declared
    /// foreign key with some table already joined.
    fn join_chain(&self, tables: &[TableId]) -> Result<Arc<LogicalExpr>, String> {
        let mut expr = LogicalExpr::scan(tables[0]);
        let mut joined = vec![tables[0]];
        for &next in &tables[1..] {
            let mut conjuncts = Vec::new();
            for &prev in &joined {
                conjuncts.extend(self.fk_conjuncts(prev, next));
            }
            if conjuncts.is_empty() {
                return Err(format!(
                    "no foreign-key join path from {{{}}} to {}",
                    joined
                        .iter()
                        .map(|t| self.tpcd.catalog.table(*t).name.clone())
                        .collect::<Vec<_>>()
                        .join(", "),
                    self.tpcd.catalog.table(next).name
                ));
            }
            expr = LogicalExpr::join(
                expr,
                LogicalExpr::scan(next),
                Predicate::from_conjuncts(conjuncts),
            );
            joined.push(next);
        }
        Ok(expr)
    }

    /// Equality conjuncts from any declared FK between `a` and `b` (either
    /// direction).
    fn fk_conjuncts(&self, a: TableId, b: TableId) -> Vec<ScalarExpr> {
        let mut out = Vec::new();
        for (child, parent) in [(a, b), (b, a)] {
            for fk in &self.tpcd.catalog.table(child).foreign_keys {
                if fk.parent_table == parent {
                    for (c, p) in fk.child_attrs.iter().zip(&fk.parent_attrs) {
                        out.push(ScalarExpr::col_eq_col(*c, *p));
                    }
                }
            }
        }
        out
    }

    /// Resolve a (possibly qualified) column name within the chain tables.
    fn lookup_column(&self, tables: &[TableId], col: &str) -> Result<(AttrId, DataType), String> {
        for &t in tables {
            let def = self.tpcd.catalog.table(t);
            for attr in def.schema.attrs() {
                if attr.name == col || attr.name.ends_with(&format!(".{col}")) {
                    return Ok((attr.id, attr.data_type));
                }
            }
        }
        Err(format!("no column {col:?} in the joined tables"))
    }

    /// `COL < N`, `COL > N`, `COL = N`.
    fn parse_where(&self, tables: &[TableId], clause: &str) -> Result<Predicate, String> {
        let words: Vec<&str> = clause.split_whitespace().collect();
        let [col, op, value] = words[..] else {
            return Err("usage: where COL <|>|= VALUE".into());
        };
        let (attr, dt) = self.lookup_column(tables, col)?;
        let op = match op {
            "<" => CmpOp::Lt,
            ">" => CmpOp::Gt,
            "=" => CmpOp::Eq,
            "<=" => CmpOp::Le,
            ">=" => CmpOp::Ge,
            other => return Err(format!("unsupported operator {other:?}")),
        };
        let value = parse_value(value, dt)?;
        Ok(Predicate::from_expr(ScalarExpr::col_cmp_lit(
            attr, op, value,
        )))
    }

    /// `COL sum COL` — group by the first column, SUM + COUNT the second.
    fn parse_group(
        &mut self,
        tables: &[TableId],
        input: Arc<LogicalExpr>,
        clause: &str,
    ) -> Result<Arc<LogicalExpr>, String> {
        let words: Vec<&str> = clause.split_whitespace().collect();
        let [group_col, "sum", sum_col] = words[..] else {
            return Err("usage: group COL sum COL".into());
        };
        let (group_attr, _) = self.lookup_column(tables, group_col)?;
        let (sum_attr, _) = self.lookup_column(tables, sum_col)?;
        let sum_out = self.warehouse.fresh_attr();
        let cnt_out = self.warehouse.fresh_attr();
        Ok(LogicalExpr::aggregate(
            input,
            vec![group_attr],
            vec![
                AggSpec::new(AggFunc::Sum, ScalarExpr::Col(sum_attr), sum_out),
                AggSpec::new(AggFunc::Count, ScalarExpr::Col(sum_attr), cnt_out),
            ],
        ))
    }
}

/// Split `spec` at the last top-level occurrence of ` keyword `; returns
/// (head, tail-after-keyword).
fn split_clause<'a>(spec: &'a str, keyword: &str) -> Option<(&'a str, String)> {
    let needle = format!(" {keyword} ");
    spec.rfind(&needle).map(|i| {
        (
            spec[..i].trim(),
            spec[i + needle.len()..].trim().to_string(),
        )
    })
}

fn parse_value(text: &str, dt: DataType) -> Result<Value, String> {
    match dt {
        DataType::Int => text
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("bad integer {text:?}")),
        DataType::Date => text
            .parse::<i32>()
            .map(Value::Date)
            .map_err(|_| format!("bad date (days since epoch) {text:?}")),
        DataType::Float => text
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad float {text:?}")),
        DataType::Str => Ok(Value::str(text)),
        DataType::Bool => match text {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(format!("bad boolean {text:?}")),
        },
    }
}

pub const HELP: &str = "\
commands:
  view NAME = T1 * T2 [* ...] [where COL <op> N] [group COL sum COL]
      register a view (FK-joined chain); re-optimizes the whole view set
  drop NAME                 unregister a view; re-optimizes the rest
  ingest <table|all> PCT    queue PCT% inserts + PCT/2% deletes
  epoch                     run one maintenance epoch
  query NAME                row count + staleness of a view
  verify NAME               check materialization against recomputation
  explain                   current plan, costs, re-optimization history
  tables                    stored relations and row counts
  parallel [on [N]|off]     switch the epoch scheduler (default serial);
                            `on N` pins the worker budget to N threads
  wal [on DIR]              enable durability (snapshot + WAL) / show status
  save                      checkpoint: new snapshot, truncate the WAL
  recover DIR               rebuild the session from durable state
  chaos [SITE [N]|off]      arm a one-shot injected fault at a fault site
                            (e.g. wal:commit, exec:hash-join); an epoch
                            that hits it aborts cleanly and can be retried
  help                      this text
  # ...                     comment
";

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(0.001, 42)
    }

    #[test]
    fn view_register_ingest_epoch_query_roundtrip() {
        let mut s = session();
        let out = s
            .exec_line("view locs = lineitem * orders * customer where o_orderdate < 1200")
            .unwrap();
        assert!(out.contains("registered locs"), "{out}");
        s.exec_line("ingest all 10").unwrap();
        let out = s.exec_line("epoch").unwrap();
        assert!(out.contains("epoch 1"), "{out}");
        let out = s.exec_line("query locs").unwrap();
        assert!(out.contains("materialized"), "{out}");
        let out = s.exec_line("verify locs").unwrap();
        assert!(out.contains("consistent"), "{out}");
    }

    #[test]
    fn aggregate_views_parse_and_verify() {
        let mut s = session();
        s.exec_line("view rev = lineitem * orders group o_custkey sum l_extendedprice")
            .unwrap();
        s.exec_line("ingest lineitem 10").unwrap();
        s.exec_line("ingest orders 10").unwrap();
        s.exec_line("epoch").unwrap();
        let out = s.exec_line("verify rev").unwrap();
        assert!(out.contains("consistent"), "{out}");
    }

    #[test]
    fn explain_reports_optimizer_session_behavior() {
        // Scripts assert on optimizer behavior through `explain`: the
        // chosen plan, the last trigger, and cold-vs-incremental replan
        // times from the re-entrant session.
        let mut s = session();
        s.exec_line("view a = lineitem * orders").unwrap();
        let out = s.exec_line("explain").unwrap();
        assert!(out.contains("cold plan"), "{out}");
        assert!(out.contains("initial plan"), "{out}");
        s.exec_line("view b = lineitem * orders * customer")
            .unwrap();
        let out = s.exec_line("explain").unwrap();
        assert!(out.contains("incremental plan"), "{out}");
        assert!(out.contains("view set changed"), "{out}");
        assert!(
            out.contains("replan time: cold"),
            "cold-vs-incremental summary missing: {out}"
        );
        assert!(out.contains("view a:"), "{out}");
        assert!(out.contains("view b:"), "{out}");
    }

    #[test]
    fn quiet_epochs_do_not_thrash_the_plan() {
        // Under the *default* policy, epochs much cheaper than the plan's
        // estimate (tiny or empty batches) must not trigger cost-drift
        // replans that would discard the persisted state.
        let mut s = session();
        s.exec_line("view v = lineitem * orders").unwrap();
        s.exec_line("ingest all 10").unwrap();
        s.exec_line("epoch").unwrap();
        let replans = s.warehouse.replans().len();
        s.exec_line("epoch").unwrap(); // empty epoch
        s.exec_line("ingest all 1").unwrap();
        s.exec_line("epoch").unwrap(); // far cheaper than estimated
        assert_eq!(
            s.warehouse.replans().len(),
            replans,
            "cheap epochs must not replan"
        );
        assert_eq!(s.warehouse.history().last().unwrap().setup_builds, 0);
    }

    #[test]
    fn consecutive_ingests_before_one_epoch_stay_consistent() {
        // Regression: two generated batches used to overlap on deletes
        // (and reuse insert keys), corrupting maintained aggregates.
        let mut s = session();
        s.exec_line("view rev = lineitem * orders group o_custkey sum l_extendedprice")
            .unwrap();
        s.exec_line("ingest all 2").unwrap();
        s.exec_line("ingest all 2").unwrap();
        s.exec_line("ingest lineitem 3").unwrap();
        s.exec_line("epoch").unwrap();
        let out = s.exec_line("verify rev").unwrap();
        assert!(out.contains("consistent"), "{out}");
    }

    #[test]
    fn parallel_scheduler_epochs_stay_consistent() {
        let mut s = session();
        assert!(s.exec_line("parallel").unwrap().contains("serial"));
        assert!(s.exec_line("parallel on").unwrap().contains("parallel"));
        s.exec_line("view locs = lineitem * orders * customer")
            .unwrap();
        s.exec_line("view rev = lineitem * orders group o_custkey sum l_extendedprice")
            .unwrap();
        s.exec_line("ingest all 10").unwrap();
        s.exec_line("epoch").unwrap();
        assert!(s.exec_line("verify locs").unwrap().contains("consistent"));
        assert!(s.exec_line("verify rev").unwrap().contains("consistent"));
        assert!(s.exec_line("parallel off").unwrap().contains("serial"));
        assert!(s.exec_line("parallel bogus").is_err());
    }

    #[test]
    fn parallel_thread_count_round_trips() {
        let mut s = session();
        let out = s.exec_line("parallel on 2").unwrap();
        // An explicit count survives the 1-core auto-disable reporting:
        // either the pinned count shows up, or the host has one thread and
        // the scheduler says so.
        assert!(
            out.contains("2 threads") || out.contains("1 thread"),
            "{out}"
        );
        assert_eq!(s.warehouse.threads(), 2);
        s.exec_line("view rev = lineitem * orders group o_custkey sum l_extendedprice")
            .unwrap();
        s.exec_line("ingest all 5").unwrap();
        s.exec_line("epoch").unwrap();
        assert!(s.exec_line("verify rev").unwrap().contains("consistent"));
        assert!(s.exec_line("parallel on 0").is_err());
        assert!(s.exec_line("parallel on two").is_err());
        // `parallel on` resets to auto.
        s.exec_line("parallel on").unwrap();
        assert_eq!(s.warehouse.threads(), 0);
    }

    #[test]
    fn errors_do_not_kill_the_session() {
        let mut s = session();
        assert!(s.exec_line("view bad = lineitem * region").is_err()); // no FK path
        assert!(s.exec_line("ingest nosuch 5").is_err());
        assert!(s.exec_line("query ghost").is_err());
        assert!(s.exec_line("frobnicate").is_err());
        // Still fully usable afterwards.
        s.exec_line("view ok = lineitem * orders").unwrap();
        s.exec_line("ingest all 5").unwrap();
        s.exec_line("epoch").unwrap();
        assert!(s.exec_line("verify ok").unwrap().contains("consistent"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut s = session();
        assert_eq!(s.exec_line("# a comment").unwrap(), "");
        assert_eq!(s.exec_line("   ").unwrap(), "");
        assert!(s.exec_line("help").unwrap().contains("commands"));
    }

    /// Self-cleaning scratch directory (the workspace has no tempfile
    /// crate; durable state lands under the system temp dir).
    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("mvmqo-script-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn wal_save_recover_commands_roundtrip() {
        let tmp = TempDir::new("walcmd");
        let dir = tmp.0.display().to_string();
        let mut s = session();
        s.exec_line("view locs = lineitem * orders * customer")
            .unwrap();
        assert!(s.exec_line("wal").unwrap().contains("off"));
        let out = s.exec_line(&format!("wal on {dir}")).unwrap();
        assert!(out.contains("durability on"), "{out}");
        s.exec_line("ingest all 5").unwrap();
        s.exec_line("epoch").unwrap();
        let out = s.exec_line("save").unwrap();
        assert!(out.contains("saved snapshot"), "{out}");
        // Post-save activity lands in the WAL tail and must replay.
        s.exec_line("ingest all 3").unwrap();
        s.exec_line("epoch").unwrap();
        let rows_before = s.exec_line("query locs").unwrap();

        let mut s2 = session();
        let out = s2.exec_line(&format!("recover {dir}")).unwrap();
        assert!(out.contains("recovered at epoch 2"), "{out}");
        assert_eq!(s2.exec_line("query locs").unwrap(), rows_before);
        assert!(s2.exec_line("verify locs").unwrap().contains("consistent"));
        let out = s2.exec_line("explain").unwrap();
        assert!(out.contains("durability:"), "{out}");
        assert!(out.contains("recovered:"), "{out}");
    }

    #[test]
    fn save_requires_durability_enabled() {
        let mut s = session();
        let err = s.exec_line("save").unwrap_err();
        assert!(err.contains("not enabled"), "{err}");
        assert!(s.exec_line("recover /nonexistent-mvmqo-dir").is_err());
        // Session still usable after durability errors.
        s.exec_line("view ok = lineitem * orders").unwrap();
        assert!(s.exec_line("query ok").is_ok());
    }

    #[test]
    fn chaos_command_aborts_and_retries_cleanly() {
        let mut s = session();
        s.exec_line("view locs = lineitem * orders * customer")
            .unwrap();
        s.exec_line("ingest all 5").unwrap();
        s.exec_line("epoch").unwrap();
        let baseline = s.exec_line("query locs").unwrap();

        // Arm a fault at the commit point: the executor's work is staged
        // and then dropped, so the engine must stay on the epoch-1 state.
        s.exec_line("ingest all 5").unwrap();
        assert!(s.exec_line("chaos wal:commit").unwrap().contains("armed"));
        let err = s.exec_line("epoch").unwrap_err();
        assert!(err.contains("aborted"), "{err}");
        assert!(err.contains("wal:commit"), "{err}");
        let stale = s.exec_line("query locs").unwrap();
        assert!(stale.contains("stale"), "{stale}");
        assert_eq!(
            stale.replace(", stale", ""),
            baseline,
            "abort must leave pre-epoch answers"
        );
        let out = s.exec_line("explain").unwrap();
        assert!(out.contains("epochs aborted: 1"), "{out}");
        assert!(out.contains("last abort: epoch 2 at wal:commit"), "{out}");
        assert!(s.exec_line("chaos").unwrap().contains("fired"), "status");

        // The one-shot fault is spent: the retry commits the same epoch.
        let out = s.exec_line("epoch").unwrap();
        assert!(out.contains("epoch 2"), "{out}");
        assert!(s.exec_line("verify locs").unwrap().contains("consistent"));
        assert!(s.exec_line("chaos off").unwrap().contains("off"));
        assert!(s.exec_line("chaos wal:commit bogus").is_err());
    }

    #[test]
    fn drop_reoptimizes_remaining_views() {
        let mut s = session();
        s.exec_line("view a = lineitem * orders").unwrap();
        s.exec_line("view b = lineitem * orders * customer")
            .unwrap();
        let n = s.warehouse.replans().len();
        s.exec_line("drop a").unwrap();
        assert_eq!(s.warehouse.views().len(), 1);
        assert_eq!(s.warehouse.replans().len(), n + 1);
    }
}
