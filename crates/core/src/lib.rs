//! # mvmqo-core
//!
//! The primary contribution of *Materialized View Selection and Maintenance
//! Using Multi-Query Optimization* (Mistry, Roy, Ramamritham, Sudarshan —
//! SIGMOD 2001), reimplemented as a library:
//!
//! * [`dag`] — the AND-OR DAG of §4: equivalence/operation nodes, expansion
//!   to all join orders, eager unification, subsumption derivations;
//! * [`update`] — the 2n update numbering of §5.2;
//! * [`cost`] — the seek/transfer/CPU cost model of §7.1, buffer-sensitive;
//! * [`diff`] — differential logical properties: per-node delta statistics
//!   and the state sequence "after updates 1..i−1";
//! * [`opt`] — the optimizer: Volcano-style best plans with a materialized
//!   set (§5.1), `diffCost` for differentials (§5.3), and the greedy
//!   selection of additional views/indices with the incremental cost update
//!   and monotonicity optimizations (§6);
//! * [`plan`] — the physical plan IR and the maintenance program handed to
//!   an executor;
//! * [`session`] — the re-entrant [`session::Optimizer`]: a persistent
//!   DAG/memo/benefit-cache session whose replans after view churn or
//!   statistics drift pay incremental cost instead of a full rebuild;
//! * [`api`] — a one-call facade ([`api::optimize`]).

pub mod api;
pub mod cost;
pub mod dag;
pub mod diff;
pub mod opt;
pub mod plan;
pub mod session;
pub mod update;

pub use api::{optimize, MaintenanceProblem, OptimizerReport};
pub use dag::{Dag, EqId, OpId};
pub use session::{Optimizer, PlanMode, PlanOutcome};
pub use update::{UpdateId, UpdateModel, UpdateStep};
